//! Quickstart: stand up a group key server, admit members, process a
//! leave, and watch the group key rotate under each rekeying strategy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::Strategy;
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

fn main() {
    println!("== Secure Group Communications Using Key Graphs: quickstart ==\n");

    for strategy in Strategy::ALL {
        println!("--- strategy: {} ---", strategy.name());
        let config = ServerConfig::builder().strategy(strategy).build().unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);

        // Nine members join (the paper's Figure 5 tree at d=4 would be
        // three subgroups of three at d=3; here d=4).
        for i in 1..=9u64 {
            let op = server.handle_join(UserId(i)).unwrap();
            println!(
                "join u{i}: {} rekey message(s), {} bytes total",
                op.encoded.len(),
                op.encoded.iter().map(|e| e.len()).sum::<usize>()
            );
        }
        let (gk_before, _) = server.tree().group_key();
        println!("group key after joins: {gk_before:?}");

        // u9 leaves: every key on its path is replaced.
        let op = server.handle_leave(UserId(9)).unwrap();
        let (gk_after, _) = server.tree().group_key();
        println!(
            "leave u9: {} rekey message(s), {} bytes; group key {gk_before:?} -> {gk_after:?}",
            op.encoded.len(),
            op.encoded.iter().map(|e| e.len()).sum::<usize>()
        );

        let agg = server.stats().aggregate(None).unwrap();
        println!(
            "server totals: {} ops, {:.1} B/msg avg, {:.2} encryptions/op, {:.3} ms/op\n",
            agg.ops, agg.msg_size_ave, agg.encryptions_ave, agg.proc_ms_ave
        );
    }
    println!("Key observations (cf. Sections 3 and 5 of the paper):");
    println!("  - group-oriented sends the fewest messages (1 multicast per request);");
    println!("  - key-oriented and user-oriented send one message per subgroup class;");
    println!("  - every strategy replaces exactly the keys on the requester's path.");
}
