//! Key graphs vs Iolus, side by side (Section 6).
//!
//! Both approaches turn the O(n) rekeying problem into an O(log n)-ish
//! one, but they put the work in different places:
//!
//! * **Key graphs**: every join/leave rekeys a root path (server does
//!   O(log n) encryptions); sending to the group costs nothing extra —
//!   everyone shares the group key.
//! * **Iolus**: a join/leave rekeys one subgroup (an agent does
//!   O(subgroup) encryptions); but *every data message* must have its
//!   message key relayed — decrypted and re-encrypted — by every agent,
//!   and every agent is a trusted entity.
//!
//! ```text
//! cargo run --release --example iolus_compare
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Strategy};
use keygraphs::crypto::drbg::HmacDrbg;
use keygraphs::iolus::IolusSystem;
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

fn main() {
    println!("== key graphs vs Iolus (Section 6) ==\n");
    let n = 1024u64;

    // --- Key-graph side -------------------------------------------------
    let config = ServerConfig::builder().strategy(Strategy::GroupOriented).build().unwrap();
    let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
    for i in 0..n {
        server.handle_join(UserId(i)).unwrap();
    }
    server.reset_stats();
    // A churn burst: 50 leaves + 50 joins.
    for i in 0..50u64 {
        server.handle_leave(UserId(i)).unwrap();
        server.handle_join(UserId(n + i)).unwrap();
    }
    let kg = server.stats().aggregate(None).unwrap();

    // --- Iolus side -----------------------------------------------------
    let mut src = HmacDrbg::from_seed(9);
    // 1 + 8 + 64 agents; ~16 clients per leaf at n=1024.
    let mut sys = IolusSystem::new(3, 8, 16, KeyCipher::des_cbc(), &mut src);
    for i in 0..n {
        sys.join(UserId(i), &mut src).unwrap();
    }
    let mut iolus_rekey_encryptions = 0u64;
    for i in 0..50u64 {
        iolus_rekey_encryptions += sys.leave(UserId(i), &mut src).unwrap().encryptions;
        iolus_rekey_encryptions += sys.join(UserId(n + i), &mut src).unwrap().encryptions;
    }
    let iolus_rekey_avg = iolus_rekey_encryptions as f64 / 100.0;

    println!("membership churn (100 requests at n={n}):");
    println!(
        "  key graphs : {:>6.2} encryptions/request at ONE trusted server",
        kg.encryptions_ave
    );
    println!(
        "  iolus      : {iolus_rekey_avg:>6.2} encryptions/request across {} trusted agents",
        sys.agent_count()
    );

    // --- Data path -------------------------------------------------------
    // Key graphs: a sender encrypts once with the shared group key; no
    // intermediary touches the message.
    let (_, gk) = server.tree().group_key();
    let ct = KeyCipher::des_cbc().encrypt(&gk, &[0u8; 8], b"market data tick");
    println!("\ndata path, per group message:");
    println!("  key graphs : 1 sender encryption ({} B ct), 0 relay operations", ct.len());

    // Iolus: the message key is relayed through every agent.
    let msg = sys.send_to_group(UserId(100), b"market data tick", &mut src).unwrap();
    println!(
        "  iolus      : 1 sender encryption, then {} agent decryptions + {} re-encryptions",
        msg.ops.agent_decryptions, msg.ops.encryptions
    );
    // All members can still read it.
    let sample = sys.receive(UserId(500), &msg).unwrap();
    assert_eq!(sample, b"market data tick");

    println!("\ntrade-off summary (the paper's Section 6):");
    println!("  key graphs pay at membership-change time; Iolus pays on every message");
    println!("  key graphs trust 1 entity; Iolus trusts {}", sys.agent_count());
    println!(
        "  for {} messages between churn events, iolus does {} extra crypto ops",
        1000,
        1000 * (msg.ops.agent_decryptions + msg.ops.encryptions),
    );
}
