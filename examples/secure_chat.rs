//! A confidential group chat over the simulated network.
//!
//! Members join through the networked server, receive rekey messages, and
//! encrypt chat lines under the current group key. When a member leaves,
//! the group key rotates and the departed member's stale keys no longer
//! decrypt anything — forward secrecy in action.
//!
//! ```text
//! cargo run --example secure_chat
//! ```

use keygraphs::client::fleet::ClientFleet;
use keygraphs::client::VerifyPolicy;
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::KeyCipher;
use keygraphs::net::{NetConfig, SimNetwork};
use keygraphs::server::net::{NetServer, ServerEvent};
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

/// Pump the network + server + fleet until quiescent.
fn settle(net: &mut SimNetwork, ns: &mut NetServer, fleet: &mut ClientFleet) {
    for _ in 0..10 {
        net.run_until_quiet();
        for ev in ns.poll(net) {
            if let ServerEvent::Joined(g) = ev {
                fleet.apply_grant(g.user, g.individual_key.clone(), g.leaf_label, &g.path_labels);
            }
        }
        net.run_until_quiet();
        let events = fleet.pump(net);
        if events.is_empty() && net.pending_total() == 0 {
            break;
        }
    }
}

fn say(fleet: &ClientFleet, from: UserId, text: &str) -> (Vec<u8>, Vec<u8>) {
    let sender = fleet.client(from).expect("member");
    let (_, gk) = sender.group_key().expect("has group key");
    let iv = vec![0x5A; 8];
    let ct = KeyCipher::des_cbc().encrypt(&gk, &iv, text.as_bytes());
    println!("  {from} says ({} B ciphertext): {text:?}", ct.len());
    (iv, ct)
}

fn everyone_reads(fleet: &ClientFleet, iv: &[u8], ct: &[u8]) {
    for c in fleet.clients() {
        let (_, gk) = c.group_key().expect("has group key");
        let pt = KeyCipher::des_cbc().decrypt(&gk, iv, ct).expect("member can decrypt");
        assert!(!pt.is_empty());
    }
    println!("  all {} members decrypted it", fleet.len());
}

fn main() {
    println!("== secure group chat over the simulated network ==\n");
    let mut net = SimNetwork::new(NetConfig::default());
    let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
    let mut ns = NetServer::new(server, &mut net);
    let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);

    // Alice, Bob, Carol, Dave join.
    for (i, name) in ["alice", "bob", "carol", "dave"].iter().enumerate() {
        fleet.send_join_request(&mut net, ns.endpoint(), UserId(i as u64));
        settle(&mut net, &mut ns, &mut fleet);
        println!("{name} joined (group size {})", ns.inner().group_size());
    }

    println!("\n-- chat round 1 --");
    let (iv, ct) = say(&fleet, UserId(0), "hi everyone, key trees are neat");
    everyone_reads(&fleet, &iv, &ct);

    // Bob leaves; his stale keys must be useless afterwards.
    println!("\n-- bob (u1) leaves --");
    fleet.send_leave_request(&mut net, ns.endpoint(), UserId(1));
    settle(&mut net, &mut ns, &mut fleet);
    let bob = fleet.remove(&mut net, UserId(1)).expect("bob existed");
    println!("group size now {}", ns.inner().group_size());

    println!("\n-- chat round 2 (after rekey) --");
    let (iv, ct) = say(&fleet, UserId(2), "bob is gone; new group key in effect");
    everyone_reads(&fleet, &iv, &ct);

    // Bob tries every key he ever held.
    let mut bob_reads = false;
    for (_, k) in bob.keyset() {
        if let Ok(pt) = KeyCipher::des_cbc().decrypt(&k, &iv, &ct) {
            if pt.starts_with(b"bob is gone") {
                bob_reads = true;
            }
        }
    }
    println!(
        "bob attempts decryption with all {} stale keys: {}",
        bob.keyset().len(),
        if bob_reads { "LEAK!" } else { "defeated (forward secrecy holds)" }
    );
    assert!(!bob_reads);
}
