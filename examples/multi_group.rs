//! Multiple secure groups over one user population (§7 / Keystone).
//!
//! "We are constructing a group key management service for applications
//! that require the formation of multiple secure groups over a population
//! of users and a user can join several secure groups. For these
//! applications, the key trees of different group keys are merged to form
//! a key graph."
//!
//! This example runs two group key servers (a "video" group and a "chat"
//! group), merges their key trees into one key graph, and demonstrates
//! graph-level queries: per-user keysets spanning groups, usersets, and
//! the key-covering problem for a cross-group broadcast.
//!
//! ```text
//! cargo run --example multi_group
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::core::keygraph::KeyGraph;
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};
use std::collections::BTreeSet;

fn main() {
    println!("== multiple groups, one key graph ==\n");

    // Group A (video): users 1..=6. Group B (chat): users 4..=9.
    // Users 4, 5, 6 are in both.
    let mut video = GroupKeyServer::new(
        ServerConfig::builder().seed(1).build().unwrap(),
        AccessControl::AllowAll,
    );
    let mut chat = GroupKeyServer::new(
        ServerConfig::builder().seed(2).build().unwrap(),
        AccessControl::AllowAll,
    );
    for i in 1..=6u64 {
        video.handle_join(UserId(i)).unwrap();
    }
    for i in 4..=9u64 {
        chat.handle_join(UserId(i)).unwrap();
    }

    // Merge the two key trees into a single key graph. Labels collide
    // across independent servers, so namespace them first.
    let mut graph = KeyGraph::new();
    let video_graph = video.tree().to_key_graph().relabeled(1_000_000);
    let chat_graph = chat.tree().to_key_graph().relabeled(2_000_000);
    graph.merge(&video_graph);
    graph.merge(&chat_graph);

    println!(
        "merged key graph: {} users, {} keys, {} roots",
        graph.user_count(),
        graph.key_count(),
        graph.roots().len()
    );
    assert_eq!(graph.user_count(), 9);
    assert_eq!(graph.roots().len(), 2, "one root (group key) per group");

    // A dual-member holds keys in both trees; single-group members don't.
    let u5 = graph.keyset(UserId(5));
    let u1 = graph.keyset(UserId(1));
    let u9 = graph.keyset(UserId(9));
    println!(
        "u5 (both groups) holds {} keys; u1 (video only) {}; u9 (chat only) {}",
        u5.len(),
        u1.len(),
        u9.len()
    );
    assert!(u5.len() > u1.len());

    let roots = graph.roots();
    let video_root = roots.iter().find(|r| r.0 < 2_000_000).unwrap();
    let chat_root = roots.iter().find(|r| r.0 >= 2_000_000).unwrap();
    assert!(u1.contains(video_root) && !u1.contains(chat_root));
    assert!(u9.contains(chat_root) && !u9.contains(video_root));
    assert!(u5.contains(video_root) && u5.contains(chat_root));

    // Key cover: address exactly the union of both groups minus user 4 —
    // the NP-hard Section 2 problem, solved greedily over the graph.
    let target: BTreeSet<UserId> = (1..=9).map(UserId).filter(|u| u.0 != 4).collect();
    let cover = graph.key_cover_greedy(&target).expect("coverable");
    println!(
        "covering all users except u4 needs {} keys (vs {} unicasts): {:?}",
        cover.len(),
        target.len(),
        cover
    );
    assert_eq!(graph.userset_of(&cover), target);
    assert!(cover.len() < target.len(), "subgroup keys beat per-user unicast");

    println!("\nmulti-group key graph behaves per Section 7: per-group roots, shared users, graph-level key covering.");
}
