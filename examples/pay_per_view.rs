//! Pay-per-view: the paper's motivating high-churn workload.
//!
//! Subscribers buy access to "programs"; between programs there is heavy
//! churn (expired subscribers leave, new ones join), and each program's
//! content is encrypted under the group key in force while it airs. An
//! expired subscriber must not be able to decrypt later programs
//! (forward secrecy), and a late subscriber must not be able to decrypt
//! earlier ones it captured off the wire (backward secrecy).
//!
//! ```text
//! cargo run --release --example pay_per_view
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Strategy};
use keygraphs::crypto::SymmetricKey;
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

struct Program {
    name: &'static str,
    key: SymmetricKey,
    ciphertext: Vec<u8>,
    iv: Vec<u8>,
}

fn air(server: &GroupKeyServer, name: &'static str, content: &str) -> Program {
    let (_, key) = server.tree().group_key();
    let iv = vec![0x11; 8];
    let ciphertext = KeyCipher::des_cbc().encrypt(&key, &iv, content.as_bytes());
    println!("airing {name:12} to {:5} subscribers ({} B)", server.group_size(), ciphertext.len());
    Program { name, key, ciphertext, iv }
}

fn main() {
    println!("== pay-per-view churn scenario ==\n");
    let config = ServerConfig::builder().strategy(Strategy::GroupOriented).build().unwrap();
    let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);

    // Season setup: 500 initial subscribers.
    for i in 0..500u64 {
        server.handle_join(UserId(i)).unwrap();
    }
    server.reset_stats();

    let mut programs: Vec<Program> = Vec::new();
    let mut next_id = 500u64;
    // (user, round in which they left, keyset captured at leave time)
    let mut expired: Vec<(UserId, usize, Vec<SymmetricKey>)> = Vec::new();

    for (round, name) in ["opening-match", "semifinal", "final"].iter().enumerate() {
        // Churn between programs: 50 expirations, 60 new subscriptions.
        for k in 0..50u64 {
            let leaver = UserId((round as u64 * 50 + k) % next_id);
            if server.is_member(leaver) {
                // Capture the leaver's final keyset first (what a cheater
                // would retain).
                let keys =
                    server.tree().keyset(leaver).unwrap().into_iter().map(|(_, k)| k).collect();
                expired.push((leaver, round, keys));
                server.handle_leave(leaver).unwrap();
            }
        }
        for _ in 0..60 {
            server.handle_join(UserId(next_id)).unwrap();
            next_id += 1;
        }
        programs.push(air(&server, name, &format!("live feed of the {name}")));
    }

    // Every current subscriber can watch the final (group key decrypts).
    let current = &programs[2];
    let (_, gk) = server.tree().group_key();
    assert_eq!(gk, current.key, "final aired under the live group key");

    // Forward secrecy: a subscriber who expired during round r left before
    // program r aired, so its retained keys must not decrypt program r or
    // anything later.
    let mut attempts = 0u64;
    for (user, left_round, keys) in &expired {
        for (p_idx, p) in programs.iter().enumerate().skip(*left_round) {
            for k in keys {
                attempts += 1;
                if let Ok(pt) = KeyCipher::des_cbc().decrypt(k, &p.iv, &p.ciphertext) {
                    // Padding accidents can "succeed"; recovering the
                    // actual plaintext would be the breach.
                    assert!(
                        !pt.starts_with(b"live feed"),
                        "{user} (expired round {left_round}) decrypted program {p_idx} ({})!",
                        p.name
                    );
                }
            }
        }
    }
    println!("\n{} stale-key decryption attempts by expired subscribers: no leaks", attempts);

    let agg = server.stats().aggregate(None).unwrap();
    println!(
        "server work across the season: {} requests, {:.2} encryptions/request, {:.3} ms/request",
        agg.ops, agg.encryptions_ave, agg.proc_ms_ave
    );
    println!(
        "(a star key graph would have paid ~n/2 = {} encryptions/request)",
        server.group_size() / 2
    );
}
