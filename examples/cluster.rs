//! A sharded key-graph cluster over real UDP loopback sockets.
//!
//! Three deployment roles run as threads here — exactly the logic of the
//! `kgc-router` and `kgc-node` binaries, plus a scripted client fleet in
//! the role `kgc-admin session` plays:
//!
//! - a router bound to a loopback socket, owning the shard map,
//! - two shard nodes, each with its own WAL/snapshot directory,
//! - a driver that joins members of a group spanned over both shards,
//!   collects grants and rekey packets, then shuts the cluster down and
//!   checks the aggregated ack reports `wal_tail = 0` (nothing to replay).
//!
//! ```text
//! cargo run --example cluster
//! ```

use keygraphs::cluster::{NodeConfig, Router, ShardMap, ShardNode};
use keygraphs::core::ids::UserId;
use keygraphs::net::{EndpointId, Transport, UdpTransport};
use keygraphs::obs::{Obs, ObsConfig};
use keygraphs::persist::PersistConfig;
use keygraphs::server::net::leave_authenticator;
use keygraphs::server::{AccessControl, ServerConfig};
use keygraphs::wire::{
    ClusterBody, ClusterEnvelope, ControlMessage, GroupId, ShardId, ROUTER_SHARD,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(1);
const MEMBERS: u64 = 12;

fn main() {
    println!("== A two-shard cluster over UDP loopback ==\n");

    let root = std::env::temp_dir().join(format!("kg-example-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // --- Bind every socket first so each role knows its peers' addresses.
    let mut router_net = UdpTransport::bind("127.0.0.1:0", 1).expect("bind router");
    let router_addr = router_net.local_addr().expect("router addr");
    let mut node_nets: Vec<UdpTransport> = (0..2u16)
        .map(|s| {
            let mut net =
                UdpTransport::bind("127.0.0.1:0", 1000 + s as u32).expect("bind shard node");
            net.register_peer(EndpointId(1), router_addr);
            net
        })
        .collect();
    for (s, net) in node_nets.iter().enumerate() {
        let addr = net.local_addr().expect("node addr");
        router_net.register_peer(EndpointId(1000 + s as u32), addr);
        println!("shard {s} on {addr}");
    }
    println!("router  on {router_addr}\n");

    // --- The router owns the shard map: group 1 is spanned over both
    // shards, Iolus-style — each shard keeps an independent key tree for
    // its slice of the membership.
    let map = ShardMap::new(2).with_span(GROUP, 2);
    let mut router = Router::new(map, &mut router_net, Obs::new(ObsConfig::default()));
    for shard in router.map().all_shards().collect::<Vec<_>>() {
        router.register_shard(shard, EndpointId(1000 + shard.0 as u32));
    }
    let router_thread = std::thread::spawn(move || {
        while router.is_running() {
            router_net.poll_io();
            router.poll(&mut router_net);
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    // --- Each shard node serves batched 50 ms intervals and persists to
    // its own directory; `resume` on an empty directory is a fresh start.
    let mut node_threads = Vec::new();
    for (s, mut net) in node_nets.drain(..).enumerate() {
        let config = NodeConfig {
            shard: ShardId(s as u16),
            template: ServerConfig::builder().batched(50, 1024).build().unwrap(),
            acl: AccessControl::AllowAll,
            persist_root: Some(root.join(format!("shard-{s}"))),
            persist: PersistConfig::default(),
            telemetry_interval_ms: None,
        };
        let endpoint = net.endpoint();
        let mut node =
            ShardNode::resume(config, endpoint, EndpointId(1), Obs::new(ObsConfig::default()))
                .expect("start shard node");
        node_threads.push(std::thread::spawn(move || {
            while node.is_running() {
                net.poll_io();
                let now_ms = net.now_us() / 1000;
                node.tick(&mut net, now_ms);
                std::thread::sleep(Duration::from_millis(1));
            }
            node
        }));
    }

    // --- The driver plays a fleet of clients from one endpoint.
    let mut net = UdpTransport::bind("127.0.0.1:0", 9000).expect("bind driver");
    net.register_peer(EndpointId(1), router_addr);
    let endpoint = net.endpoint();
    let send = |net: &mut UdpTransport, body: ClusterBody| {
        let env = ClusterEnvelope::new(ROUTER_SHARD, GROUP, body);
        net.send_unicast(endpoint, EndpointId(1), bytes::Bytes::from(env.encode()));
    };

    for u in 1..=MEMBERS {
        send(&mut net, ClusterBody::Control(ControlMessage::JoinRequest { user: UserId(u) }));
    }
    let mut keys: BTreeMap<UserId, Vec<u8>> = BTreeMap::new();
    let mut acks = 0u64;
    let mut rekeys = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while (keys.len() as u64) < MEMBERS || acks < MEMBERS {
        assert!(Instant::now() < deadline, "timed out joining");
        net.poll_io();
        let Some(dg) = net.recv(endpoint) else {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if ClusterEnvelope::sniff(&dg.payload) {
            if let Ok(env) = ClusterEnvelope::decode(&dg.payload) {
                if let ClusterBody::Grant { user, key, .. } = env.body {
                    keys.insert(user, key);
                }
            }
        } else {
            match ControlMessage::decode(&dg.payload) {
                Ok(ControlMessage::JoinGranted { .. }) => acks += 1,
                Ok(other) => panic!("unexpected control reply {other:?}"),
                Err(_) => rekeys += 1, // interval flush: rekey traffic
            }
        }
    }
    println!(
        "joined {MEMBERS} members across 2 shards ({} grants, {rekeys} rekey packets)",
        keys.len()
    );

    // --- Leaves must present the HMAC authenticator derived from the
    // member's granted key; the router relays each to the member's shard.
    for u in (1..=MEMBERS / 2).map(UserId) {
        let auth = leave_authenticator(u, &keys[&u]);
        send(&mut net, ClusterBody::Control(ControlMessage::LeaveRequest { user: u, auth }));
    }
    let mut left = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while left < MEMBERS / 2 {
        assert!(Instant::now() < deadline, "timed out leaving");
        net.poll_io();
        let Some(dg) = net.recv(endpoint) else {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if !ClusterEnvelope::sniff(&dg.payload) {
            match ControlMessage::decode(&dg.payload) {
                Ok(ControlMessage::LeaveGranted { .. }) => left += 1,
                Ok(other) => panic!("unexpected control reply {other:?}"),
                Err(_) => rekeys += 1,
            }
        }
    }
    println!(
        "half the group left again; {left} departures authenticated \
({rekeys} rekey packets total)\n"
    );

    // --- Admin shutdown: every shard flushes its queue, snapshots, and
    // acks; the router aggregates and reports. wal_tail = 0 proves a
    // restart would replay nothing.
    send(&mut net, ClusterBody::Shutdown);
    let deadline = Instant::now() + Duration::from_secs(20);
    let (members, wal_tail) = loop {
        assert!(Instant::now() < deadline, "timed out waiting for shutdown");
        net.poll_io();
        let Some(dg) = net.recv(endpoint) else {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if ClusterEnvelope::sniff(&dg.payload) {
            if let Ok(ClusterEnvelope {
                shard: ROUTER_SHARD,
                body: ClusterBody::ShutdownAck { members, wal_tail },
                ..
            }) = ClusterEnvelope::decode(&dg.payload)
            {
                break (members, wal_tail);
            }
        }
    };
    router_thread.join().expect("router thread");
    let nodes: Vec<ShardNode> = node_threads.into_iter().map(|t| t.join().expect("node")).collect();
    println!("cluster stopped: members={members} wal_tail={wal_tail}");
    assert_eq!(members, MEMBERS - MEMBERS / 2);
    assert_eq!(wal_tail, 0, "clean shutdown leaves nothing to replay");

    // --- Restart both shards from disk: the snapshots carry the full
    // state, so recovery replays zero WAL records.
    for node in &nodes {
        let shard = node.shard();
        let config = NodeConfig {
            shard,
            template: ServerConfig::builder().batched(50, 1024).build().unwrap(),
            acl: AccessControl::AllowAll,
            persist_root: Some(root.join(format!("shard-{}", shard.0))),
            persist: PersistConfig::default(),
            telemetry_interval_ms: None,
        };
        let recovered = ShardNode::resume(
            config,
            EndpointId(1000 + shard.0 as u32),
            EndpointId(1),
            Obs::new(ObsConfig::default()),
        )
        .expect("recover shard node");
        println!(
            "shard {} recovered from disk: {} members resident",
            shard.0,
            recovered.member_total()
        );
    }

    let _ = std::fs::remove_dir_all(&root);
    println!("\nDone.");
}
