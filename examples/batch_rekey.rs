//! Periodic batch rekeying over the simulated network.
//!
//! A batched server queues join/leave requests and flushes them once per
//! rekey interval: the interval's churn is consolidated into one marking
//! pass, so each affected key is replaced (and each rekey message sent)
//! once per interval instead of once per request.
//!
//! ```text
//! cargo run --example batch_rekey
//! ```

use keygraphs::client::fleet::{ClientFleet, FleetEvent};
use keygraphs::client::VerifyPolicy;
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::KeyCipher;
use keygraphs::net::{NetConfig, SimNetwork};
use keygraphs::server::net::{NetServer, ServerEvent};
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

/// Advance the simulation to `now_ms`: deliver datagrams, tick the server
/// (queueing requests and flushing the interval when due), pump clients.
fn advance(
    net: &mut SimNetwork,
    ns: &mut NetServer,
    fleet: &mut ClientFleet,
    now_ms: u64,
) -> (Vec<ServerEvent>, Vec<FleetEvent>) {
    let mut server_events = Vec::new();
    let mut fleet_events = Vec::new();
    for _ in 0..10 {
        net.run_until_quiet();
        let evs = ns.tick(net, now_ms);
        for ev in &evs {
            if let ServerEvent::Joined(grant) = ev {
                fleet.apply_grant(
                    grant.user,
                    grant.individual_key.clone(),
                    grant.leaf_label,
                    &grant.path_labels,
                );
            }
        }
        server_events.extend(evs);
        net.run_until_quiet();
        let evs = fleet.pump(net);
        let quiet = evs.is_empty() && net.pending_total() == 0;
        fleet_events.extend(evs);
        if quiet {
            break;
        }
    }
    (server_events, fleet_events)
}

fn main() {
    println!("== Batch rekeying over the simulated network ==\n");

    let mut net = SimNetwork::new(NetConfig::default());
    // Flush every 100 ms, or sooner if 32 requests pile up.
    let config = ServerConfig::builder().batched(100, 32).build().unwrap();
    let server = GroupKeyServer::new(config, AccessControl::AllowAll);
    let mut ns = NetServer::new(server, &mut net);
    let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);

    // Interval 1: a burst of twelve joins arrives mid-interval.
    for i in 0..12u64 {
        fleet.send_join_request(&mut net, ns.endpoint(), UserId(i));
    }
    let (evs, _) = advance(&mut net, &mut ns, &mut fleet, 50);
    let queued = evs.iter().filter(|e| matches!(e, ServerEvent::Queued(_))).count();
    println!("t= 50ms: {queued} joins queued, group size {}", ns.inner().group_size());

    let (evs, _) = advance(&mut net, &mut ns, &mut fleet, 100);
    report_flush(&evs);
    println!(
        "t=100ms: group size {}, consensus: {}",
        ns.inner().group_size(),
        consensus(&ns, &fleet)
    );

    // Interval 2: mixed churn — three leaves and two joins collapse into
    // one consolidated rekey.
    for u in [2u64, 7, 11] {
        fleet.send_leave_request(&mut net, ns.endpoint(), UserId(u));
    }
    for u in [20u64, 21] {
        fleet.send_join_request(&mut net, ns.endpoint(), UserId(u));
    }
    let (evs, _) = advance(&mut net, &mut ns, &mut fleet, 200);
    for u in [2u64, 7, 11] {
        fleet.remove(&mut net, UserId(u));
    }
    report_flush(&evs);
    println!(
        "t=200ms: group size {}, consensus: {}",
        ns.inner().group_size(),
        consensus(&ns, &fleet)
    );

    // Interval 3: a leave followed by a rejoin inside one interval — the
    // member is never reported as departed; it simply receives a fresh
    // individual key and path at the flush.
    fleet.send_leave_request(&mut net, ns.endpoint(), UserId(5));
    advance(&mut net, &mut ns, &mut fleet, 250); // leave queued mid-interval
    fleet.send_join_request(&mut net, ns.endpoint(), UserId(5));
    let (evs, _) = advance(&mut net, &mut ns, &mut fleet, 300);
    let departures = evs.iter().filter(|e| matches!(e, ServerEvent::Left(_))).count();
    println!("leave+rejoin of u5 in one interval: {departures} departures reported");
    report_flush(&evs);
    println!(
        "t=300ms: group size {}, consensus: {}\n",
        ns.inner().group_size(),
        consensus(&ns, &fleet)
    );

    // Per-interval server records.
    println!("per-interval server records (kind=Batch):");
    for r in ns.inner().stats().records() {
        println!(
            "  {:?}: {} request(s), {} message(s), {} encryptions, {} bytes",
            r.kind,
            r.requests,
            r.msg_sizes.len(),
            r.encryptions,
            r.total_bytes()
        );
    }
    println!("\nKey observations:");
    println!("  - requests queue mid-interval; membership changes only at the flush;");
    println!("  - one interval's joins and leaves share one marking pass, so each");
    println!("    affected key is replaced once no matter how many requests touched it;");
    println!("  - a leave followed by a rejoin in one interval is not a departure:");
    println!("    the member just gets a fresh individual key and path at the flush.");
}

fn report_flush(evs: &[ServerEvent]) {
    for e in evs {
        if let ServerEvent::Flushed { interval, joined, left } = e {
            println!("flushed interval {interval}: +{joined} members, -{left} members");
        }
    }
}

fn consensus(ns: &NetServer, fleet: &ClientFleet) -> &'static str {
    let (_, server_gk) = ns.inner().tree().group_key();
    match fleet.group_key_consensus() {
        Some(k) if k == server_gk => "all members share the server's group key",
        Some(_) => "members agree with each other but NOT the server (bug)",
        None => "members disagree (bug or in-flight rekey)",
    }
}
