//! Crash and recovery of a persistent group key server.
//!
//! The server appends every mutating operation to a write-ahead log and
//! periodically installs a snapshot of its full state (key tree, ACL,
//! DRBG states, batch queue). This example kills the server mid-interval
//! — queued requests not yet flushed — rebuilds it from disk, verifies
//! the recovered key tree byte-for-byte against its root digest, and
//! shows the recovered process flushing the interval it inherited.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::core::serial::root_digest;
use keygraphs::persist::{FsyncPolicy, PersistConfig};
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};

fn hex8(d: &[u8; 32]) -> String {
    d[..8].iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    println!("== Crash recovery with a write-ahead log ==\n");

    let dir = std::env::temp_dir().join(format!("kg-example-crash-{}", std::process::id()));
    let config = ServerConfig::builder().batched(100, 32).build().unwrap();
    let persist = PersistConfig {
        fsync: FsyncPolicy::EveryRecord,
        snapshot_every_ops: 16,
        ..PersistConfig::default()
    };

    // --- Normal operation: every op is logged before it is acknowledged.
    let mut server =
        GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, persist)
            .expect("create persistent server");

    for i in 0..20u64 {
        server.enqueue_join(UserId(i)).unwrap();
    }
    server.flush(100).unwrap();
    server.enqueue_leave(UserId(3)).unwrap();
    server.enqueue_leave(UserId(11)).unwrap();
    server.flush(200).unwrap();

    let p = server.persistence().unwrap();
    println!(
        "after 2 intervals: group size {}, snapshot epoch {}, WAL {} bytes",
        server.group_size(),
        p.epoch(),
        p.wal_len()
    );

    // --- An interval begins: requests queue, the WAL records them…
    server.enqueue_join(UserId(40)).unwrap();
    server.enqueue_leave(UserId(7)).unwrap();
    let digest_at_crash = root_digest(server.tree());
    println!(
        "mid-interval: {} request(s) queued, tree digest {}…",
        server.pending_requests(),
        hex8(&digest_at_crash)
    );

    // --- …and the process dies. All in-memory state is gone.
    drop(server);
    println!("\n*** server process killed mid-interval ***\n");

    // --- Recovery: load the latest snapshot, replay the WAL tail, verify
    // the reached state against the last logged root digest.
    let mut server = GroupKeyServer::recover(config, AccessControl::AllowAll, &dir, persist)
        .expect("recover from snapshot + WAL");
    let digest_recovered = root_digest(server.tree());
    println!(
        "recovered: group size {}, {} request(s) still queued, digest {}…",
        server.group_size(),
        server.pending_requests(),
        hex8(&digest_recovered)
    );
    assert_eq!(digest_at_crash, digest_recovered, "byte-identical key tree");
    println!("digest matches the pre-crash tree: byte-identical recovery");

    // --- The recovered process picks up exactly where the old one died:
    // the interval it inherited flushes as if nothing happened.
    let batch = server.flush(300).unwrap().expect("pending interval flushes");
    println!(
        "\npost-recovery flush: +{} member(s), -{} member(s), {} rekey packet(s)",
        batch.grants.len(),
        batch.departed.len(),
        batch.encoded.len()
    );
    println!("final group size: {}", server.group_size());

    println!("\nKey observations:");
    println!("  - every successful op is appended (CRC-framed) to the WAL before");
    println!("    the server acknowledges it; snapshots bound the replay tail;");
    println!("  - recovery replays the WAL through the normal handlers, so the");
    println!("    rebuilt tree, DRBG states, and batch queue are byte-identical —");
    println!("    verified here by the root digest recorded with the last record;");
    println!("  - a torn final record (power loss mid-write) is detected by CRC");
    println!("    and discarded: the op was never acknowledged, so it never happened.");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
