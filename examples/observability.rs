//! Tracing a server's life with `kg-obs`: joins, leaves, a crash, and
//! an observed recovery, narrated by the event timeline and measured by
//! the metrics registry.
//!
//! Every layer of the stack reports to one cloneable [`Obs`] handle:
//! the request handlers time their phases with nested spans
//! (`op.join.sign`, `op.leave.encrypt`), the durability store counts
//! WAL appends and times fsyncs, and the recovery path records how many
//! log records it replayed — a number that must reconcile with the
//! appends the first life observed.
//!
//! ```text
//! cargo run --example observability
//! ```

use keygraphs::core::ids::UserId;
use keygraphs::obs::{Obs, ObsConfig};
use keygraphs::persist::{FsyncPolicy, PersistConfig};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn main() {
    println!("== Observing a key server's life: join, leave, crash, recover ==\n");

    let dir = std::env::temp_dir().join(format!("kg-example-obs-{}", std::process::id()));
    let config = ServerConfig::builder().auth(AuthPolicy::SignBatch).build().unwrap();
    let persist = PersistConfig {
        fsync: FsyncPolicy::EveryRecord,
        snapshot_every_ops: u64::MAX,
        snapshot_max_bytes: u64::MAX,
    };

    // --- Life 1: an observed server admits members, evicts some, dies.
    let obs = Obs::new(ObsConfig::default());
    let mut server =
        GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, persist)
            .expect("create persistent server");
    server.attach_obs(obs.clone());

    for i in 0..8u64 {
        server.handle_join(UserId(i)).unwrap();
    }
    server.handle_leave(UserId(2)).unwrap();
    server.handle_leave(UserId(5)).unwrap();
    server.sync_persistence().unwrap();

    println!("--- timeline of the first life ---");
    print!("{}", obs.render_timeline());

    println!("\n--- what the registry measured ---");
    for line in obs.render_prometheus().lines() {
        // The full exposition lists every span path and fsync bucket;
        // show the headline counters and the op-phase timings.
        if line.starts_with("kg_requests_total")
            || line.starts_with("kg_encryptions_total")
            || line.starts_with("kg_signatures_total")
            || line.starts_with("kg_wal_appends_total")
            || (line.starts_with("kg_span_us") && line.contains("_count"))
        {
            println!("{line}");
        }
    }
    let appends = obs.event_kind_counts().get("wal_append").copied().unwrap_or(0);
    println!("\nfirst life appended {appends} WAL records");

    drop(server); // crash: the process is gone, the log survives

    // --- Life 2: recover under a fresh handle and reconcile.
    let obs2 = Obs::new(ObsConfig::default());
    let mut server = GroupKeyServer::recover_observed(
        config,
        AccessControl::AllowAll,
        &dir,
        persist,
        obs2.clone(),
    )
    .expect("recover");

    println!("\n--- timeline of the recovered life ---");
    print!("{}", obs2.render_timeline());

    let replayed = obs2.counter("kg_replayed_records_total").get();
    println!("\nrecovery replayed {replayed} records (first life wrote {appends})");
    assert_eq!(replayed, appends, "the timeline and the log must agree");

    // The recovered server keeps reporting to its handle.
    server.handle_join(UserId(40)).unwrap();
    println!(
        "post-recovery join: kg_requests_total{{kind=\"join\"}} = {} (replayed joins excluded)",
        obs2.counter_with("kg_requests_total", "kind", "join").get()
    );

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
    println!("\nAll accounts reconciled.");
}
