//! Umbrella crate re-exporting the key-graphs workspace for examples and
//! integration tests. See `kg-core` for the main API.
#![forbid(unsafe_code)]

pub use kg_client as client;
pub use kg_cluster as cluster;
pub use kg_core as core;
pub use kg_crypto as crypto;
pub use kg_iolus as iolus;
pub use kg_net as net;
pub use kg_obs as obs;
pub use kg_persist as persist;
pub use kg_server as server;
pub use kg_wire as wire;
