//! Known-answer tests for every primitive `kg-crypto` implements from
//! scratch, against published standard vectors — data tables in-tree,
//! no network:
//!
//! * DES: NBS Special Publication 500-20 / FIPS 46-3 validation values
//! * Triple-DES: EDE3 composition and keying-option degeneracies
//! * MD5: the RFC 1321 §A.5 test suite
//! * SHA-1 / SHA-256: FIPS 180 (NIST CAVP) vectors, including the
//!   one-million-'a' extended message
//! * RSA PKCS#1 v1.5: fixed-seed keypair with pinned golden signatures,
//!   sign/verify round-trips, and tamper rejection
//!
//! A from-scratch cipher that merely round-trips can still be wrong in
//! every byte; only external vectors catch a transposed permutation
//! table or a mis-ordered S-box.

use kg_crypto::des::{Des, TripleDes};
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::md5::Md5;
use kg_crypto::rsa::{HashAlg, RsaKeyPair};
use kg_crypto::sha1::Sha1;
use kg_crypto::sha256::Sha256;
use kg_crypto::{BlockCipher, Digest};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// DES — FIPS 46-3 / NBS SP 500-20 validation values
// ---------------------------------------------------------------------------

/// `(key, plaintext, ciphertext)` single-block vectors. The first is the
/// worked example every DES description traces end to end; the rest are
/// from the NBS SP 500-20 validation tables (all-zero and all-one keys,
/// sparse keys, and the classic 0123456789ABCDEF exchanges).
const DES_VECTORS: &[(u64, u64, u64)] = &[
    (0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405),
    (0x0000000000000000, 0x0000000000000000, 0x8CA64DE9C1B123A7),
    (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x7359B2163E4EDC58),
    (0x3000000000000000, 0x1000000000000001, 0x958E6E627A05557B),
    (0x1111111111111111, 0x1111111111111111, 0xF40379AB9E0EC533),
    (0x0123456789ABCDEF, 0x1111111111111111, 0x17668DFC7292532D),
    (0x1111111111111111, 0x0123456789ABCDEF, 0x8A5AE1F81AB8F2DD),
    (0xFEDCBA9876543210, 0x0123456789ABCDEF, 0xED39D950FA74BCC4),
    (0x7CA110454A1A6E57, 0x01A1D6D039776742, 0x690F5B0D9A26939B),
    (0x0131D9619DC1376E, 0x5CD54CA83DEF57DA, 0x7A389D10354BD271),
];

#[test]
fn des_fips_46_3_known_answers() {
    for &(key, plain, cipher) in DES_VECTORS {
        let des = Des::new(&key.to_be_bytes()).expect("8-byte key");
        assert_eq!(
            des.encrypt_u64(plain),
            cipher,
            "DES encrypt mismatch for key {key:016X}, pt {plain:016X}"
        );
        assert_eq!(
            des.decrypt_u64(cipher),
            plain,
            "DES decrypt mismatch for key {key:016X}, ct {cipher:016X}"
        );
    }
}

#[test]
fn des_complementation_property() {
    // FIPS 46-3's structural identity: E_{~K}(~P) == ~E_K(P). A cipher
    // with any mis-wired permutation fails this across random inputs.
    let mut rng = HmacDrbg::from_seed(0xDE5);
    use rand::RngCore;
    for _ in 0..16 {
        let key = rng.next_u64();
        let plain = rng.next_u64();
        let a = Des::new(&key.to_be_bytes()).unwrap().encrypt_u64(plain);
        let b = Des::new(&(!key).to_be_bytes()).unwrap().encrypt_u64(!plain);
        assert_eq!(!a, b, "complementation property violated");
    }
}

#[test]
fn triple_des_with_equal_keys_degenerates_to_des() {
    // FIPS 46-3 keying option 3: K1 = K2 = K3 makes EDE3 a single DES.
    for &(key, plain, cipher) in DES_VECTORS {
        let mut k24 = [0u8; 24];
        for part in k24.chunks_mut(8) {
            part.copy_from_slice(&key.to_be_bytes());
        }
        let tdes = TripleDes::new(&k24).expect("24-byte key");
        let mut block = plain.to_be_bytes();
        tdes.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), cipher, "EDE3(K,K,K) != DES(K)");
        tdes.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), plain);
    }
}

#[test]
fn triple_des_is_ede3_composition() {
    // EDE3 with independent keys must equal E_{K3}(D_{K2}(E_{K1}(P)))
    // computed from the single-DES primitives.
    let k1 = 0x0123456789ABCDEFu64;
    let k2 = 0x23456789ABCDEF01u64;
    let k3 = 0x456789ABCDEF0123u64;
    let mut k24 = Vec::new();
    for k in [k1, k2, k3] {
        k24.extend_from_slice(&k.to_be_bytes());
    }
    let tdes = TripleDes::new(&k24).unwrap();
    for plain in [0u64, 0x0011223344556677, u64::MAX, 0x8000000000000001] {
        let expect = Des::new(&k3.to_be_bytes()).unwrap().encrypt_u64(
            Des::new(&k2.to_be_bytes())
                .unwrap()
                .decrypt_u64(Des::new(&k1.to_be_bytes()).unwrap().encrypt_u64(plain)),
        );
        let mut block = plain.to_be_bytes();
        tdes.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), expect);
        tdes.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), plain);
    }
}

// ---------------------------------------------------------------------------
// MD5 — RFC 1321 §A.5
// ---------------------------------------------------------------------------

const MD5_SUITE: &[(&str, &str)] = &[
    ("", "d41d8cd98f00b204e9800998ecf8427e"),
    ("a", "0cc175b9c0f1b6a831c399e269772661"),
    ("abc", "900150983cd24fb0d6963f7d28e17f72"),
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
    (
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f",
    ),
    (
        "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a",
    ),
];

#[test]
fn md5_rfc_1321_suite() {
    for (msg, want) in MD5_SUITE {
        assert_eq!(hex(&Md5::digest(msg.as_bytes())), *want, "MD5({msg:?})");
    }
}

#[test]
fn md5_incremental_equals_oneshot() {
    // Feeding byte-by-byte must cross the 64-byte block boundary the
    // same way a single update does.
    let msg = MD5_SUITE.last().unwrap().0.as_bytes();
    let mut h = Md5::new();
    for b in msg {
        h.update(std::slice::from_ref(b));
    }
    assert_eq!(h.finalize(), Md5::digest(msg));
}

// ---------------------------------------------------------------------------
// SHA-1 / SHA-256 — FIPS 180 (NIST CAVP)
// ---------------------------------------------------------------------------

const SHA1_VECTORS: &[(&str, &str)] = &[
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
];

const SHA256_VECTORS: &[(&str, &str)] = &[
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
];

#[test]
fn sha1_fips_180_vectors() {
    for (msg, want) in SHA1_VECTORS {
        assert_eq!(hex(&Sha1::digest(msg.as_bytes())), *want, "SHA-1({msg:?})");
    }
}

#[test]
fn sha256_fips_180_vectors() {
    for (msg, want) in SHA256_VECTORS {
        assert_eq!(hex(&Sha256::digest(msg.as_bytes())), *want, "SHA-256({msg:?})");
    }
}

#[test]
fn sha_million_a_extended_vectors() {
    // FIPS 180's extended message: 1,000,000 repetitions of 'a', fed in
    // uneven chunks to exercise block-boundary handling.
    let chunk = [b'a'; 997];
    let mut s1 = Sha1::new();
    let mut s256 = Sha256::new();
    let mut fed = 0usize;
    while fed < 1_000_000 {
        let take = chunk.len().min(1_000_000 - fed);
        s1.update(&chunk[..take]);
        s256.update(&chunk[..take]);
        fed += take;
    }
    assert_eq!(hex(&s1.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    assert_eq!(
        hex(&s256.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

// ---------------------------------------------------------------------------
// RSA PKCS#1 v1.5 — fixed-seed keypair, pinned golden signatures
// ---------------------------------------------------------------------------

/// The keypair every RSA KAT uses: RSA-512 generated from a pinned DRBG
/// seed, so the same primes — and therefore the same signatures — come
/// out on every run and every machine.
fn fixed_keypair() -> RsaKeyPair {
    let mut rng = HmacDrbg::from_seed(0x5253_4131);
    RsaKeyPair::generate(512, &mut rng).expect("fixed-seed keygen")
}

/// Golden signatures over `b"attack at dawn"` under the fixed keypair.
/// These pin the whole pipeline — prime generation, CRT signing, EMSA
/// PKCS#1 v1.5 encoding, and the digest — against regressions.
const RSA_GOLDEN_MSG: &[u8] = b"attack at dawn";
const RSA_GOLDEN: &[(HashAlg, &str)] = &[
    (
        HashAlg::Md5,
        "1eab12cb7438294f36c42032763ec20947f8787f766a1dd88bf8e252bd0579a9\
         1756076c4889833d60f88250b8276fb6c264dbf4acae97d2b49b1ba710a72fca",
    ),
    (
        HashAlg::Sha1,
        "70f5a496bd38adcfb27f6ea8a98fc0920e39a532fa24ddcc11bed8759e7b7440\
         04f2067f78a1428e278746b4866e3549f3b4bcd47c00d304486bf65a6c16d7dd",
    ),
    (
        HashAlg::Sha256,
        "4677390f4e3b006308894f8ee08414f66c06839ceb490a31746432233d82f3b3\
         4cbff73ec99c03b7b75395d8d4c54560db1c6252e79daa2aa89eb9cb78650a0e",
    ),
];

#[test]
fn rsa_pkcs1_v15_golden_signatures() {
    let kp = fixed_keypair();
    for (alg, want) in RSA_GOLDEN {
        let sig = kp.private.sign(*alg, RSA_GOLDEN_MSG).expect("sign");
        assert_eq!(sig.len(), kp.public().modulus_len(), "PKCS#1 signature must be modulus-sized");
        assert_eq!(hex(&sig), *want, "pinned {alg:?} signature changed");
        kp.public().verify(*alg, RSA_GOLDEN_MSG, &sig).expect("golden signature verifies");
    }
}

#[test]
fn rsa_verify_rejects_tampering() {
    let kp = fixed_keypair();
    let sig = kp.private.sign(HashAlg::Sha256, RSA_GOLDEN_MSG).unwrap();

    // Flipped message bit.
    kp.public()
        .verify(HashAlg::Sha256, b"attack at dusk", &sig)
        .expect_err("verify must reject a different message");
    // Flipped signature bit.
    let mut bad = sig.clone();
    bad[10] ^= 0x01;
    kp.public()
        .verify(HashAlg::Sha256, RSA_GOLDEN_MSG, &bad)
        .expect_err("verify must reject a corrupted signature");
    // Wrong digest algorithm.
    kp.public()
        .verify(HashAlg::Sha1, RSA_GOLDEN_MSG, &sig)
        .expect_err("verify must reject an algorithm mismatch");
    // Truncated signature.
    kp.public()
        .verify(HashAlg::Sha256, RSA_GOLDEN_MSG, &sig[1..])
        .expect_err("verify must reject a short signature");
}

#[test]
fn rsa_signatures_are_deterministic_across_instances() {
    // PKCS#1 v1.5 signing is deterministic: two independently generated
    // (same-seed) keypairs must produce bit-identical signatures.
    let a = fixed_keypair().private.sign(HashAlg::Md5, b"xyzzy").unwrap();
    let b = fixed_keypair().private.sign(HashAlg::Md5, b"xyzzy").unwrap();
    assert_eq!(a, b);
}
