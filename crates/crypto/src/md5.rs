//! MD5 message digest (RFC 1321).
//!
//! The paper computes an MD5 digest over every rekey message and, for the
//! Section 4 technique, over small digest-concatenation messages forming a
//! Merkle tree. MD5 is cryptographically broken; it is implemented here
//! solely for reproduction fidelity (SHA-256 is available for ablations).

use crate::Digest;

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// The sine-derived additive constants, `floor(2^32 * |sin(i+1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Md5 {
    /// Hash a single buffer to its 16-byte digest as a fixed array.
    pub fn oneshot(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        let v = Digest::finalize(h);
        v.try_into().expect("md5 outputs 16 bytes")
    }

    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Digest for Md5 {
    const OUTPUT_SIZE: usize = 16;

    fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything was absorbed into the partial buffer; the
                // trailing copy below must not clobber `buffered`.
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut tmp = [0u8; 64];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until the length field fits.
        self.update(&[0x80]);
        // `update` adjusted total_len; that's fine, we captured bit_len first.
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.total_len = bit_len / 8; // keep invariant tidy (not used again)
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);
        let mut out = Vec::with_capacity(16);
        for word in self.state {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The full RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex(&Md5::digest(input.as_bytes())), *expected, "input {input:?}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Md5::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn oneshot_array_matches_digest_vec() {
        let d = Md5::oneshot(b"abc");
        assert_eq!(d.to_vec(), Md5::digest(b"abc"));
    }

    #[test]
    fn length_extension_sensitivity() {
        // Messages of length 55, 56, 57 exercise all padding branches.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 121] {
            let m = vec![0xa5u8; len];
            let d1 = Md5::digest(&m);
            let mut m2 = m.clone();
            m2.push(0);
            assert_ne!(d1, Md5::digest(&m2), "len {len}");
        }
    }

    proptest::proptest! {
        #[test]
        fn deterministic(data in proptest::collection::vec(0u8.., 0..512)) {
            proptest::prop_assert_eq!(Md5::digest(&data), Md5::digest(&data));
        }

        #[test]
        fn split_invariance(data in proptest::collection::vec(0u8.., 0..512), split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            proptest::prop_assert_eq!(h.finalize(), Md5::digest(&data));
        }
    }
}
