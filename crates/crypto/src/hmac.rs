//! HMAC (RFC 2104) over any [`Digest`].
//!
//! Used by [`crate::drbg::HmacDrbg`] (deterministic key generation for
//! reproducible experiments) and available as a message-integrity-check
//! option for rekey messages (the paper's rekey format reserves a MIC
//! field alongside the digital signature).

use crate::Digest;

const BLOCK_SIZE: usize = 64; // MD5 / SHA-1 / SHA-256 all use 64-byte blocks.

/// Compute `HMAC(key, message)` with digest `D`.
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut mac = Hmac::<D>::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC computation.
pub struct Hmac<D: Digest> {
    inner: D,
    okey: [u8; BLOCK_SIZE],
}

impl<D: Digest> Hmac<D> {
    /// Start an HMAC with the given key (any length; hashed down if longer
    /// than one block, zero-padded if shorter, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let d = D::digest(key);
            k[..d.len()].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ikey = [0u8; BLOCK_SIZE];
        let mut okey = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ikey[i] = k[i] ^ 0x36;
            okey[i] = k[i] ^ 0x5c;
        }
        let mut inner = D::new();
        inner.update(&ikey);
        Hmac { inner, okey }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the MAC.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.okey);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time MAC comparison: returns true iff `a == b` without
/// short-circuiting on the first mismatching byte.
pub fn verify_mac(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::Md5;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 HMAC-MD5 test vectors.
    #[test]
    fn rfc2202_hmac_md5() {
        assert_eq!(hex(&hmac::<Md5>(&[0x0b; 16], b"Hi There")), "9294727a3638bb1c13f48ef8158bfc9d");
        assert_eq!(
            hex(&hmac::<Md5>(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
        assert_eq!(hex(&hmac::<Md5>(&[0xaa; 16], &[0xdd; 50])), "56be34521d144c88dbb8c733f0e8b3f6");
        // 80-byte key (> block handling requires key hashing only above 64).
        assert_eq!(
            hex(&hmac::<Md5>(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"
        );
    }

    /// RFC 4231 test case 1 and 2 for HMAC-SHA-256.
    #[test]
    fn rfc4231_hmac_sha256() {
        assert_eq!(
            hex(&hmac::<Sha256>(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"secret key";
        let msg: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let oneshot = hmac::<Sha256>(key, &msg);
        let mut mac = Hmac::<Sha256>::new(key);
        for piece in msg.chunks(17) {
            mac.update(piece);
        }
        assert_eq!(mac.finalize(), oneshot);
    }

    #[test]
    fn verify_mac_behaviour() {
        let a = hmac::<Md5>(b"k", b"m");
        let mut b = a.clone();
        assert!(verify_mac(&a, &b));
        b[0] ^= 1;
        assert!(!verify_mac(&a, &b));
        assert!(!verify_mac(&a, &a[..a.len() - 1]));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac::<Md5>(b"key1", b"msg"), hmac::<Md5>(b"key2", b"msg"));
        assert_ne!(hmac::<Md5>(b"key", b"msg1"), hmac::<Md5>(b"key", b"msg2"));
    }
}
