//! Error type shared by the cryptographic primitives.

use std::fmt;

/// Errors raised by the primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A key had the wrong length for the requested algorithm.
    InvalidKeyLength {
        /// Length the algorithm expected, in bytes.
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// Ciphertext length is not a multiple of the cipher block size.
    InvalidCiphertextLength {
        /// The cipher's block size in bytes.
        block_size: usize,
        /// The offending ciphertext length.
        actual: usize,
    },
    /// Padding bytes recovered at decryption time are malformed.
    ///
    /// In the rekeying protocols this is the signal that a ciphertext was
    /// decrypted with the *wrong* key — e.g. an evicted member replaying its
    /// stale keyset against fresh rekey messages.
    BadPadding,
    /// An initialization vector had the wrong length.
    InvalidIvLength {
        /// Expected IV length (= block size).
        expected: usize,
        /// Provided IV length.
        actual: usize,
    },
    /// A signature failed verification.
    SignatureMismatch,
    /// Input to a signature operation exceeds what the modulus can absorb.
    MessageTooLong,
    /// The encoded value is not a valid signature/ciphertext for the key
    /// (e.g. the integer is not smaller than the modulus).
    ValueOutOfRange,
    /// RSA key generation failed to find primes within the attempt budget.
    KeyGenerationFailed,
    /// A malformed or truncated encoding was encountered.
    MalformedEncoding(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(f, "invalid key length: expected {expected} bytes, got {actual}")
            }
            CryptoError::InvalidCiphertextLength { block_size, actual } => write!(
                f,
                "ciphertext length {actual} is not a multiple of the {block_size}-byte block size"
            ),
            CryptoError::BadPadding => write!(f, "bad padding (likely wrong decryption key)"),
            CryptoError::InvalidIvLength { expected, actual } => {
                write!(f, "invalid IV length: expected {expected} bytes, got {actual}")
            }
            CryptoError::SignatureMismatch => write!(f, "signature verification failed"),
            CryptoError::MessageTooLong => write!(f, "message too long for modulus"),
            CryptoError::ValueOutOfRange => write!(f, "value out of range for key"),
            CryptoError::KeyGenerationFailed => write!(f, "key generation failed"),
            CryptoError::MalformedEncoding(what) => write!(f, "malformed encoding: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CryptoError::InvalidKeyLength { expected: 8, actual: 7 };
        assert!(e.to_string().contains("expected 8"));
        assert!(e.to_string().contains("got 7"));
        let e = CryptoError::InvalidCiphertextLength { block_size: 8, actual: 13 };
        assert!(e.to_string().contains("13"));
        assert!(CryptoError::BadPadding.to_string().contains("padding"));
        assert!(CryptoError::SignatureMismatch.to_string().contains("verification"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CryptoError::BadPadding, CryptoError::BadPadding);
        assert_ne!(CryptoError::BadPadding, CryptoError::MalformedEncoding("x"));
    }
}
