//! The DES block cipher (FIPS 46-3) and Triple-DES (EDE3).
//!
//! The paper's prototype encrypts every new key with **DES-CBC**; all rekey
//! message sizes in Tables 4–6 are multiples of the 8-byte DES block. This
//! is a straightforward table-driven implementation: clarity and auditability
//! of the operation count matter more here than raw throughput (the
//! benchmarks measure *relative* costs, and DES's cost relative to MD5/RSA is
//! preserved by any faithful implementation).
//!
//! DES is, of course, cryptographically broken (56-bit key). It is provided
//! for reproduction fidelity; [`TripleDes`] is available where a less
//! embarrassing cipher is wanted at the same block size.

use crate::{BlockCipher, CryptoError};

/// Initial permutation (FIPS 46-3, 1-indexed positions of the input bit
/// placed at each output position, MSB first).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (the inverse of [`IP`]).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E: 32 bits -> 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// The eight S-boxes. `SBOXES[i][row][col]` per FIPS 46-3.
const SBOXES: [[[u8; 16]; 4]; 8] = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
];

/// Permuted choice 1: 64-bit key -> 56 bits (drops parity bits).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2: 56 bits -> 48-bit round key.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule for the 16 rounds.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// Apply a FIPS-style permutation table: output bit `i` (counting from the
/// MSB of an `out_bits`-wide value) is input bit `table[i]` (1-indexed from
/// the MSB of an `in_bits`-wide value).
fn permute(input: u64, table: &[u8], in_bits: u32) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out <<= 1;
        out |= (input >> (in_bits - src as u32)) & 1;
    }
    out
}

/// The 16 48-bit round keys derived from a 64-bit key.
fn key_schedule(key64: u64) -> [u64; 16] {
    let pc1 = permute(key64, &PC1, 64);
    let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
    let mut d = pc1 & 0x0FFF_FFFF;
    let mut subkeys = [0u64; 16];
    for (round, &s) in SHIFTS.iter().enumerate() {
        c = ((c << s) | (c >> (28 - s as u32))) & 0x0FFF_FFFF;
        d = ((d << s) | (d >> (28 - s as u32))) & 0x0FFF_FFFF;
        subkeys[round] = permute((c << 28) | d, &PC2, 56);
    }
    subkeys
}

/// The Feistel function: expand, mix with the round key, substitute, permute.
fn feistel(r: u32, subkey: u64) -> u32 {
    let x = permute(r as u64, &E, 32) ^ subkey;
    let mut out = 0u32;
    for (box_idx, sbox) in SBOXES.iter().enumerate() {
        let six = ((x >> (42 - 6 * box_idx)) & 0x3F) as usize;
        let row = ((six >> 4) & 0b10) | (six & 1);
        let col = (six >> 1) & 0xF;
        out = (out << 4) | sbox[row][col] as u32;
    }
    permute(out as u64, &P, 32) as u32
}

fn des_rounds(block: u64, subkeys: &[u64; 16], decrypt: bool) -> u64 {
    let ip = permute(block, &IP, 64);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for round in 0..16 {
        let k = if decrypt { subkeys[15 - round] } else { subkeys[round] };
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    // Note the final swap: the preoutput is R16 || L16.
    permute(((r as u64) << 32) | l as u64, &FP, 64)
}

/// The DES block cipher with a precomputed key schedule.
///
/// `Debug` intentionally reveals nothing about the key schedule.
#[derive(Clone)]
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Key length in bytes (including the 8 unused parity bits).
    pub const KEY_SIZE: usize = 8;

    /// Build a cipher from an 8-byte key. Parity bits are ignored, as is
    /// conventional.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        if key.len() != Self::KEY_SIZE {
            return Err(CryptoError::InvalidKeyLength {
                expected: Self::KEY_SIZE,
                actual: key.len(),
            });
        }
        let key64 = u64::from_be_bytes(key.try_into().expect("length checked"));
        Ok(Des { subkeys: key_schedule(key64) })
    }

    /// Encrypt a single 8-byte block given as a `u64` (big-endian semantics).
    pub fn encrypt_u64(&self, block: u64) -> u64 {
        des_rounds(block, &self.subkeys, false)
    }

    /// Decrypt a single 8-byte block given as a `u64`.
    pub fn decrypt_u64(&self, block: u64) -> u64 {
        des_rounds(block, &self.subkeys, true)
    }
}

impl std::fmt::Debug for Des {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Des(key schedule elided)")
    }
}

impl BlockCipher for Des {
    const BLOCK_SIZE: usize = 8;

    fn encrypt_block(&self, block: &mut [u8]) {
        debug_assert_eq!(block.len(), 8);
        let v = u64::from_be_bytes(block.try_into().expect("8-byte block"));
        block.copy_from_slice(&self.encrypt_u64(v).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        debug_assert_eq!(block.len(), 8);
        let v = u64::from_be_bytes(block.try_into().expect("8-byte block"));
        block.copy_from_slice(&self.decrypt_u64(v).to_be_bytes());
    }
}

/// Triple-DES in EDE3 mode (encrypt-decrypt-encrypt with three independent
/// keys). Same 8-byte block as DES, 24-byte key.
#[derive(Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Key length in bytes (three DES keys).
    pub const KEY_SIZE: usize = 24;

    /// Build a cipher from a 24-byte key (K1 || K2 || K3).
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        if key.len() != Self::KEY_SIZE {
            return Err(CryptoError::InvalidKeyLength {
                expected: Self::KEY_SIZE,
                actual: key.len(),
            });
        }
        Ok(TripleDes {
            k1: Des::new(&key[0..8])?,
            k2: Des::new(&key[8..16])?,
            k3: Des::new(&key[16..24])?,
        })
    }
}

impl std::fmt::Debug for TripleDes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TripleDes(key schedule elided)")
    }
}

impl BlockCipher for TripleDes {
    const BLOCK_SIZE: usize = 8;

    fn encrypt_block(&self, block: &mut [u8]) {
        let v = u64::from_be_bytes(block.try_into().expect("8-byte block"));
        let v = self.k3.encrypt_u64(self.k2.decrypt_u64(self.k1.encrypt_u64(v)));
        block.copy_from_slice(&v.to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let v = u64::from_be_bytes(block.try_into().expect("8-byte block"));
        let v = self.k1.decrypt_u64(self.k2.encrypt_u64(self.k3.decrypt_u64(v)));
        block.copy_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from many DES expositions.
    #[test]
    fn known_answer_classic() {
        let des = Des::new(&0x1334_5779_9BBC_DFF1u64.to_be_bytes()).unwrap();
        assert_eq!(des.encrypt_u64(0x0123_4567_89AB_CDEF), 0x85E8_1354_0F0A_B405);
        assert_eq!(des.decrypt_u64(0x85E8_1354_0F0A_B405), 0x0123_4567_89AB_CDEF);
    }

    /// A second published vector ("8787878787878787" under 0E329232EA6D0D73
    /// encrypts to all zeros).
    #[test]
    fn known_answer_zero_ciphertext() {
        let des = Des::new(&0x0E32_9232_EA6D_0D73u64.to_be_bytes()).unwrap();
        assert_eq!(des.encrypt_u64(0x8787_8787_8787_8787), 0);
        assert_eq!(des.decrypt_u64(0), 0x8787_8787_8787_8787);
    }

    #[test]
    fn all_zero_key_and_block() {
        // DES with the (weak) all-zero key on the all-zero block — a widely
        // published vector.
        let des = Des::new(&[0u8; 8]).unwrap();
        assert_eq!(des.encrypt_u64(0), 0x8CA6_4DE9_C1B1_23A7);
    }

    #[test]
    fn block_cipher_trait_roundtrip() {
        let des = Des::new(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut block = *b"KEYGRAPH";
        let orig = block;
        des.encrypt_block(&mut block);
        assert_ne!(block, orig);
        des.decrypt_block(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn rejects_bad_key_length() {
        assert_eq!(
            Des::new(&[0u8; 7]).unwrap_err(),
            CryptoError::InvalidKeyLength { expected: 8, actual: 7 }
        );
        assert_eq!(
            TripleDes::new(&[0u8; 8]).unwrap_err(),
            CryptoError::InvalidKeyLength { expected: 24, actual: 8 }
        );
    }

    #[test]
    fn triple_des_degenerates_to_des_with_equal_keys() {
        let raw = [0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1];
        let mut k24 = Vec::new();
        for _ in 0..3 {
            k24.extend_from_slice(&raw);
        }
        let tdes = TripleDes::new(&k24).unwrap();
        let des = Des::new(&raw).unwrap();
        let mut a = *b"01234567";
        let mut b = a;
        tdes.encrypt_block(&mut a);
        des.encrypt_block(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn triple_des_roundtrip_distinct_keys() {
        let key: Vec<u8> = (0u8..24).collect();
        let tdes = TripleDes::new(&key).unwrap();
        let mut block = *b"\x00\x11\x22\x33\x44\x55\x66\x77";
        let orig = block;
        tdes.encrypt_block(&mut block);
        tdes.decrypt_block(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn parity_bits_are_ignored() {
        // Flipping the low (parity) bit of each key byte must not change the
        // cipher.
        let k1 = [0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
        let mut k2 = k1;
        for b in k2.iter_mut() {
            *b ^= 1;
        }
        let d1 = Des::new(&k1).unwrap();
        let d2 = Des::new(&k2).unwrap();
        assert_eq!(d1.encrypt_u64(0xAABB_CCDD_EEFF_0011), d2.encrypt_u64(0xAABB_CCDD_EEFF_0011));
    }

    #[test]
    fn complementation_property() {
        // DES satisfies E_{~k}(~p) = ~E_k(p).
        let k = 0x1334_5779_9BBC_DFF1u64;
        let p = 0x0123_4567_89AB_CDEFu64;
        let c = Des::new(&k.to_be_bytes()).unwrap().encrypt_u64(p);
        let c2 = Des::new(&(!k).to_be_bytes()).unwrap().encrypt_u64(!p);
        assert_eq!(c2, !c);
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_random(key in proptest::array::uniform8(0u8..), block: u64) {
            let des = Des::new(&key).unwrap();
            proptest::prop_assert_eq!(des.decrypt_u64(des.encrypt_u64(block)), block);
        }

        #[test]
        fn triple_des_roundtrip_random(key in proptest::collection::vec(0u8.., 24), block: u64) {
            let tdes = TripleDes::new(&key).unwrap();
            let mut buf = block.to_be_bytes();
            tdes.encrypt_block(&mut buf);
            tdes.decrypt_block(&mut buf);
            proptest::prop_assert_eq!(u64::from_be_bytes(buf), block);
        }
    }
}
