//! Arbitrary-precision unsigned integers — the arithmetic substrate for RSA.
//!
//! The paper signs rekey messages with RSA using a 512-bit modulus; nothing
//! in the offline dependency set provides big-number arithmetic, so this
//! module implements it from scratch:
//!
//! * base-2^32 limbs, little-endian, always normalized (no trailing zeros);
//! * schoolbook and Karatsuba multiplication (Karatsuba kicks in above a
//!   threshold; both are property-tested against each other);
//! * Knuth Algorithm D division with remainder;
//! * binary extended GCD for modular inverses;
//! * left-to-right square-and-multiply modular exponentiation;
//! * Miller–Rabin probabilistic primality testing (see [`crate::prime`]).
//!
//! Performance is adequate for 512–2048-bit RSA at benchmark volume; the
//! point of the reproduction is the *relative* cost of a signature versus a
//! DES encryption (≈ two orders of magnitude in the paper, similar here),
//! which any correct implementation preserves.

use std::cmp::Ordering;
use std::fmt;

/// Number of limbs below which schoolbook multiplication is used directly.
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian base-2^32 limbs; empty means zero; the last limb is
    /// nonzero (normalization invariant).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint { limbs: vec![v as u32, (v >> 32) as u32] };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut chunk_val: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            chunk_val |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(chunk_val);
                chunk_val = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(chunk_val);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// Returns `None` if the value does not fit (needed for fixed-width RSA
    /// signature encoding).
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parse a hexadecimal string (no prefix; case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut idx = 0;
        // Odd-length strings get an implicit leading zero nibble.
        if s.len() % 2 == 1 {
            bytes.push(hex_val(s[0])?);
            idx = 1;
        }
        while idx < s.len() {
            bytes.push(hex_val(s[idx])? << 4 | hex_val(s[idx + 1])?);
            idx += 2;
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    /// Render as lowercase hex with no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics if `other > self` (callers guard; this is an
    /// internal arithmetic substrate, not a public API surface that should
    /// silently wrap).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let mut diff = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other`, choosing schoolbook or Karatsuba by operand size.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(other.limbs.len()) < KARATSUBA_THRESHOLD {
            self.mul_schoolbook(other)
        } else {
            self.mul_karatsuba(other)
        }
    }

    /// Plain O(n·m) multiplication.
    pub fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Karatsuba multiplication, O(n^1.58); recursion bottoms out at
    /// [`KARATSUBA_THRESHOLD`] limbs.
    pub fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        if self.limbs.len().min(other.limbs.len()) < KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        let half = n / 2;
        let (a0, a1) = self.split_at(half);
        let (b0, b1) = other.split_at(half);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
        z2.shl_limbs(2 * half).add(&z1.shl_limbs(half)).add(&z0)
    }

    /// Split into (low `at` limbs, remaining high limbs).
    fn split_at(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.limbs.len() {
            return (self.clone(), BigUint::zero());
        }
        let mut lo = BigUint { limbs: self.limbs[..at].to_vec() };
        lo.normalize();
        let hi = BigUint { limbs: self.limbs[at..].to_vec() };
        (lo, hi)
    }

    /// Multiply by 2^(32·n) (limb-wise left shift).
    fn shl_limbs(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; n];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut limbs: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..limbs.len() {
                limbs[i] >>= bit_shift;
                if i + 1 < limbs.len() {
                    limbs[i] |= limbs[i + 1] << (32 - bit_shift);
                }
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// `(self / divisor, self % divisor)`. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut quotient = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u64;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 32) | l as u64;
                quotient.push((cur / d) as u32);
                rem = cur % d;
            }
            quotient.reverse();
            let mut q = BigUint { limbs: quotient };
            q.normalize();
            return (q, BigUint::from_u64(rem));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1-D, for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("multi-limb").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un: Vec<u32> = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs during the loop
        let vn = &v.limbs;
        let v_top = vn[n - 1] as u64;
        let v_second = vn[n - 2] as u64;

        let mut q = vec![0u32; m + 1];
        // D2–D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate q̂.
            let numerator = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = numerator / v_top;
            let mut rhat = numerator % v_top;
            while qhat >= 1 << 32 || qhat * v_second > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1 << 32 {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - borrow - (p as u32) as i64;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - borrow - carry as i64;
            un[j + n] = t as u32;
            // D5–D6: if we subtracted too much, add back.
            if t < 0 {
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let sum = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = sum as u32;
                    carry = sum >> 32;
                }
                un[j + n] = (un[j + n] as u64 + carry) as u32;
            }
            q[j] = qhat as u32;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: un[..n].to_vec() };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `self^exponent mod modulus` via left-to-right square-and-multiply.
    ///
    /// Not constant-time — acceptable for a measurement prototype whose
    /// threat model (the paper's) is protocol-level, not side-channel-level.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self.rem(modulus);
        let nbits = exponent.bit_len();
        for i in (0..nbits).rev() {
            result = result.mul(&result).rem(modulus);
            if exponent.bit(i) {
                result = result.mul(&base).rem(modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse: `x` such that `self * x ≡ 1 (mod modulus)`, or
    /// `None` when `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid on (modulus, self mod modulus), tracking only the
        // coefficient of `self`, with signs handled explicitly.
        if modulus.is_zero() {
            return None;
        }
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t0, t1 with explicit signs (value, is_negative).
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q*t1 (signed arithmetic)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // Map the coefficient into [0, modulus).
        let (val, neg) = t0;
        let val = val.rem(modulus);
        Some(if neg && !val.is_zero() { modulus.sub(&val) } else { val })
    }
}

/// Signed subtraction helper for the extended Euclid: `a - b` where each
/// operand is (magnitude, is_negative).
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigUint {
    /// Hex is the useful view for 512-bit values.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0, 1]), BigUint::one());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(n(0x1_0000_0000).to_bytes_be(), vec![1, 0, 0, 0, 0]);
    }

    #[test]
    fn byte_roundtrip() {
        let v = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(v.to_hex(), "deadbeefcafebabe0123456789abcdef");
    }

    #[test]
    fn padded_serialization() {
        let v = n(0x1234);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert_eq!(v.to_bytes_be_padded(2).unwrap(), vec![0x12, 0x34]);
        assert!(v.to_bytes_be_padded(1).is_none());
        assert_eq!(BigUint::zero().to_bytes_be_padded(3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(BigUint::from_hex("ff").unwrap(), n(255));
        assert_eq!(BigUint::from_hex("100").unwrap(), n(256)); // odd length
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(n(2).add(&n(3)), n(5));
        assert_eq!(n(u64::MAX).add(&n(1)).to_hex(), "10000000000000000");
        assert_eq!(n(5).sub(&n(3)), n(2));
        assert_eq!(n(5).sub(&n(5)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(3).sub(&n(5));
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(7).mul(&n(6)), n(42));
        assert_eq!(n(0).mul(&n(12345)), BigUint::zero());
        assert_eq!(
            n(u32::MAX as u64).mul(&n(u32::MAX as u64)),
            n((u32::MAX as u64) * (u32::MAX as u64))
        );
    }

    #[test]
    fn mul_large_known() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let m = BigUint::from_hex(&"f".repeat(32)).unwrap();
        let sq = m.mul(&m);
        let expected =
            BigUint::from_hex("fffffffffffffffffffffffffffffffe00000000000000000000000000000001")
                .unwrap();
        assert_eq!(sq, expected);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Operands above the threshold (32 limbs = 1024 bits).
        let a = BigUint::from_hex(&"a5".repeat(160)).unwrap();
        let b = BigUint::from_hex(&"3c".repeat(170)).unwrap();
        assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(35).to_hex(), "800000000");
        assert_eq!(n(1).shl(35).shr(35), n(1));
        assert_eq!(n(0b1011).shr(2), n(0b10));
        assert_eq!(n(123).shr(64), BigUint::zero());
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
    }

    #[test]
    fn bit_accessors() {
        let v = n(0b1010_0001);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(5));
        assert!(v.bit(7));
        assert!(!v.bit(100));
        assert_eq!(v.bit_len(), 8);
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(n(1).shl(511).bit_len(), 512);
    }

    #[test]
    fn division_small() {
        let (q, r) = n(17).div_rem(&n(5));
        assert_eq!((q, r), (n(3), n(2)));
        let (q, r) = n(5).div_rem(&n(17));
        assert_eq!((q, r), (BigUint::zero(), n(5)));
        let (q, r) = n(17).div_rem(&n(17));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn division_multi_limb_knuth() {
        // A case exercising the add-back path is hard to hit randomly;
        // verify with algebraic identities on large values instead.
        let a = BigUint::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("ffffffffffffffff0000000000000001").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_known() {
        // 4^13 mod 497 = 445 (classic textbook example)
        assert_eq!(n(4).modpow(&n(13), &n(497)), n(445));
        // Fermat: a^(p-1) ≡ 1 mod p for prime p.
        let p = n(1_000_000_007);
        assert_eq!(n(123456).modpow(&p.sub(&n(1)), &p), n(1));
        // Modulus 1 → 0.
        assert_eq!(n(5).modpow(&n(3), &n(1)), BigUint::zero());
        // exponent 0 → 1.
        assert_eq!(n(5).modpow(&BigUint::zero(), &n(7)), n(1));
    }

    #[test]
    fn gcd_known() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(5)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(48).gcd(&n(36)), n(12));
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(n(3).mod_inverse(&n(11)).unwrap(), n(4));
        // gcd != 1 → None
        assert!(n(6).mod_inverse(&n(9)).is_none());
        // 65537^{-1} mod a known 64-bit odd number round-trips.
        let m = n(0xFFFF_FFFF_FFFF_FFC5); // largest 64-bit prime
        let e = n(65537);
        let d = e.mod_inverse(&m).unwrap();
        assert_eq!(e.mul(&d).rem(&m), n(1));
    }

    #[test]
    fn ordering() {
        assert!(n(5) > n(3));
        assert!(BigUint::from_hex("100000000").unwrap() > n(u32::MAX as u64));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    proptest::proptest! {
        #[test]
        fn add_sub_roundtrip(a: u64, b: u64) {
            let big = n(a).add(&n(b));
            proptest::prop_assert_eq!(big.sub(&n(b)), n(a));
        }

        #[test]
        fn mul_matches_u128(a: u64, b: u64) {
            let prod = n(a).mul(&n(b));
            let expected = (a as u128) * (b as u128);
            let hi = (expected >> 64) as u64;
            let lo = expected as u64;
            proptest::prop_assert_eq!(prod, n(hi).shl(64).add(&n(lo)));
        }

        #[test]
        fn div_rem_identity(a in proptest::collection::vec(0u8.., 1..48), b in proptest::collection::vec(0u8.., 1..24)) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            if !b.is_zero() {
                let (q, r) = a.div_rem(&b);
                proptest::prop_assert!(r < b);
                proptest::prop_assert_eq!(q.mul(&b).add(&r), a);
            }
        }

        #[test]
        fn shl_shr_roundtrip(bytes in proptest::collection::vec(0u8.., 0..32), shift in 0usize..100) {
            let v = BigUint::from_bytes_be(&bytes);
            proptest::prop_assert_eq!(v.shl(shift).shr(shift), v);
        }

        #[test]
        fn karatsuba_equals_schoolbook_random(
            a in proptest::collection::vec(0u8.., 128..200),
            b in proptest::collection::vec(0u8.., 128..200),
        ) {
            let a = BigUint::from_bytes_be(&a);
            let b = BigUint::from_bytes_be(&b);
            proptest::prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
        }

        #[test]
        fn modpow_matches_naive(base in 0u64..1000, exp in 0u64..40, m in 2u64..10_000) {
            let mut expected = 1u128;
            for _ in 0..exp {
                expected = expected * base as u128 % m as u128;
            }
            proptest::prop_assert_eq!(
                n(base).modpow(&n(exp), &n(m)),
                n(expected as u64)
            );
        }

        #[test]
        fn mod_inverse_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
            if let Some(inv) = n(a).mod_inverse(&n(m)) {
                proptest::prop_assert_eq!(n(a).mul(&inv).rem(&n(m)), n(1));
                proptest::prop_assert!(inv < n(m));
            }
        }

        #[test]
        fn gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let g = n(a).gcd(&n(b));
            proptest::prop_assert!(n(a).rem(&g).is_zero());
            proptest::prop_assert!(n(b).rem(&g).is_zero());
        }
    }
}
