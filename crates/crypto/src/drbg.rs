//! Deterministic and OS-seeded key sources.
//!
//! The experiments in Section 5 of the paper replay *the same three
//! join/leave request sequences* across every strategy, degree and group
//! size "for fair comparisons". Determinism therefore matters end to end:
//! [`HmacDrbg`] is an HMAC-SHA-256 DRBG (modelled on NIST SP 800-90A) that
//! makes key generation reproducible given a seed, while [`OsKeySource`]
//! wraps `rand`'s thread RNG for non-experiment use.

use crate::hmac::hmac;
use crate::sha256::Sha256;
use crate::KeySource;
use rand::RngCore;

const DIGEST_LEN: usize = 32;

/// HMAC-SHA-256 deterministic random bit generator.
///
/// Follows the Update/Generate skeleton of NIST SP 800-90A HMAC_DRBG
/// (without the personalization/reseed machinery, which experiments don't
/// need). Two instances with the same seed produce identical key streams.
#[derive(Clone)]
pub struct HmacDrbg {
    k: Vec<u8>,
    v: Vec<u8>,
}

impl HmacDrbg {
    /// Instantiate from arbitrary seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg { k: vec![0u8; DIGEST_LEN], v: vec![1u8; DIGEST_LEN] };
        drbg.update(Some(seed));
        drbg
    }

    /// Instantiate from a `u64` seed (convenience for experiment configs).
    pub fn from_seed(seed: u64) -> Self {
        HmacDrbg::new(&seed.to_be_bytes())
    }

    /// Export the internal `(K, V)` working state.
    ///
    /// Together with [`from_state`](Self::from_state) this lets a
    /// persistence layer checkpoint a generator mid-stream and resume it
    /// byte-for-byte — required for deterministic crash recovery, where
    /// replaying logged operations must regenerate exactly the keys the
    /// pre-crash server generated. The state is as sensitive as the keys
    /// it will produce; callers must store it accordingly.
    pub fn state(&self) -> ([u8; 32], [u8; 32]) {
        let mut k = [0u8; DIGEST_LEN];
        let mut v = [0u8; DIGEST_LEN];
        k.copy_from_slice(&self.k);
        v.copy_from_slice(&self.v);
        (k, v)
    }

    /// Rebuild a generator from a state exported by [`state`](Self::state).
    /// The restored instance continues the original's output stream.
    pub fn from_state(k: [u8; 32], v: [u8; 32]) -> Self {
        HmacDrbg { k: k.to_vec(), v: v.to_vec() }
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut material = self.v.clone();
        material.push(0x00);
        if let Some(p) = provided {
            material.extend_from_slice(p);
        }
        self.k = hmac::<Sha256>(&self.k, &material);
        self.v = hmac::<Sha256>(&self.k, &self.v);
        if let Some(p) = provided {
            let mut material = self.v.clone();
            material.push(0x01);
            material.extend_from_slice(p);
            self.k = hmac::<Sha256>(&self.k, &material);
            self.v = hmac::<Sha256>(&self.k, &self.v);
        }
    }

    /// Fill `out` with deterministic pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            self.v = hmac::<Sha256>(&self.k, &self.v);
            let take = (out.len() - written).min(DIGEST_LEN);
            out[written..written + take].copy_from_slice(&self.v[..take]);
            written += take;
        }
        self.update(None);
    }
}

impl KeySource for HmacDrbg {
    fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_be_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

/// Key source backed by the OS RNG (via `rand::rngs::OsRng`).
#[derive(Debug, Default, Clone, Copy)]
pub struct OsKeySource;

impl KeySource for OsKeySource {
    fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        rand::rngs::OsRng.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = HmacDrbg::from_seed(7);
        let mut b = HmacDrbg::from_seed(7);
        assert_eq!(a.generate(64), b.generate(64));
        assert_eq!(a.generate(13), b.generate(13));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_seed(1);
        let mut b = HmacDrbg::from_seed(2);
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::from_seed(3);
        let x = d.generate(16);
        let y = d.generate(16);
        assert_ne!(x, y);
    }

    #[test]
    fn generate_key_has_requested_length() {
        let mut d = HmacDrbg::from_seed(4);
        use crate::KeySource;
        assert_eq!(d.generate_key(8).len(), 8);
        assert_eq!(d.generate_key(24).len(), 24);
    }

    #[test]
    fn long_fill_crosses_block_boundaries() {
        let mut a = HmacDrbg::from_seed(5);
        let mut b = HmacDrbg::from_seed(5);
        let long = a.generate(100);
        // Same stream consumed in one go vs. not chunked differently —
        // HMAC-DRBG regenerates per request, so request sizes matter; the
        // invariant we rely on is *whole-request* determinism:
        assert_eq!(long, b.generate(100));
        assert_eq!(long.len(), 100);
    }

    #[test]
    fn rng_core_interface() {
        let mut d = HmacDrbg::from_seed(6);
        let a = d.next_u64();
        let b = d.next_u64();
        assert_ne!(a, b);
        let mut buf = [0u8; 7];
        d.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut original = HmacDrbg::from_seed(42);
        original.generate(100); // advance mid-stream
        let (k, v) = original.state();
        let mut restored = HmacDrbg::from_state(k, v);
        assert_eq!(original.generate(64), restored.generate(64));
        assert_eq!(original.generate(7), restored.generate(7));
    }

    #[test]
    fn os_key_source_produces_distinct_keys() {
        let mut s = OsKeySource;
        use crate::KeySource;
        assert_ne!(s.generate(16), s.generate(16));
    }

    #[test]
    fn byte_distribution_sanity() {
        // Crude sanity check: over 64 KiB, every byte value should appear.
        let mut d = HmacDrbg::from_seed(8);
        let data = d.generate(65536);
        let mut seen = [false; 256];
        for &b in &data {
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
