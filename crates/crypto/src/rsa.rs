//! RSA key generation and PKCS#1 v1.5 signatures.
//!
//! The paper signs rekey messages with RSA over a **512-bit modulus** — its
//! Table 4 and Figure 10/11 "with signature" series all pay one or more of
//! these operations per join/leave. This module provides:
//!
//! * key generation from two half-width primes (e = 65537, d = e⁻¹ mod
//!   λ(n)),
//! * EMSA-PKCS1-v1_5 encoding with the standard ASN.1 `DigestInfo`
//!   prefixes for MD5/SHA-1/SHA-256,
//! * signing with the Chinese Remainder Theorem speedup (~4×), and
//! * verification with the small public exponent (fast, as in the paper —
//!   clients verify much faster than the server signs).

use crate::bigint::BigUint;
use crate::prime::generate_prime;
use crate::{CryptoError, Digest};
use rand::RngCore;

/// ASN.1 DER `DigestInfo` prefix for MD5 (RFC 8017 §9.2 notes).
const MD5_PREFIX: &[u8] = &[
    0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05, 0x05, 0x00,
    0x04, 0x10,
];
/// ASN.1 DER `DigestInfo` prefix for SHA-1.
const SHA1_PREFIX: &[u8] =
    &[0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14];
/// ASN.1 DER `DigestInfo` prefix for SHA-256.
const SHA256_PREFIX: &[u8] = &[
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// Digest algorithm identifier for signature encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashAlg {
    /// MD5 (the paper's choice).
    Md5,
    /// SHA-1.
    Sha1,
    /// SHA-256.
    Sha256,
}

impl std::fmt::Display for HashAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for HashAlg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "md5" => Ok(HashAlg::Md5),
            "sha1" => Ok(HashAlg::Sha1),
            "sha256" => Ok(HashAlg::Sha256),
            other => Err(format!("unknown digest: {other:?}")),
        }
    }
}

impl HashAlg {
    /// Stable spec-file name for this digest (the string
    /// [`HashAlg::from_str`] accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            HashAlg::Md5 => "md5",
            HashAlg::Sha1 => "sha1",
            HashAlg::Sha256 => "sha256",
        }
    }

    fn prefix(self) -> &'static [u8] {
        match self {
            HashAlg::Md5 => MD5_PREFIX,
            HashAlg::Sha1 => SHA1_PREFIX,
            HashAlg::Sha256 => SHA256_PREFIX,
        }
    }

    fn digest_len(self) -> usize {
        match self {
            HashAlg::Md5 => 16,
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
        }
    }

    /// Hash `data` with this algorithm.
    pub fn hash(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Md5 => crate::md5::Md5::digest(data),
            HashAlg::Sha1 => crate::sha1::Sha1::digest(data),
            HashAlg::Sha256 => crate::sha256::Sha256::digest(data),
        }
    }
}

/// RSA public key (modulus, public exponent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,   // d mod (p-1)
    d_q: BigUint,   // d mod (q-1)
    q_inv: BigUint, // q^{-1} mod p
}

/// An RSA keypair.
#[derive(Clone)]
pub struct RsaKeyPair {
    /// The private half (includes the public key).
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generate a keypair with a modulus of `modulus_bits` bits (the paper
    /// used 512). `modulus_bits` must be even and ≥ 256.
    pub fn generate(modulus_bits: usize, rng: &mut dyn RngCore) -> Result<Self, CryptoError> {
        assert!(modulus_bits >= 256 && modulus_bits.is_multiple_of(2), "unsupported modulus size");
        let e = BigUint::from_u64(65537);
        let one = BigUint::one();
        for _attempt in 0..64 {
            let p = generate_prime(modulus_bits / 2, rng);
            let q = generate_prime(modulus_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != modulus_bits {
                continue;
            }
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            // λ(n) = lcm(p-1, q-1)
            let lambda = p1.mul(&q1).div_rem(&p1.gcd(&q1)).0;
            let d = match e.mod_inverse(&lambda) {
                Some(d) => d,
                None => continue, // gcd(e, λ) != 1; re-draw primes
            };
            let d_p = d.rem(&p1);
            let d_q = d.rem(&q1);
            let q_inv = q.mod_inverse(&p).expect("p, q distinct primes");
            // Keep p > q so that CRT recombination's (m1 - m2) stays simple.
            let (p, q, d_p, d_q, q_inv) = if p > q {
                (p, q, d_p, d_q, q_inv)
            } else {
                let q_inv = p.mod_inverse(&q).expect("distinct primes");
                (q.clone(), p, d_q, d_p, q_inv)
            };
            return Ok(RsaKeyPair {
                private: RsaPrivateKey { public: RsaPublicKey { n, e }, d, p, q, d_p, d_q, q_inv },
            });
        }
        Err(CryptoError::KeyGenerationFailed)
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.private.public
    }
}

impl RsaPublicKey {
    /// Modulus length in bytes (64 for RSA-512).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verify a PKCS#1 v1.5 signature over `message` hashed with `alg`.
    pub fn verify(
        &self,
        alg: HashAlg,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let digest = alg.hash(message);
        self.verify_digest(alg, &digest, signature)
    }

    /// Verify against a precomputed digest (the Merkle signing path
    /// verifies the *root* digest, not a raw message).
    pub fn verify_digest(
        &self,
        alg: HashAlg,
        digest: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::SignatureMismatch);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::ValueOutOfRange);
        }
        let em = s.modpow(&self.e, &self.n);
        let expected = emsa_pkcs1_v15(alg, digest, k)?;
        let em_bytes = em.to_bytes_be_padded(k).ok_or(CryptoError::SignatureMismatch)?;
        if em_bytes == expected {
            Ok(())
        } else {
            Err(CryptoError::SignatureMismatch)
        }
    }
}

impl RsaPrivateKey {
    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Sign `message` (hashed with `alg`) using PKCS#1 v1.5.
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let digest = alg.hash(message);
        self.sign_digest(alg, &digest)
    }

    /// Sign a precomputed digest. This is the operation the paper counts:
    /// one modular exponentiation with the private exponent, ~two orders of
    /// magnitude costlier than a DES block encryption.
    pub fn sign_digest(&self, alg: HashAlg, digest: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15(alg, digest, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.private_op(&m);
        s.to_bytes_be_padded(k).ok_or(CryptoError::ValueOutOfRange)
    }

    /// The private-key operation `m^d mod n` via CRT.
    fn private_op(&self, m: &BigUint) -> BigUint {
        let m1 = m.modpow(&self.d_p, &self.p);
        let m2 = m.modpow(&self.d_q, &self.q);
        // h = q_inv * (m1 - m2) mod p  (lift m2 into [0,p) difference first)
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p { m1.sub(&m2_mod_p) } else { m1.add(&self.p).sub(&m2_mod_p) };
        let h = self.q_inv.mul(&diff).rem(&self.p);
        m2.add(&h.mul(&self.q))
    }

    /// The private-key operation without CRT (used by tests/ablations to
    /// confirm the CRT path computes the same function).
    pub fn private_op_no_crt(&self, m: &BigUint) -> BigUint {
        m.modpow(&self.d, &self.public.n)
    }
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        write!(f, "RsaPrivateKey({} bits)", self.public.n.bit_len())
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 01 FF..FF 00 || DigestInfo || digest`.
fn emsa_pkcs1_v15(alg: HashAlg, digest: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    if digest.len() != alg.digest_len() {
        return Err(CryptoError::MalformedEncoding("digest length mismatch"));
    }
    let t_len = alg.prefix().len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xFF, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(alg.prefix());
    em.extend_from_slice(digest);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(42);
        RsaKeyPair::generate(bits, &mut rng).unwrap()
    }

    #[test]
    fn sign_verify_roundtrip_512() {
        let kp = keypair(512);
        let msg = b"rekey message: {k_1-9}k_1-8, {k_789}k_78";
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            let sig = kp.private.sign(alg, msg).unwrap();
            assert_eq!(sig.len(), 64);
            kp.public().verify(alg, msg, &sig).unwrap();
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair(512);
        let sig = kp.private.sign(HashAlg::Md5, b"genuine").unwrap();
        assert_eq!(
            kp.public().verify(HashAlg::Md5, b"forged!", &sig).unwrap_err(),
            CryptoError::SignatureMismatch
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair(512);
        let mut sig = kp.private.sign(HashAlg::Md5, b"msg").unwrap();
        sig[10] ^= 0x40;
        assert!(kp.public().verify(HashAlg::Md5, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair(512);
        let mut rng = StdRng::seed_from_u64(777);
        let kp2 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = kp1.private.sign(HashAlg::Md5, b"msg").unwrap();
        assert!(kp2.public().verify(HashAlg::Md5, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = keypair(512);
        assert_eq!(
            kp.public().verify(HashAlg::Md5, b"m", &[0u8; 32]).unwrap_err(),
            CryptoError::SignatureMismatch
        );
    }

    #[test]
    fn signature_value_above_modulus_rejected() {
        let kp = keypair(512);
        let sig = vec![0xFFu8; 64];
        assert_eq!(
            kp.public().verify(HashAlg::Md5, b"m", &sig).unwrap_err(),
            CryptoError::ValueOutOfRange
        );
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = keypair(512);
        let m = BigUint::from_bytes_be(&[0x42; 48]);
        assert_eq!(kp.private.private_op(&m), kp.private.private_op_no_crt(&m));
    }

    #[test]
    fn modulus_has_requested_width() {
        for bits in [256usize, 512] {
            let kp = keypair(bits);
            assert_eq!(kp.public().modulus_len(), bits / 8);
        }
    }

    #[test]
    fn verify_digest_path_matches_verify() {
        let kp = keypair(512);
        let msg = b"digest-path message";
        let digest = HashAlg::Md5.hash(msg);
        let sig = kp.private.sign_digest(HashAlg::Md5, &digest).unwrap();
        kp.public().verify(HashAlg::Md5, msg, &sig).unwrap();
        kp.public().verify_digest(HashAlg::Md5, &digest, &sig).unwrap();
    }

    #[test]
    fn emsa_encoding_shape() {
        let digest = [0xABu8; 16];
        let em = emsa_pkcs1_v15(HashAlg::Md5, &digest, 64).unwrap();
        assert_eq!(em.len(), 64);
        assert_eq!(&em[..2], &[0x00, 0x01]);
        assert_eq!(em[64 - 16 - 18 - 1], 0x00);
        assert!(em[2..64 - 16 - 18 - 1].iter().all(|&b| b == 0xFF));
        assert_eq!(&em[64 - 16..], &digest);
        // Modulus too small for the encoding is rejected.
        assert_eq!(
            emsa_pkcs1_v15(HashAlg::Sha256, &[0u8; 32], 32).unwrap_err(),
            CryptoError::MessageTooLong
        );
        // Digest of the wrong size is rejected.
        assert!(emsa_pkcs1_v15(HashAlg::Md5, &[0u8; 20], 64).is_err());
    }

    #[test]
    fn deterministic_keygen_from_seeded_rng() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let k1 = RsaKeyPair::generate(256, &mut r1).unwrap();
        let k2 = RsaKeyPair::generate(256, &mut r2).unwrap();
        assert_eq!(k1.public(), k2.public());
    }
}
