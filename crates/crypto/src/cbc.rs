//! Cipher Block Chaining mode with PKCS#5-style padding.
//!
//! The paper encrypts new keys with DES-CBC. Rekey messages in this
//! reproduction carry one CBC ciphertext per encrypted key (or per combined
//! key bundle in user-oriented rekeying, where several new keys are encrypted
//! together under one key — see Figure 5's `{k_{1-9}, k_{789}}_{k_7}`).

use crate::{BlockCipher, CryptoError};

/// A block cipher wrapped in CBC mode.
///
/// Padding is always applied (PKCS#5: `n` bytes of value `n`, 1 ≤ n ≤
/// block size), so the ciphertext length is `((len / bs) + 1) * bs` — an
/// 8-byte DES key encrypts to 16 bytes, and each additional key packed into
/// the same ciphertext adds one block. Rekey message sizes in Tables 4–6
/// follow directly from this sizing rule.
#[derive(Clone)]
pub struct CbcCipher<C: BlockCipher> {
    cipher: C,
}

impl<C: BlockCipher> CbcCipher<C> {
    /// Wrap a block cipher in CBC mode.
    pub fn new(cipher: C) -> Self {
        CbcCipher { cipher }
    }

    /// The ciphertext length produced for a plaintext of `plain_len` bytes.
    pub fn ciphertext_len(plain_len: usize) -> usize {
        (plain_len / C::BLOCK_SIZE + 1) * C::BLOCK_SIZE
    }

    /// Encrypt `plaintext` under the wrapped cipher with the given IV.
    ///
    /// # Panics
    /// Panics if `iv.len() != C::BLOCK_SIZE` (programming error; IVs are
    /// produced by the caller's key source at the right size).
    pub fn encrypt(&self, plaintext: &[u8], iv: &[u8]) -> Vec<u8> {
        assert_eq!(iv.len(), C::BLOCK_SIZE, "IV must be one block");
        let bs = C::BLOCK_SIZE;
        let pad = bs - plaintext.len() % bs;
        let mut data = Vec::with_capacity(plaintext.len() + pad);
        data.extend_from_slice(plaintext);
        data.extend(std::iter::repeat_n(pad as u8, pad));

        let mut prev = iv.to_vec();
        for chunk in data.chunks_mut(bs) {
            for (b, p) in chunk.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
            self.cipher.encrypt_block(chunk);
            prev.copy_from_slice(chunk);
        }
        data
    }

    /// Decrypt a CBC ciphertext and strip padding.
    ///
    /// Returns [`CryptoError::BadPadding`] when the recovered padding is
    /// malformed — in the rekeying protocols this is how a client discovers
    /// it attempted decryption with a key it does not actually share with
    /// the server (e.g. an evicted member).
    pub fn decrypt(&self, ciphertext: &[u8], iv: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let bs = C::BLOCK_SIZE;
        if iv.len() != bs {
            return Err(CryptoError::InvalidIvLength { expected: bs, actual: iv.len() });
        }
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(bs) {
            return Err(CryptoError::InvalidCiphertextLength {
                block_size: bs,
                actual: ciphertext.len(),
            });
        }
        let mut data = ciphertext.to_vec();
        let mut prev = iv.to_vec();
        for chunk in data.chunks_mut(bs) {
            let this_ct = chunk.to_vec();
            self.cipher.decrypt_block(chunk);
            for (b, p) in chunk.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
            prev = this_ct;
        }
        let pad = *data.last().expect("nonempty") as usize;
        if pad == 0 || pad > bs || data.len() < pad {
            return Err(CryptoError::BadPadding);
        }
        if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(CryptoError::BadPadding);
        }
        data.truncate(data.len() - pad);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Des;

    fn cipher() -> CbcCipher<Des> {
        CbcCipher::new(Des::new(&[0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]).unwrap())
    }

    #[test]
    fn roundtrip_various_lengths() {
        let c = cipher();
        let iv = [7u8; 8];
        for len in 0..64 {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = c.encrypt(&msg, &iv);
            assert_eq!(ct.len(), CbcCipher::<Des>::ciphertext_len(len));
            assert_eq!(ct.len() % 8, 0);
            assert_eq!(c.decrypt(&ct, &iv).unwrap(), msg);
        }
    }

    #[test]
    fn ciphertext_len_is_always_padded() {
        // An exact multiple of the block size still gains one padding block.
        assert_eq!(CbcCipher::<Des>::ciphertext_len(0), 8);
        assert_eq!(CbcCipher::<Des>::ciphertext_len(8), 16);
        assert_eq!(CbcCipher::<Des>::ciphertext_len(9), 16);
        assert_eq!(CbcCipher::<Des>::ciphertext_len(16), 24);
    }

    #[test]
    fn wrong_key_yields_error_or_garbage() {
        let c = cipher();
        let wrong = CbcCipher::new(Des::new(&[1u8; 8]).unwrap());
        let iv = [0u8; 8];
        let msg = b"new group key bytes....";
        let ct = c.encrypt(msg, &iv);
        // Decrypting with the wrong key must not silently return the
        // plaintext; overwhelmingly it reports BadPadding.
        match wrong.decrypt(&ct, &iv) {
            Err(CryptoError::BadPadding) => {}
            Ok(other) => assert_ne!(other, msg.to_vec()),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn iv_affects_ciphertext() {
        let c = cipher();
        let msg = b"same plaintext";
        let a = c.encrypt(msg, &[0u8; 8]);
        let b = c.encrypt(msg, &[1u8; 8]);
        assert_ne!(a, b);
    }

    #[test]
    fn identical_blocks_do_not_repeat_in_ciphertext() {
        // This is the point of CBC over ECB.
        let c = cipher();
        let msg = [0x42u8; 32];
        let ct = c.encrypt(&msg, &[9u8; 8]);
        assert_ne!(&ct[0..8], &ct[8..16]);
        assert_ne!(&ct[8..16], &ct[16..24]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let c = cipher();
        assert_eq!(
            c.decrypt(&[0u8; 12], &[0u8; 8]).unwrap_err(),
            CryptoError::InvalidCiphertextLength { block_size: 8, actual: 12 }
        );
        assert_eq!(
            c.decrypt(&[0u8; 8], &[0u8; 4]).unwrap_err(),
            CryptoError::InvalidIvLength { expected: 8, actual: 4 }
        );
        assert_eq!(
            c.decrypt(&[], &[0u8; 8]).unwrap_err(),
            CryptoError::InvalidCiphertextLength { block_size: 8, actual: 0 }
        );
    }

    #[test]
    fn tampered_ciphertext_corrupts_plaintext() {
        let c = cipher();
        let iv = [3u8; 8];
        let msg = b"0123456789abcdef";
        let mut ct = c.encrypt(msg, &iv);
        ct[0] ^= 0x80;
        match c.decrypt(&ct, &iv) {
            Err(CryptoError::BadPadding) => {}
            Ok(recovered) => assert_ne!(recovered, msg.to_vec()),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_random(
            key in proptest::array::uniform8(0u8..),
            iv in proptest::array::uniform8(0u8..),
            msg in proptest::collection::vec(0u8.., 0..256),
        ) {
            let c = CbcCipher::new(Des::new(&key).unwrap());
            let ct = c.encrypt(&msg, &iv);
            proptest::prop_assert_eq!(c.decrypt(&ct, &iv).unwrap(), msg);
        }
    }
}
