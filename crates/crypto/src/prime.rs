//! Probabilistic prime generation for RSA key generation.
//!
//! Miller–Rabin with a deterministic small-base pre-check plus random bases.
//! Candidate primes are drawn with both the top two bits set (so p·q reaches
//! the full modulus width — a 512-bit modulus from two 256-bit primes, as
//! the paper's RSA-512 requires) and the bottom bit set (odd).

use crate::bigint::BigUint;
use rand::RngCore;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Error probability ≤ 4^-rounds for composite inputs; 24 rounds is beyond
/// any practical concern for experiment-grade key generation.
pub fn is_probable_prime(n: &BigUint, rounds: u32, rng: &mut dyn RngCore) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    for &p in &SMALL_PRIMES {
        let p = BigUint::from_u64(p as u64);
        if *n == p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^r with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }
    'witness: for _ in 0..rounds {
        let a = random_below(&n_minus_1, rng).add(&two); // a in [2, n)
        if a >= *n {
            continue; // extremely small n; small-prime path caught those
        }
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[0, bound)`. Panics if `bound` is zero.
pub fn random_below(bound: &BigUint, rng: &mut dyn RngCore) -> BigUint {
    assert!(!bound.is_zero(), "random_below with zero bound");
    let bits = bound.bit_len();
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask off excess high bits so rejection sampling terminates fast.
        let excess = bytes * 8 - bits;
        buf[0] &= 0xFFu8 >> excess;
        let candidate = BigUint::from_bytes_be(&buf);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Generate a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (full-width product) and the low bit to
/// 1 (odd). Panics if `bits < 8`.
pub fn generate_prime(bits: usize, rng: &mut dyn RngCore) -> BigUint {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    let bytes = bits.div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        let excess = bytes * 8 - bits;
        buf[0] &= 0xFFu8 >> excess;
        // Force the two most significant bits of the `bits`-wide value.
        let top_bit = 7 - excess; // bit index within buf[0]
        if top_bit >= 1 {
            buf[0] |= 1 << top_bit;
            buf[0] |= 1 << (top_bit - 1);
        } else {
            buf[0] |= 1;
            buf[1] |= 0x80;
        }
        *buf.last_mut().expect("nonempty") |= 1;
        let candidate = BigUint::from_bytes_be(&buf);
        debug_assert_eq!(candidate.bit_len(), bits);
        if is_probable_prime(&candidate, 24, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 101, 251, 257, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 16, &mut r), "{p} should be prime");
        }
    }

    #[test]
    fn composites_rejected() {
        let mut r = rng();
        for c in [1u64, 4, 6, 9, 15, 21, 25, 255, 561, 1105, 1729, 2465, 6601, 62745, 162401] {
            // Includes Carmichael numbers (561, 1105, 1729, ...), which fool
            // Fermat but not Miller–Rabin.
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
        assert!(!is_probable_prime(&BigUint::zero(), 16, &mut r));
    }

    #[test]
    fn large_known_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127, 16, &mut r));
        // 2^128 - 1 is composite.
        let m128 = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&m128, 16, &mut r));
    }

    #[test]
    fn generated_primes_have_requested_width() {
        let mut r = rng();
        for bits in [64usize, 96, 128] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            // Top two bits set.
            assert!(p.bit(bits - 1) && p.bit(bits - 2));
        }
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(random_below(&bound, &mut r) < bound);
        }
        // Bound of one always yields zero.
        assert!(random_below(&BigUint::one(), &mut r).is_zero());
    }
}
