//! # kg-crypto — cryptographic substrate for the key-graphs reproduction
//!
//! The paper ("Secure Group Communications Using Key Graphs", Wong, Gouda,
//! Lam; SIGCOMM '98) built its prototype on CryptoLib with **DES-CBC**
//! encryption, **MD5** message digests, and **RSA-512** digital signatures.
//! This crate reimplements those exact primitives from scratch so that the
//! reproduction is self-contained and every cryptographic operation the
//! benchmarks count is auditable:
//!
//! * [`des`] — the DES block cipher (FIPS 46-3) and Triple-DES (EDE3).
//! * [`cbc`] — CBC mode with PKCS#5-style padding over any [`BlockCipher`].
//! * [`md5`], [`sha1`], [`sha256`] — message digests ([`md5`] is the paper's
//!   choice; the SHA family is provided for ablation benchmarks).
//! * [`hmac`] — HMAC over any [`Digest`] implementation.
//! * [`bigint`] — arbitrary-precision unsigned integers (the arithmetic
//!   substrate for RSA): schoolbook/Karatsuba multiplication, Knuth
//!   Algorithm D division, Miller–Rabin primality, modular exponentiation.
//! * [`rsa`] — RSA key generation and PKCS#1 v1.5 signatures (512-bit
//!   modulus by default, matching the paper).
//! * [`drbg`] — a deterministic HMAC-based generator so experiments are
//!   reproducible across runs, plus an OS-seeded key source.
//!
//! ## Security stance
//!
//! DES, MD5 and RSA-512 are **historical** algorithms: they are implemented
//! here because the paper used them and the reproduction must perform the
//! same work per operation. They must not be used to protect real data. The
//! crate's API is generic over [`BlockCipher`], [`Digest`] and signature
//! traits, and modern-ish parameter choices (3DES, SHA-256, larger RSA
//! moduli) are available for ablations.
//!
//! ## Example
//!
//! ```
//! use kg_crypto::{des::Des, cbc::CbcCipher, BlockCipher, SymmetricKey};
//!
//! let key = SymmetricKey::from_bytes(&[0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1]);
//! let cipher = CbcCipher::new(Des::new(key.material()).unwrap());
//! let ct = cipher.encrypt(b"attack at dawn", &[0u8; 8]);
//! let pt = cipher.decrypt(&ct, &[0u8; 8]).unwrap();
//! assert_eq!(pt, b"attack at dawn");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod cbc;
pub mod des;
pub mod drbg;
pub mod error;
pub mod hmac;
pub mod key;
pub mod md5;
pub mod prime;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use cbc::CbcCipher;
pub use error::CryptoError;
pub use key::SymmetricKey;

/// A block cipher operating on fixed-size blocks.
///
/// The paper's prototype encrypts each new key with DES-CBC; the rekeying
/// engine in `kg-core` is generic over this trait so that ablation
/// benchmarks can swap ciphers without touching protocol logic.
pub trait BlockCipher {
    /// Block size in bytes (8 for DES/3DES).
    const BLOCK_SIZE: usize;

    /// Encrypt exactly one block in place.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypt exactly one block in place.
    fn decrypt_block(&self, block: &mut [u8]);
}

/// An incremental message digest (MD5, SHA-1, SHA-256, ...).
///
/// Section 4 of the paper signs a *tree of digests* over all rekey messages
/// of a join/leave with a single RSA operation; this trait is what that
/// Merkle construction hashes with.
pub trait Digest: Clone {
    /// Digest output length in bytes (16 for MD5, 20 for SHA-1, 32 for SHA-256).
    const OUTPUT_SIZE: usize;

    /// Create a fresh hasher state.
    fn new() -> Self;

    /// Absorb `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consume the state and produce the digest.
    fn finalize(self) -> Vec<u8>;

    /// Convenience: hash a single buffer.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// A source of fresh symmetric keys.
///
/// The group server "randomly generates" a new key for every k-node whose
/// key changes (Figures 6–9 of the paper). Experiments use the
/// deterministic [`drbg::HmacDrbg`]-backed source so that runs are
/// reproducible; production use would take the OS-entropy source.
pub trait KeySource {
    /// Generate `len` bytes of fresh key material.
    fn generate(&mut self, len: usize) -> Vec<u8>;

    /// Generate a [`SymmetricKey`] of `len` bytes.
    fn generate_key(&mut self, len: usize) -> SymmetricKey {
        SymmetricKey::new(self.generate(len))
    }
}
