//! SHA-1 (FIPS 180-4).
//!
//! Not used by the paper's prototype (which used MD5), but provided so the
//! benchmark harness can ablate the digest algorithm — the server spec file
//! in the paper selects "the message digest algorithm" as a parameter.

use crate::Digest;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Sha1 {
    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_SIZE: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything was absorbed into the partial buffer; the
                // trailing copy below must not clobber `buffered`.
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut tmp = [0u8; 64];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = Vec::with_capacity(20);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let oneshot = Sha1::digest(&data);
        for chunk in [1usize, 13, 64, 65] {
            let mut h = Sha1::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk {chunk}");
        }
    }
}
