//! Symmetric key material with best-effort wiping on drop.
//!
//! In the paper every k-node of the key graph holds one symmetric key; the
//! server replaces these keys on every join/leave. This type is the unit of
//! key material flowing through the whole system: individual keys, subgroup
//! keys, and the group key are all `SymmetricKey`s.

use std::fmt;

/// A symmetric key (e.g. a DES key).
///
/// * The raw bytes are zeroed on drop (best-effort — the compiler may elide
///   this in theory; `std::hint::black_box` is used to discourage that).
/// * `Debug` prints a short fingerprint rather than the key bytes so keys
///   never leak into logs or panics.
/// * Equality is byte-wise; keys are small (8–24 bytes) and compared only in
///   tests and table maintenance, so constant-time comparison is not needed
///   on the hot path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SymmetricKey {
    bytes: Vec<u8>,
}

impl SymmetricKey {
    /// Wrap raw key material.
    pub fn new(bytes: Vec<u8>) -> Self {
        SymmetricKey { bytes }
    }

    /// Copy key material from a slice.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        SymmetricKey { bytes: bytes.to_vec() }
    }

    /// Borrow the raw key material.
    pub fn material(&self) -> &[u8] {
        &self.bytes
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the key is empty (never true for keys from a [`crate::KeySource`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A short, non-sensitive fingerprint of this key (first 4 bytes of its
    /// MD5), used for subgroup labels in debugging output.
    pub fn fingerprint(&self) -> u32 {
        let d = crate::md5::Md5::oneshot(&self.bytes);
        u32::from_be_bytes([d[0], d[1], d[2], d[3]])
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricKey({} bytes, fp={:08x})", self.bytes.len(), self.fingerprint())
    }
}

impl Drop for SymmetricKey {
    fn drop(&mut self) {
        for b in self.bytes.iter_mut() {
            *b = 0;
        }
        // Discourage the optimizer from removing the wipe.
        std::hint::black_box(&self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let k = SymmetricKey::from_bytes(&[1, 2, 3, 4]);
        assert_eq!(k.material(), &[1, 2, 3, 4]);
        assert_eq!(k.len(), 4);
        assert!(!k.is_empty());
    }

    #[test]
    fn debug_does_not_leak_material() {
        let k = SymmetricKey::from_bytes(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04]);
        let s = format!("{k:?}");
        assert!(!s.contains("de"), "debug output must not contain raw bytes: {s}");
        assert!(s.contains("8 bytes"));
    }

    #[test]
    fn equality_is_bytewise() {
        let a = SymmetricKey::from_bytes(&[9; 8]);
        let b = SymmetricKey::from_bytes(&[9; 8]);
        let c = SymmetricKey::from_bytes(&[8; 8]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishing() {
        let a = SymmetricKey::from_bytes(&[1; 8]);
        let b = SymmetricKey::from_bytes(&[2; 8]);
        assert_eq!(a.fingerprint(), SymmetricKey::from_bytes(&[1; 8]).fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
