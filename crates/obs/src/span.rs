//! RAII phase-timing spans.
//!
//! `obs.span("encrypt")` starts a span; dropping the guard records the
//! elapsed time (per the pluggable clock) into a histogram labeled
//! with the span's *full dotted path*: nesting is tracked on a stack
//! inside the shared `Obs` state, so a span entered while
//! `"op.join"` is open records as `"op.join.encrypt"`. Guards must be
//! dropped in LIFO order — the natural consequence of scoping them.
//!
//! While a [`crate::Obs::trace_scope`] is active the same guards also
//! carry distributed-trace identity: each span gets a process-unique
//! span id parented under the innermost open traced span (or the
//! context's wire parent), and closing it appends an
//! [`crate::ObsEvent::Span`] record to the timeline for cross-process
//! reassembly.

use crate::metrics::HistogramCore;
use crate::trace::{TraceContext, TraceSpan};
use crate::{ObsEvent, ObsInner};
use std::collections::HashMap;
use std::sync::Arc;

/// Dynamic span scope shared by all clones of one `Obs` handle: the
/// stack of currently open paths, plus a memo of path → histogram so
/// re-entering a path (the steady state) costs one hash lookup instead
/// of a registry resolution.
#[derive(Debug, Default)]
pub(crate) struct SpanScope {
    stack: Vec<Arc<str>>,
    resolved: HashMap<Arc<str>, Arc<HistogramCore>>,
    /// Reusable path-assembly buffer: re-entering a known path (the
    /// steady state) allocates nothing.
    scratch: String,
    /// The active distributed trace, if a [`TraceGuard`] is live.
    pub(crate) trace: Option<TraceFrame>,
}

/// The trace a [`TraceGuard`] activated: identity from the wire
/// context plus the stack of open traced span ids, so nested spans
/// parent correctly.
#[derive(Debug)]
pub(crate) struct TraceFrame {
    pub(crate) trace_id: u64,
    pub(crate) hop: u8,
    /// Parent for top-level spans: the sender-side span one hop back.
    pub(crate) base_parent: u64,
    /// Ids of currently open traced spans, innermost last.
    pub(crate) open: Vec<u64>,
}

impl TraceFrame {
    pub(crate) fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: self.open.last().copied().unwrap_or(self.base_parent),
            hop: self.hop,
        }
    }
}

/// Activates a distributed trace for the duration of a scope.
///
/// Obtained from [`crate::Obs::trace_scope`]. Dropping it restores the
/// previously active trace (if any). Guards from a disabled handle are
/// no-ops.
#[derive(Debug)]
#[must_use = "a trace scope deactivates on drop; binding it to _ ends it immediately"]
pub struct TraceGuard {
    restore: Option<(Arc<ObsInner>, Option<TraceFrame>)>,
}

impl TraceGuard {
    pub(crate) fn noop() -> Self {
        TraceGuard { restore: None }
    }

    pub(crate) fn enter(inner: &Arc<ObsInner>, ctx: TraceContext) -> Self {
        let prev = {
            let mut scope = inner.spans.lock().expect("span scope poisoned");
            scope.trace.replace(TraceFrame {
                trace_id: ctx.trace_id,
                hop: ctx.hop,
                base_parent: ctx.parent_span,
                open: Vec::new(),
            })
        };
        TraceGuard { restore: Some((inner.clone(), prev)) }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((inner, prev)) = self.restore.take() {
            inner.spans.lock().expect("span scope poisoned").trace = prev;
        }
    }
}

/// An open span; records its duration on drop.
///
/// Obtained from [`crate::Obs::span`]. A guard from a disabled handle
/// is a no-op.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<ObsInner>,
    hist: Arc<HistogramCore>,
    start_us: u64,
    /// Trace identity allocated at entry, when a trace was active.
    trace: Option<SpanTrace>,
}

#[derive(Debug)]
struct SpanTrace {
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    hop: u8,
    path: Arc<str>,
}

impl Span {
    /// A no-op span (what disabled handles produce).
    pub(crate) fn noop() -> Self {
        Span { active: None }
    }

    pub(crate) fn enter(inner: &Arc<ObsInner>, name: &str) -> Self {
        let (hist, trace) = {
            let mut scope = inner.spans.lock().expect("span scope poisoned");
            let scope = &mut *scope;
            scope.scratch.clear();
            if let Some(parent) = scope.stack.last() {
                scope.scratch.push_str(parent);
                scope.scratch.push('.');
            }
            scope.scratch.push_str(name);
            let (path, hist) = match scope.resolved.get_key_value(scope.scratch.as_str()) {
                Some((p, h)) => (p.clone(), h.clone()),
                None => {
                    let h = inner.registry.histogram("kg_span_us", Some(("span", &scope.scratch)));
                    let p: Arc<str> = scope.scratch.as_str().into();
                    scope.resolved.insert(p.clone(), h.clone());
                    (p, h)
                }
            };
            scope.stack.push(path.clone());
            let trace = scope.trace.as_mut().map(|frame| {
                let span_id = inner.next_span_id();
                let parent_span = frame.open.last().copied().unwrap_or(frame.base_parent);
                frame.open.push(span_id);
                SpanTrace { trace_id: frame.trace_id, span_id, parent_span, hop: frame.hop, path }
            });
            (hist, trace)
        };
        Span {
            active: Some(ActiveSpan {
                inner: inner.clone(),
                hist,
                start_us: inner.clock.now_us(),
                trace,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut active) = self.active.take() {
            let end_us = active.inner.clock.now_us();
            // Clamp at zero: a wall clock stepped backwards (NTP) must
            // not underflow into a multi-century duration.
            active.hist.record(end_us.saturating_sub(active.start_us));
            {
                let mut scope = active.inner.spans.lock().expect("span scope poisoned");
                scope.stack.pop();
                if let (Some(t), Some(frame)) = (&active.trace, scope.trace.as_mut()) {
                    if frame.trace_id == t.trace_id {
                        frame.open.pop();
                    }
                }
            }
            if let Some(t) = active.trace.take() {
                active.inner.timeline.push(
                    end_us,
                    ObsEvent::Span(TraceSpan {
                        trace_id: t.trace_id,
                        span_id: t.span_id,
                        parent_span: t.parent_span,
                        hop: t.hop,
                        path: t.path.to_string(),
                        start_us: active.start_us.min(end_us),
                        end_us,
                    }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::trace::{spans_from_timeline, TraceContext};
    use crate::{ClockSource, ManualClock, Obs, ObsConfig};

    fn manual_obs() -> (ManualClock, Obs) {
        let clock = ManualClock::new();
        let obs = Obs::new(ObsConfig {
            clock: ClockSource::Manual(clock.clone()),
            ..ObsConfig::default()
        });
        (clock, obs)
    }

    #[test]
    fn disabled_span_is_noop() {
        let obs = Obs::disabled();
        let s = obs.span("anything");
        drop(s);
        assert!(obs.render_prometheus().is_empty());
    }

    #[test]
    fn nested_spans_record_under_dotted_paths() {
        let (clock, obs) = manual_obs();
        {
            let _op = obs.span("op.join");
            clock.advance_us(10);
            {
                let _phase = obs.span("encrypt");
                clock.advance_us(5);
            }
            {
                let _phase = obs.span("sign");
                clock.advance_us(3);
            }
        }
        let outer = obs.span_snapshot("op.join");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.max, 18);
        let enc = obs.span_snapshot("op.join.encrypt");
        assert_eq!((enc.count, enc.max), (1, 5));
        let sign = obs.span_snapshot("op.join.sign");
        assert_eq!((sign.count, sign.max), (1, 3));
        // Sibling spans after the op closes start a fresh root path.
        {
            let _other = obs.span("encrypt");
        }
        assert_eq!(obs.span_snapshot("encrypt").count, 1);
    }

    #[test]
    fn wall_clock_spans_are_nonnegative() {
        let obs = Obs::new(ObsConfig::default());
        {
            let _s = obs.span("tick");
        }
        let snap = obs.span_snapshot("tick");
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn backwards_clock_step_clamps_span_duration_at_zero() {
        let (clock, obs) = manual_obs();
        clock.set_us(1_000);
        let _t = obs.trace_scope(TraceContext::root(1));
        {
            let _s = obs.span("op.join");
            // An NTP-style backwards step mid-span.
            clock.force_us(200);
        }
        let snap = obs.span_snapshot("op.join");
        assert_eq!((snap.count, snap.max), (1, 0), "duration must clamp, not underflow");
        let spans = spans_from_timeline(&obs.timeline());
        assert_eq!(spans.len(), 1);
        assert!(spans[0].end_us >= spans[0].start_us);
        assert_eq!(spans[0].duration_us(), 0);
    }

    #[test]
    fn untraced_spans_emit_no_timeline_records() {
        let (_clock, obs) = manual_obs();
        {
            let _s = obs.span("op.join");
        }
        assert_eq!(obs.timeline_total(), 0);
        assert!(obs.current_trace().is_none());
    }

    #[test]
    fn traced_spans_emit_linked_records() {
        let (clock, obs) = manual_obs();
        obs.set_trace_salt(7);
        {
            let _t = obs.trace_scope(TraceContext { trace_id: 9, parent_span: 42, hop: 1 });
            let _outer = obs.span("node.parse");
            clock.advance_us(10);
            {
                let _inner = obs.span("tree");
                clock.advance_us(5);
            }
            clock.advance_us(1);
        }
        let spans = spans_from_timeline(&obs.timeline());
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        let (tree, parse) = (&spans[0], &spans[1]);
        assert_eq!(tree.path, "node.parse.tree");
        assert_eq!(parse.path, "node.parse");
        assert_eq!(parse.parent_span, 42); // wire parent
        assert_eq!(tree.parent_span, parse.span_id); // local nesting
        assert!(tree.span_id != 0 && parse.span_id != 0);
        assert_eq!((tree.trace_id, tree.hop), (9, 1));
        assert_eq!(tree.duration_us(), 5);
        assert_eq!(parse.duration_us(), 16);
        // Scope ended: spans no longer traced.
        {
            let _s = obs.span("op.join");
        }
        assert_eq!(spans_from_timeline(&obs.timeline()).len(), 2);
    }

    #[test]
    fn current_trace_tracks_innermost_open_span() {
        let (_clock, obs) = manual_obs();
        let _t = obs.trace_scope(TraceContext::root(5));
        assert_eq!(obs.current_trace(), Some(TraceContext::root(5)));
        let outer = obs.span("router.recv");
        let ctx = obs.current_trace().unwrap();
        assert_eq!(ctx.trace_id, 5);
        assert_ne!(ctx.parent_span, 0); // parented under the open span
        let inner = obs.span("relay");
        let ctx2 = obs.current_trace().unwrap();
        assert_ne!(ctx2.parent_span, ctx.parent_span);
        drop(inner);
        assert_eq!(obs.current_trace(), Some(ctx));
        drop(outer);
        assert_eq!(obs.current_trace(), Some(TraceContext::root(5)));
    }

    #[test]
    fn nested_trace_scopes_restore_the_outer_trace() {
        let (_clock, obs) = manual_obs();
        let _a = obs.trace_scope(TraceContext::root(1));
        {
            let _b = obs.trace_scope(TraceContext::root(2));
            assert_eq!(obs.current_trace().unwrap().trace_id, 2);
        }
        assert_eq!(obs.current_trace().unwrap().trace_id, 1);
    }

    #[test]
    fn span_ids_are_unique_across_salted_processes() {
        let mut seen = std::collections::BTreeSet::new();
        for salt in [1u64, 1000, 1001] {
            let (_clock, obs) = manual_obs();
            obs.set_trace_salt(salt);
            let _t = obs.trace_scope(TraceContext::root(1));
            for _ in 0..100 {
                let _s = obs.span("x");
            }
            for s in spans_from_timeline(&obs.timeline()) {
                assert!(seen.insert(s.span_id), "span id collision at salt {salt}");
            }
        }
        assert_eq!(seen.len(), 300);
    }
}
