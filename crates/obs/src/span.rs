//! RAII phase-timing spans.
//!
//! `obs.span("encrypt")` starts a span; dropping the guard records the
//! elapsed time (per the pluggable clock) into a histogram labeled
//! with the span's *full dotted path*: nesting is tracked on a stack
//! inside the shared `Obs` state, so a span entered while
//! `"op.join"` is open records as `"op.join.encrypt"`. Guards must be
//! dropped in LIFO order — the natural consequence of scoping them.

use crate::metrics::HistogramCore;
use crate::ObsInner;
use std::collections::HashMap;
use std::sync::Arc;

/// Dynamic span scope shared by all clones of one `Obs` handle: the
/// stack of currently open paths, plus a memo of path → histogram so
/// re-entering a path (the steady state) costs one hash lookup instead
/// of a registry resolution.
#[derive(Debug, Default)]
pub(crate) struct SpanScope {
    stack: Vec<Arc<str>>,
    resolved: HashMap<Arc<str>, Arc<HistogramCore>>,
    /// Reusable path-assembly buffer: re-entering a known path (the
    /// steady state) allocates nothing.
    scratch: String,
}

/// An open span; records its duration on drop.
///
/// Obtained from [`crate::Obs::span`]. A guard from a disabled handle
/// is a no-op.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<ObsInner>,
    hist: Arc<HistogramCore>,
    start_us: u64,
}

impl Span {
    /// A no-op span (what disabled handles produce).
    pub(crate) fn noop() -> Self {
        Span { active: None }
    }

    pub(crate) fn enter(inner: &Arc<ObsInner>, name: &str) -> Self {
        let hist = {
            let mut scope = inner.spans.lock().expect("span scope poisoned");
            let scope = &mut *scope;
            scope.scratch.clear();
            if let Some(parent) = scope.stack.last() {
                scope.scratch.push_str(parent);
                scope.scratch.push('.');
            }
            scope.scratch.push_str(name);
            let (path, hist) = match scope.resolved.get_key_value(scope.scratch.as_str()) {
                Some((p, h)) => (p.clone(), h.clone()),
                None => {
                    let h = inner.registry.histogram("kg_span_us", Some(("span", &scope.scratch)));
                    let p: Arc<str> = scope.scratch.as_str().into();
                    scope.resolved.insert(p.clone(), h.clone());
                    (p, h)
                }
            };
            scope.stack.push(path);
            hist
        };
        Span {
            active: Some(ActiveSpan { inner: inner.clone(), hist, start_us: inner.clock.now_us() }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.inner.clock.now_us().saturating_sub(active.start_us);
            active.hist.record(elapsed);
            active.inner.spans.lock().expect("span scope poisoned").stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClockSource, ManualClock, Obs, ObsConfig};

    #[test]
    fn disabled_span_is_noop() {
        let obs = Obs::disabled();
        let s = obs.span("anything");
        drop(s);
        assert!(obs.render_prometheus().is_empty());
    }

    #[test]
    fn nested_spans_record_under_dotted_paths() {
        let clock = ManualClock::new();
        let obs = Obs::new(ObsConfig {
            clock: ClockSource::Manual(clock.clone()),
            ..ObsConfig::default()
        });
        {
            let _op = obs.span("op.join");
            clock.advance_us(10);
            {
                let _phase = obs.span("encrypt");
                clock.advance_us(5);
            }
            {
                let _phase = obs.span("sign");
                clock.advance_us(3);
            }
        }
        let outer = obs.span_snapshot("op.join");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.max, 18);
        let enc = obs.span_snapshot("op.join.encrypt");
        assert_eq!((enc.count, enc.max), (1, 5));
        let sign = obs.span_snapshot("op.join.sign");
        assert_eq!((sign.count, sign.max), (1, 3));
        // Sibling spans after the op closes start a fresh root path.
        {
            let _other = obs.span("encrypt");
        }
        assert_eq!(obs.span_snapshot("encrypt").count, 1);
    }

    #[test]
    fn wall_clock_spans_are_nonnegative() {
        let obs = Obs::new(ObsConfig::default());
        {
            let _s = obs.span("tick");
        }
        let snap = obs.span_snapshot("tick");
        assert_eq!(snap.count, 1);
    }
}
