//! The metrics registry: named counters, gauges, and log-bucketed
//! latency histograms with cloneable lock-free handles.
//!
//! Handle acquisition (`counter`, `gauge`, `histogram`) takes a brief
//! registry lock; the handles themselves are `Arc`s over atomics, so
//! the hot path — `inc`, `set`, `record` — is a relaxed atomic op with
//! no locking. Metrics may carry one label pair (`{kind="join"}`),
//! which is how per-op-kind / per-strategy / per-fault-type families
//! are expressed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric identity: name plus optional `key=value` label pair.
pub(crate) type MetricKey = (String, Option<(String, String)>);

/// Escape a label value per the Prometheus text-format spec:
/// backslash, double-quote, and line-feed must be backslash-escaped.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`MetricKey`] in Prometheus exposition form.
pub(crate) fn render_key(key: &MetricKey) -> String {
    match &key.1 {
        None => key.0.clone(),
        Some((k, v)) => format!("{}{{{}=\"{}\"}}", key.0, k, escape_label_value(v)),
    }
}

fn make_key(name: &str, label: Option<(&str, &str)>) -> MetricKey {
    (name.to_string(), label.map(|(k, v)| (k.to_string(), v.to_string())))
}

/// A monotonically increasing counter handle.
///
/// The default handle is detached (a no-op): incrementing it does
/// nothing and `get` returns 0. Handles from an enabled registry share
/// one atomic cell per metric key.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Number of exact buckets before switching to log-linear buckets.
const EXACT: u64 = 16;
/// Sub-buckets per power of two in the log-linear range.
const SUBS: usize = 4;
/// Total bucket count: 16 exact + 4 sub-buckets for each power of two
/// from 2^4 through 2^63.
pub(crate) const NUM_BUCKETS: usize = EXACT as usize + (64 - 4) * SUBS;

/// Bucket index for a recorded value: exact below 16, then log-linear
/// (4 sub-buckets per power of two, ≤ 12.5% relative width).
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let log2 = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (log2 - 2)) & 0x3) as usize;
    EXACT as usize + (log2 - 4) * SUBS + sub
}

/// Midpoint of a bucket's value range, used as its representative when
/// reading quantiles back out.
fn bucket_mid(i: usize) -> u64 {
    if i < EXACT as usize {
        return i as u64;
    }
    let log2 = 4 + (i - EXACT as usize) / SUBS;
    let sub = ((i - EXACT as usize) % SUBS) as u64;
    let lower = (1u64 << log2) | (sub << (log2 - 2));
    let width = 1u64 << (log2 - 2);
    lower + width / 2
}

/// Shared histogram storage: fixed log-bucketed atomic counters plus
/// running count / sum / min / max.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        snapshot_from(
            &counts,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Build a snapshot from raw bucket counts and running aggregates.
fn snapshot_from(counts: &[u64], count: u64, sum: u64, min: u64, max: u64) -> HistogramSnapshot {
    let quantile = |q: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(NUM_BUCKETS - 1)
    };
    HistogramSnapshot {
        count,
        sum,
        min: if count == 0 { 0 } else { min },
        max,
        p50: quantile(0.50),
        p90: quantile(0.90),
        p99: quantile(0.99),
    }
}

/// A single-owner histogram with value semantics.
///
/// Same log-linear buckets and quantile math as [`Histogram`], but no
/// atomics and no registry: cloning clones the data, so embedding one
/// in a `Clone` struct (e.g. a stats sink) behaves like any other
/// field. Use [`Histogram`] when handles must be shared.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LocalHistogram { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Read the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        snapshot_from(&self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Drop all recorded values.
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

/// A point-in-time read of a histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (bucket-midpoint estimate, ≤ 12.5% relative error).
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A latency histogram handle (values are dimensionless `u64`s; by
/// convention the stack records microseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A standalone enabled histogram, not attached to any registry.
    ///
    /// Useful where a component wants percentile math (e.g. the server
    /// stats percentiles) without routing through an [`crate::Obs`]
    /// handle.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Read the current distribution (all zeros for a detached handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map_or_else(HistogramSnapshot::default, |h| h.snapshot())
    }
}

/// The registry behind an enabled [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistogramCore>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str, label: Option<(&str, &str)>) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        map.entry(make_key(name, label)).or_default().clone()
    }

    pub(crate) fn gauge(&self, name: &str, label: Option<(&str, &str)>) -> Arc<AtomicI64> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        map.entry(make_key(name, label)).or_default().clone()
    }

    pub(crate) fn histogram(&self, name: &str, label: Option<(&str, &str)>) -> Arc<HistogramCore> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(make_key(name, label)).or_insert_with(|| Arc::new(HistogramCore::new())).clone()
    }

    /// Sorted snapshot of every counter.
    pub(crate) fn counters(&self) -> Vec<(MetricKey, u64)> {
        let map = self.counters.lock().expect("counter registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }

    /// Sorted snapshot of every gauge.
    pub(crate) fn gauges(&self) -> Vec<(MetricKey, i64)> {
        let map = self.gauges.lock().expect("gauge registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }

    /// Sorted snapshot of every histogram.
    pub(crate) fn histograms(&self) -> Vec<(MetricKey, HistogramSnapshot)> {
        let map = self.histograms.lock().expect("histogram registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.record(123);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn counter_handles_share_storage() {
        let reg = Registry::default();
        let a = Counter(Some(reg.counter("x", None)));
        let b = Counter(Some(reg.counter("x", None)));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // A different label is a different cell.
        let c = Counter(Some(reg.counter("x", Some(("kind", "join")))));
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::default();
        let g = Gauge(Some(reg.gauge("depth", None)));
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 8, v + v / 3, v + v / 2, v | (v - 1)] {
                let i = bucket_index(probe);
                assert!(i < NUM_BUCKETS, "bucket {i} for {probe}");
                assert!(i >= last, "non-monotone at {probe}");
                last = i;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
    }

    #[test]
    fn bucket_mid_lands_in_own_bucket() {
        for i in 0..NUM_BUCKETS {
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "midpoint {mid} of bucket {i}");
        }
    }

    #[test]
    fn exact_range_percentiles_are_exact() {
        let h = Histogram::standalone();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 55);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.p50, 5);
        assert_eq!(s.p90, 9);
        assert_eq!(s.p99, 10);
    }

    #[test]
    fn log_range_percentiles_within_bucket_error() {
        let h = Histogram::standalone();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let within = |est: u64, truth: f64| {
            let rel = (est as f64 - truth).abs() / truth;
            assert!(rel < 0.13, "estimate {est} vs {truth} (rel {rel:.3})");
        };
        within(s.p50, 5_000.0);
        within(s.p90, 9_000.0);
        within(s.p99, 9_900.0);
        assert_eq!(s.max, 10_000);
        assert!((s.mean() - 5_000.5).abs() < 0.001);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::standalone();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
