//! A bounded, causally ordered event timeline.
//!
//! Every subsystem pushes typed [`ObsEvent`]s through its
//! [`crate::Obs`] handle; the timeline stamps each with a global
//! sequence number (causal order) and the observability clock
//! (deterministic under simulated time). Storage is a ring buffer:
//! old entries are evicted, but per-kind *counts* are cumulative and
//! survive eviction so they can be reconciled against WAL record
//! counts and registry counters.

use crate::trace::TraceSpan;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// A typed event on the observability timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A join request was served (immediate mode) or replayed.
    Join {
        /// Joining user id.
        user: u64,
    },
    /// A leave request was served (immediate mode) or replayed.
    Leave {
        /// Leaving user id.
        user: u64,
    },
    /// A join was queued for the next batch interval.
    EnqueueJoin {
        /// Joining user id.
        user: u64,
    },
    /// A leave was queued for the next batch interval.
    EnqueueLeave {
        /// Leaving user id.
        user: u64,
    },
    /// A queued leave cancelled a not-yet-flushed join for the same
    /// user (the scheduler's join/leave collapse).
    CollapsedJoin {
        /// User whose pending join was cancelled.
        user: u64,
    },
    /// A batch interval was flushed.
    Flush {
        /// Rekey interval number.
        interval: u64,
        /// Joins included in the batch.
        joins: u64,
        /// Leaves included in the batch.
        leaves: u64,
    },
    /// The group key was refreshed (periodic rotation).
    Refresh,
    /// One record was appended to the write-ahead log.
    WalAppend {
        /// Wire tag of the logged operation ("join", "flush", ...).
        op: &'static str,
    },
    /// A snapshot install rotated to a fresh write-ahead log.
    WalRotated {
        /// New epoch number.
        epoch: u64,
    },
    /// A full-state snapshot was written and installed.
    SnapshotInstalled {
        /// Epoch the snapshot begins.
        epoch: u64,
        /// Serialized snapshot size in bytes.
        bytes: u64,
        /// Time spent writing + installing, in microseconds.
        duration_us: u64,
    },
    /// A server recovered from disk.
    Recovered {
        /// Epoch recovered into.
        epoch: u64,
        /// WAL records replayed on top of the snapshot.
        records_replayed: u64,
    },
    /// A simulated endpoint crashed (stops receiving).
    Crash {
        /// Endpoint id.
        endpoint: u64,
    },
    /// A crashed endpoint came back.
    Restart {
        /// Endpoint id.
        endpoint: u64,
    },
    /// The simulated network dropped a datagram.
    PacketDropped {
        /// Sender endpoint id.
        from: u64,
        /// Intended receiver endpoint id.
        to: u64,
        /// Fault mode responsible ("loss", "down", "closed").
        mode: &'static str,
    },
    /// The simulated network duplicated a datagram.
    PacketDuplicated {
        /// Sender endpoint id.
        from: u64,
        /// Receiver endpoint id.
        to: u64,
    },
    /// The reliable layer retransmitted an unacked frame.
    Retransmit {
        /// Sender endpoint id.
        from: u64,
        /// Retry number for that frame (1 = first retransmit).
        attempt: u64,
    },
    /// A datagram failed to decode as a control message.
    BadDatagram {
        /// Sender endpoint id.
        from: u64,
        /// Decode error description.
        error: String,
    },
    /// A scheduled batch flush failed inside the network server.
    FlushFailed {
        /// Failure description.
        error: String,
    },
    /// A client rejected a batch packet older than one already applied.
    StaleInterval {
        /// Interval carried by the rejected packet.
        packet: u64,
        /// Interval the client had already applied.
        current: u64,
    },
    /// A span closed while a distributed trace was active (see
    /// [`crate::Obs::trace_scope`]). These records are what the
    /// cross-process trace reassembly consumes.
    Span(TraceSpan),
}

impl ObsEvent {
    /// Stable short name for this event's kind, used for cumulative
    /// counts and the pretty-printer.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Join { .. } => "join",
            ObsEvent::Leave { .. } => "leave",
            ObsEvent::EnqueueJoin { .. } => "enqueue_join",
            ObsEvent::EnqueueLeave { .. } => "enqueue_leave",
            ObsEvent::CollapsedJoin { .. } => "collapsed_join",
            ObsEvent::Flush { .. } => "flush",
            ObsEvent::Refresh => "refresh",
            ObsEvent::WalAppend { .. } => "wal_append",
            ObsEvent::WalRotated { .. } => "wal_rotated",
            ObsEvent::SnapshotInstalled { .. } => "snapshot_installed",
            ObsEvent::Recovered { .. } => "recovered",
            ObsEvent::Crash { .. } => "crash",
            ObsEvent::Restart { .. } => "restart",
            ObsEvent::PacketDropped { .. } => "packet_dropped",
            ObsEvent::PacketDuplicated { .. } => "packet_duplicated",
            ObsEvent::Retransmit { .. } => "retransmit",
            ObsEvent::BadDatagram { .. } => "bad_datagram",
            ObsEvent::FlushFailed { .. } => "flush_failed",
            ObsEvent::StaleInterval { .. } => "stale_interval",
            ObsEvent::Span(_) => "span",
        }
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsEvent::Join { user } => write!(f, "join user={user}"),
            ObsEvent::Leave { user } => write!(f, "leave user={user}"),
            ObsEvent::EnqueueJoin { user } => write!(f, "enqueue-join user={user}"),
            ObsEvent::EnqueueLeave { user } => write!(f, "enqueue-leave user={user}"),
            ObsEvent::CollapsedJoin { user } => {
                write!(f, "collapsed pending join user={user}")
            }
            ObsEvent::Flush { interval, joins, leaves } => {
                write!(f, "flush interval={interval} joins={joins} leaves={leaves}")
            }
            ObsEvent::Refresh => write!(f, "group key refresh"),
            ObsEvent::WalAppend { op } => write!(f, "wal append op={op}"),
            ObsEvent::WalRotated { epoch } => write!(f, "wal rotated epoch={epoch}"),
            ObsEvent::SnapshotInstalled { epoch, bytes, duration_us } => {
                write!(f, "snapshot installed epoch={epoch} bytes={bytes} took={duration_us}us")
            }
            ObsEvent::Recovered { epoch, records_replayed } => {
                write!(f, "recovered epoch={epoch} replayed={records_replayed}")
            }
            ObsEvent::Crash { endpoint } => write!(f, "crash endpoint={endpoint}"),
            ObsEvent::Restart { endpoint } => write!(f, "restart endpoint={endpoint}"),
            ObsEvent::PacketDropped { from, to, mode } => {
                write!(f, "packet dropped {from}->{to} mode={mode}")
            }
            ObsEvent::PacketDuplicated { from, to } => {
                write!(f, "packet duplicated {from}->{to}")
            }
            ObsEvent::Retransmit { from, attempt } => {
                write!(f, "retransmit from={from} attempt={attempt}")
            }
            ObsEvent::BadDatagram { from, error } => {
                write!(f, "bad datagram from={from}: {error}")
            }
            ObsEvent::FlushFailed { error } => write!(f, "flush failed: {error}"),
            ObsEvent::StaleInterval { packet, current } => {
                write!(f, "stale interval packet={packet} current={current}")
            }
            ObsEvent::Span(s) => {
                write!(
                    f,
                    "span trace={:#x} id={:#x} parent={:#x} hop={} path={} {}us",
                    s.trace_id,
                    s.span_id,
                    s.parent_span,
                    s.hop,
                    s.path,
                    s.duration_us()
                )
            }
        }
    }
}

/// One timeline slot: a sequence number, a timestamp, and the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Global sequence number (1-based, gap-free, causal order).
    pub seq: u64,
    /// Timestamp from the observability clock, microseconds.
    pub at_us: u64,
    /// The event itself.
    pub event: ObsEvent,
}

#[derive(Debug)]
struct Ring {
    entries: VecDeque<TimelineEntry>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    kind_counts: BTreeMap<&'static str, u64>,
}

/// Bounded event store shared by all clones of an [`crate::Obs`]
/// handle.
#[derive(Debug)]
pub(crate) struct Timeline {
    ring: Mutex<Ring>,
}

impl Timeline {
    pub(crate) fn new(capacity: usize) -> Self {
        Timeline {
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                next_seq: 1,
                evicted: 0,
                kind_counts: BTreeMap::new(),
            }),
        }
    }

    /// Append an event; returns its sequence number.
    pub(crate) fn push(&self, at_us: u64, event: ObsEvent) -> u64 {
        let mut ring = self.ring.lock().expect("timeline poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        *ring.kind_counts.entry(event.kind()).or_insert(0) += 1;
        if ring.entries.len() == ring.capacity {
            ring.entries.pop_front();
            ring.evicted += 1;
        }
        ring.entries.push_back(TimelineEntry { seq, at_us, event });
        seq
    }

    /// Copy of the retained entries, oldest first.
    pub(crate) fn entries(&self) -> Vec<TimelineEntry> {
        self.ring.lock().expect("timeline poisoned").entries.iter().cloned().collect()
    }

    /// Copy of the retained entries with `seq > after`, oldest first.
    /// Entries sit in the ring in seq order, so this clones only the
    /// tail a periodic harvester hasn't consumed yet.
    pub(crate) fn entries_since(&self, after: u64) -> Vec<TimelineEntry> {
        let ring = self.ring.lock().expect("timeline poisoned");
        let skip = ring.entries.partition_point(|e| e.seq <= after);
        ring.entries.iter().skip(skip).cloned().collect()
    }

    /// Cumulative number of events ever pushed (including evicted).
    pub(crate) fn total(&self) -> u64 {
        self.ring.lock().expect("timeline poisoned").next_seq - 1
    }

    /// Entries evicted by the ring bound.
    pub(crate) fn evicted(&self) -> u64 {
        self.ring.lock().expect("timeline poisoned").evicted
    }

    /// Cumulative per-kind event counts (survive eviction).
    pub(crate) fn kind_counts(&self) -> BTreeMap<&'static str, u64> {
        self.ring.lock().expect("timeline poisoned").kind_counts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_gap_free() {
        let t = Timeline::new(16);
        for u in 0..5 {
            t.push(u * 10, ObsEvent::Join { user: u });
        }
        let entries = t.entries();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert_eq!(e.at_us, i as u64 * 10);
        }
    }

    #[test]
    fn entries_since_returns_only_the_unconsumed_tail() {
        let t = Timeline::new(4);
        for u in 0..6 {
            t.push(u * 10, ObsEvent::Join { user: u });
        }
        // Ring retains seqs 3..=6; a harvester at seq 4 gets 5 and 6.
        let tail = t.entries_since(4);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![5, 6]);
        // A harvester behind the eviction horizon gets everything retained.
        assert_eq!(t.entries_since(0).len(), 4);
        assert_eq!(t.entries_since(6), Vec::new());
    }

    #[test]
    fn ring_evicts_but_counts_survive() {
        let t = Timeline::new(3);
        for u in 0..10 {
            t.push(0, ObsEvent::Leave { user: u });
        }
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.entries()[0].seq, 8); // oldest retained
        assert_eq!(t.total(), 10);
        assert_eq!(t.evicted(), 7);
        assert_eq!(t.kind_counts().get("leave"), Some(&10));
    }

    #[test]
    fn every_event_kind_is_distinct_and_displays() {
        let events = [
            ObsEvent::Join { user: 1 },
            ObsEvent::Leave { user: 1 },
            ObsEvent::EnqueueJoin { user: 1 },
            ObsEvent::EnqueueLeave { user: 1 },
            ObsEvent::CollapsedJoin { user: 1 },
            ObsEvent::Flush { interval: 1, joins: 2, leaves: 3 },
            ObsEvent::Refresh,
            ObsEvent::WalAppend { op: "join" },
            ObsEvent::WalRotated { epoch: 2 },
            ObsEvent::SnapshotInstalled { epoch: 2, bytes: 100, duration_us: 5 },
            ObsEvent::Recovered { epoch: 2, records_replayed: 7 },
            ObsEvent::Crash { endpoint: 0 },
            ObsEvent::Restart { endpoint: 0 },
            ObsEvent::PacketDropped { from: 0, to: 1, mode: "loss" },
            ObsEvent::PacketDuplicated { from: 0, to: 1 },
            ObsEvent::Retransmit { from: 0, attempt: 1 },
            ObsEvent::BadDatagram { from: 0, error: "truncated".into() },
            ObsEvent::FlushFailed { error: "acl".into() },
            ObsEvent::StaleInterval { packet: 1, current: 2 },
            ObsEvent::Span(TraceSpan {
                trace_id: 1,
                span_id: 2,
                parent_span: 0,
                hop: 0,
                path: "op.join".into(),
                start_us: 10,
                end_us: 25,
            }),
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "kind() collision");
        for e in &events {
            assert!(!e.to_string().is_empty());
        }
    }
}
