//! Distributed trace context and cross-process trace reassembly.
//!
//! A cluster request (join/leave/batch-flush) crosses at least two
//! processes: the router that forwards it and the shard node that
//! serves it, with rekey fan-out crossing back. Each process keeps its
//! own [`crate::Obs`] timeline stamped by its own clock, so following
//! one request requires a *trace context* carried on the wire:
//!
//! * `trace_id` — one per request, allocated by the router;
//! * `parent_span` — the span id of the sender-side span that emitted
//!   the frame, so the receiver's spans link under it;
//! * `hop` — a counter incremented per process boundary, giving a
//!   total order of processes even when their clocks disagree.
//!
//! While a trace is active (see [`crate::Obs::trace_scope`]) every
//! ordinary [`crate::Obs::span`] additionally allocates a process-wide
//! unique span id and, on drop, appends an
//! [`crate::ObsEvent::Span`] record to the timeline. Those records —
//! gathered from every process, e.g. via telemetry snapshots — feed
//! [`reassemble`], which groups them by trace id and links them by
//! parent span id into [`Trace`]s.
//!
//! Clock domains differ across processes, so absolute timestamps are
//! only comparable *within* a hop; [`Trace::window_us`] therefore
//! reports per-hop-set windows (router-observed vs node-internal), and
//! the difference between them is attributable queue/network time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Compact trace context carried in every traced cluster frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Request identity; allocated once at the ingress (router).
    pub trace_id: u64,
    /// Span id of the sender-side span that emitted the frame
    /// (0 for a root context: spans link directly under the trace).
    pub parent_span: u64,
    /// Process-boundary counter; 0 at the ingress, +1 per hop.
    pub hop: u8,
}

impl TraceContext {
    /// A root context for a freshly allocated trace id.
    pub fn root(trace_id: u64) -> Self {
        TraceContext { trace_id, parent_span: 0, hop: 0 }
    }

    /// The context to stamp on an outgoing frame: same trace, one hop
    /// further. `parent_span` should already be the sender's innermost
    /// open span (see [`crate::Obs::current_trace`]).
    pub fn next_hop(self) -> Self {
        TraceContext { hop: self.hop.saturating_add(1), ..self }
    }
}

/// One completed span of a trace, as recorded on a process timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Process-unique span id (salted, see [`crate::Obs::set_trace_salt`]).
    pub span_id: u64,
    /// Id of the enclosing span (same process) or of the sender-side
    /// span one hop back; 0 for the trace root.
    pub parent_span: u64,
    /// Hop counter of the process that recorded the span.
    pub hop: u8,
    /// Full dotted span path (`node.parse.op.leave.encrypt`).
    pub path: String,
    /// Start timestamp, microseconds on the recording process's clock.
    pub start_us: u64,
    /// End timestamp, same clock domain; always >= `start_us`.
    pub end_us: u64,
}

impl TraceSpan {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// SplitMix64 — the id mixer used for span ids. Deterministic, cheap,
/// and well distributed: distinct (salt, counter) inputs give ids that
/// collide with negligible probability, so per-process salts keep
/// cross-process span ids disjoint.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A reassembled trace: all spans recorded for one trace id, across
/// every process that contributed records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The trace identity.
    pub trace_id: u64,
    /// Member spans, sorted by (hop, start_us, span_id).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Distinct hop values present, ascending.
    pub fn hops(&self) -> Vec<u8> {
        let mut h: Vec<u8> = self.spans.iter().map(|s| s.hop).collect();
        h.sort_unstable();
        h.dedup();
        h
    }

    /// The root span (parent_span == 0), if it was recorded.
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent_span == 0)
    }

    /// Whether the trace is fully stitched: it has a root, covers at
    /// least two hops, and every non-root span's parent resolves to
    /// another recorded span — i.e. the cross-process links survived.
    pub fn is_stitched(&self) -> bool {
        if self.root().is_none() || self.hops().len() < 2 {
            return false;
        }
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans.iter().all(|s| s.parent_span == 0 || ids.contains(&s.parent_span))
    }

    /// Observed window (max end − min start), restricted to spans
    /// whose hop is in `hops`. Returns 0 if no span matches. Only
    /// meaningful when all listed hops share a clock domain (e.g. the
    /// router's ingress hop 0 and fan-out hop 2).
    pub fn window_us(&self, hops: &[u8]) -> u64 {
        let mut start = u64::MAX;
        let mut end = 0u64;
        for s in self.spans.iter().filter(|s| hops.contains(&s.hop)) {
            start = start.min(s.start_us);
            end = end.max(s.end_us);
        }
        end.saturating_sub(if start == u64::MAX { end } else { start })
    }

    /// Human-readable tree: one line per span, indented by ancestry,
    /// children ordered by start time. Spans whose parent was never
    /// recorded (e.g. evicted from a ring) are flagged as orphans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {:#018x} spans={} hops={} stitched={}",
            self.trace_id,
            self.spans.len(),
            self.hops().len(),
            if self.is_stitched() { "yes" } else { "no" }
        );
        let mut children: BTreeMap<u64, Vec<&TraceSpan>> = BTreeMap::new();
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        let mut roots: Vec<&TraceSpan> = Vec::new();
        for s in &self.spans {
            if s.parent_span != 0 && ids.contains(&s.parent_span) {
                children.entry(s.parent_span).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        fn emit(
            out: &mut String,
            s: &TraceSpan,
            depth: usize,
            orphan: bool,
            children: &BTreeMap<u64, Vec<&TraceSpan>>,
        ) {
            let _ = writeln!(
                out,
                "{}[hop {}] {} {}us{}",
                "  ".repeat(depth + 1),
                s.hop,
                s.path,
                s.duration_us(),
                if orphan { " (orphaned parent)" } else { "" }
            );
            if let Some(kids) = children.get(&s.span_id) {
                for k in kids {
                    emit(out, k, depth + 1, false, children);
                }
            }
        }
        for r in &roots {
            emit(&mut out, r, 0, r.parent_span != 0, &children);
        }
        out
    }
}

/// Group span records by trace id and link them into [`Trace`]s,
/// ordered by trace id. Records from multiple processes can simply be
/// concatenated before calling.
pub fn reassemble(spans: impl IntoIterator<Item = TraceSpan>) -> Vec<Trace> {
    let mut by_trace: BTreeMap<u64, Vec<TraceSpan>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (s.hop, s.start_us, s.span_id));
            spans.dedup();
            Trace { trace_id, spans }
        })
        .collect()
}

/// Extract the span records from a timeline dump (the other event
/// kinds are skipped).
pub fn spans_from_timeline(entries: &[crate::TimelineEntry]) -> Vec<TraceSpan> {
    entries
        .iter()
        .filter_map(|e| match &e.event {
            crate::ObsEvent::Span(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, hop: u8, path: &str, t0: u64, t1: u64) -> TraceSpan {
        TraceSpan {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            hop,
            path: path.to_string(),
            start_us: t0,
            end_us: t1,
        }
    }

    #[test]
    fn context_hops_forward() {
        let c = TraceContext::root(7);
        assert_eq!(c, TraceContext { trace_id: 7, parent_span: 0, hop: 0 });
        let c2 = TraceContext { parent_span: 42, ..c }.next_hop();
        assert_eq!(c2, TraceContext { trace_id: 7, parent_span: 42, hop: 1 });
        // Saturates rather than wrapping on absurd depth.
        let deep = TraceContext { hop: u8::MAX, ..c }.next_hop();
        assert_eq!(deep.hop, u8::MAX);
    }

    #[test]
    fn splitmix_distributes() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
        // Deterministic.
        assert_eq!(splitmix64(1), a);
    }

    #[test]
    fn reassembly_groups_links_and_orders() {
        let spans = vec![
            span(1, 30, 20, 1, "node.parse", 5, 40),
            span(1, 10, 0, 0, "router.recv", 0, 100),
            span(1, 20, 10, 0, "router.recv.relay", 1, 90),
            span(2, 99, 0, 0, "router.recv", 0, 3),
        ];
        let traces = reassemble(spans);
        assert_eq!(traces.len(), 2);
        let t = &traces[0];
        assert_eq!(t.trace_id, 1);
        assert_eq!(t.spans[0].span_id, 10); // hop asc, then start
        assert_eq!(t.hops(), vec![0, 1]);
        assert_eq!(t.root().unwrap().span_id, 10);
        assert!(t.is_stitched());
        assert!(!traces[1].is_stitched()); // single hop
        let text = t.render();
        assert!(text.contains("stitched=yes"));
        assert!(text.contains("[hop 1] node.parse"));
        // Child indented deeper than parent.
        let relay = text.lines().find(|l| l.contains("relay")).unwrap();
        let recv = text.lines().find(|l| l.contains("router.recv ")).unwrap();
        assert!(relay.find('[') > recv.find('['));
    }

    #[test]
    fn broken_parent_link_is_not_stitched() {
        let spans = vec![
            span(1, 10, 0, 0, "router.recv", 0, 100),
            span(1, 30, 999, 1, "node.parse", 5, 40), // parent never recorded
        ];
        let traces = reassemble(spans);
        assert!(!traces[0].is_stitched());
        assert!(traces[0].render().contains("orphaned parent"));
    }

    #[test]
    fn windows_are_per_hop_set() {
        let t = &reassemble(vec![
            span(1, 10, 0, 0, "router.recv", 0, 100),
            span(1, 30, 10, 1, "node.parse", 500, 560),
            span(1, 40, 30, 2, "router.fanout", 120, 130),
        ])[0];
        assert_eq!(t.window_us(&[0, 2]), 130); // router clock domain
        assert_eq!(t.window_us(&[1]), 60); // node-internal
        assert_eq!(t.window_us(&[7]), 0); // nothing recorded there
    }

    #[test]
    fn duplicate_records_collapse() {
        let s = span(1, 10, 0, 0, "router.recv", 0, 100);
        let traces = reassemble(vec![s.clone(), s]);
        assert_eq!(traces[0].spans.len(), 1);
    }
}
