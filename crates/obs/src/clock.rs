//! Pluggable time sources.
//!
//! Everything in `kg-obs` timestamps through a [`Clock`] so that code
//! running against the simulated network ([`kg-net`]'s virtual
//! microsecond clock) produces *deterministic* timestamps: the same
//! seed yields byte-identical timelines and histograms. Production
//! paths use [`WallClock`]; simulations use [`ManualClock`] and drive
//! it from the simulation's own notion of now.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Real time, measured from clock construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A hand-driven clock for deterministic (simulated) time.
///
/// Clones share the same underlying instant, so the handle kept by the
/// simulation and the handle inside the registry always agree.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_us: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock to an absolute microsecond timestamp.
    ///
    /// Moving backwards is silently ignored: the clock is monotonic so
    /// that span durations can never underflow.
    pub fn set_us(&self, t: u64) {
        self.now_us.fetch_max(t, Ordering::Relaxed);
    }

    /// Advance the clock by `delta` microseconds.
    pub fn advance_us(&self, delta: u64) {
        self.now_us.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotonic_and_shared() {
        let c = ManualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_us(), 0);
        c.set_us(100);
        assert_eq!(c2.now_us(), 100);
        c2.advance_us(50);
        assert_eq!(c.now_us(), 150);
        c.set_us(10); // backwards: ignored
        assert_eq!(c.now_us(), 150);
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
