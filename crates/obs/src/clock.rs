//! Pluggable time sources.
//!
//! Everything in `kg-obs` timestamps through a [`Clock`] so that code
//! running against the simulated network ([`kg-net`]'s virtual
//! microsecond clock) produces *deterministic* timestamps: the same
//! seed yields byte-identical timelines and histograms. Production
//! paths use [`WallClock`]; simulations use [`ManualClock`] and drive
//! it from the simulation's own notion of now.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Real time, measured from clock construction.
///
/// Readings are latched through an atomic high-water mark: even if the
/// underlying time source steps backwards (an NTP adjustment leaking
/// through a platform's `Instant`), `now_us` never retreats, so span
/// durations can clamp at 0 instead of underflowing to ~584 millennia.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
    latest_us: AtomicU64,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now(), latest_us: AtomicU64::new(0) }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        let raw = self.origin.elapsed().as_micros() as u64;
        let prev = self.latest_us.fetch_max(raw, Ordering::Relaxed);
        raw.max(prev)
    }
}

/// A hand-driven clock for deterministic (simulated) time.
///
/// Clones share the same underlying instant, so the handle kept by the
/// simulation and the handle inside the registry always agree.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_us: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock to an absolute microsecond timestamp.
    ///
    /// Moving backwards is silently ignored: the clock is monotonic so
    /// that span durations can never underflow.
    pub fn set_us(&self, t: u64) {
        self.now_us.fetch_max(t, Ordering::Relaxed);
    }

    /// Advance the clock by `delta` microseconds.
    pub fn advance_us(&self, delta: u64) {
        self.now_us.fetch_add(delta, Ordering::Relaxed);
    }

    /// Force the clock to `t`, even backwards.
    ///
    /// Fault injection only: simulates a wall clock stepping backwards
    /// (NTP) so tests can prove that duration math clamps instead of
    /// underflowing. Regular simulation code should use
    /// [`ManualClock::set_us`], which stays monotonic.
    pub fn force_us(&self, t: u64) {
        self.now_us.store(t, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotonic_and_shared() {
        let c = ManualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_us(), 0);
        c.set_us(100);
        assert_eq!(c2.now_us(), 100);
        c2.advance_us(50);
        assert_eq!(c.now_us(), 150);
        c.set_us(10); // backwards: ignored
        assert_eq!(c.now_us(), 150);
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_latches_its_high_water_mark() {
        let c = WallClock::new();
        let a = c.now_us();
        // The latch can only be >= any earlier reading, whatever the
        // underlying source does.
        c.latest_us.store(a + 1_000_000, Ordering::Relaxed);
        assert!(c.now_us() >= a + 1_000_000);
    }

    #[test]
    fn force_us_moves_backwards_for_fault_injection() {
        let c = ManualClock::new();
        c.set_us(100);
        c.force_us(40);
        assert_eq!(c.now_us(), 40);
    }
}
