//! Exporters: Prometheus-style text exposition, a JSON dump, and a
//! human-readable timeline pretty-printer.
//!
//! No external serialization crates are available, so JSON is built by
//! hand; the only strings that reach it are metric names, label pairs,
//! and event `Display` output, all of which are escaped.

use crate::metrics::{escape_label_value, render_key, HistogramSnapshot, MetricKey};
use crate::ObsInner;
use std::fmt::Write;

/// Render every registered metric in Prometheus text exposition form.
///
/// Counters and gauges are single samples; histograms expand into
/// `_count` / `_sum` samples plus `quantile`-labeled estimates, the
/// shape Prometheus uses for summaries.
pub(crate) fn render_prometheus(inner: &ObsInner) -> String {
    let mut out = String::new();
    for (key, v) in inner.registry.counters() {
        let _ = writeln!(out, "{} {v}", render_key(&key));
    }
    for (key, v) in inner.registry.gauges() {
        let _ = writeln!(out, "{} {v}", render_key(&key));
    }
    for (key, snap) in inner.registry.histograms() {
        let _ = writeln!(out, "{} {}", suffixed(&key, "_count", None), snap.count);
        let _ = writeln!(out, "{} {}", suffixed(&key, "_sum", None), snap.sum);
        for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99), ("1", snap.max)] {
            let _ = writeln!(out, "{} {v}", suffixed(&key, "", Some(q)));
        }
    }
    out
}

/// `name_suffix{label,quantile="q"}` with whichever parts are present.
fn suffixed(key: &MetricKey, suffix: &str, quantile: Option<&str>) -> String {
    let mut labels = Vec::new();
    if let Some((k, v)) = &key.1 {
        labels.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some(q) = quantile {
        labels.push(format!("quantile=\"{q}\""));
    }
    if labels.is_empty() {
        format!("{}{suffix}", key.0)
    } else {
        format!("{}{suffix}{{{}}}", key.0, labels.join(","))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn hist_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        snap.count, snap.sum, snap.min, snap.max, snap.p50, snap.p90, snap.p99
    )
}

/// Render metrics, cumulative event counts, and the retained timeline
/// as one JSON object.
pub(crate) fn render_json(inner: &ObsInner) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let counters = inner.registry.counters();
    for (i, (key, v)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(&render_key(key)));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = inner.registry.gauges();
    for (i, (key, v)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(&render_key(key)));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let hists = inner.registry.histograms();
    for (i, (key, snap)) in hists.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ =
            write!(out, "{sep}\n    \"{}\": {}", json_escape(&render_key(key)), hist_json(snap));
    }
    out.push_str("\n  },\n  \"event_counts\": {");
    let kinds = inner.timeline.kind_counts();
    for (i, (kind, count)) in kinds.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{kind}\": {count}");
    }
    let _ = write!(
        out,
        "\n  }},\n  \"events_total\": {},\n  \"events_evicted\": {},\n  \"timeline\": [",
        inner.timeline.total(),
        inner.timeline.evicted()
    );
    let entries = inner.timeline.entries();
    for (i, e) in entries.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"event\":\"{}\"}}",
            e.seq,
            e.at_us,
            e.event.kind(),
            json_escape(&e.event.to_string())
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Render the retained timeline for humans: one line per event, in
/// causal (sequence) order, with a note when the ring has evicted.
pub(crate) fn render_timeline(inner: &ObsInner) -> String {
    let entries = inner.timeline.entries();
    if entries.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let evicted = inner.timeline.evicted();
    if evicted > 0 {
        let _ = writeln!(out, "... {evicted} earlier event(s) evicted by the ring bound ...");
    }
    for e in &entries {
        let _ = writeln!(out, "#{:<6} t={:>10}us  {}", e.seq, e.at_us, e.event);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{ManualClock, Obs, ObsConfig, ObsEvent};

    fn sample_obs() -> (ManualClock, Obs) {
        let clock = ManualClock::new();
        let obs = Obs::new(ObsConfig::manual(clock.clone()));
        obs.counter_with("kg_requests_total", "kind", "join").add(2);
        obs.gauge("kg_batch_queue_depth").set(3);
        obs.histogram("kg_fsync_us").record(120);
        clock.set_us(50);
        obs.event(ObsEvent::Join { user: 4 });
        clock.set_us(75);
        obs.event(ObsEvent::WalAppend { op: "join" });
        (clock, obs)
    }

    #[test]
    fn prometheus_exposition_shape() {
        let (_clock, obs) = sample_obs();
        let text = obs.render_prometheus();
        assert!(text.contains("kg_requests_total{kind=\"join\"} 2"));
        assert!(text.contains("kg_batch_queue_depth 3"));
        assert!(text.contains("kg_fsync_us_count 1"));
        assert!(text.contains("kg_fsync_us_sum 120"));
        assert!(text.contains("kg_fsync_us{quantile=\"0.99\"}"));
        // Span histograms carry both the span label and the quantile.
        {
            let _s = obs.span("flush");
        }
        let text = obs.render_prometheus();
        assert!(text.contains("kg_span_us_count{span=\"flush\"} 1"));
        assert!(text.contains("kg_span_us{span=\"flush\",quantile=\"0.5\"}"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let obs = Obs::new(ObsConfig::default());
        obs.counter_with("kg_bad_datagram_total", "error", "back\\slash \"quote\"\nnewline").inc();
        let text = obs.render_prometheus();
        assert!(
            text.contains(r#"kg_bad_datagram_total{error="back\\slash \"quote\"\nnewline"} 1"#),
            "got: {text}"
        );
        // One sample per line even with an embedded newline in the value.
        assert_eq!(text.lines().count(), 1);
        // Histogram label values take the same escaping path.
        obs.histogram_with("kg_h_us", "kind", "a\"b").record(3);
        let text = obs.render_prometheus();
        assert!(text.contains(r#"kg_h_us_count{kind="a\"b"} 1"#), "got: {text}");
    }

    #[test]
    fn json_dump_is_parseable_shape() {
        let (_clock, obs) = sample_obs();
        let json = obs.render_json();
        assert!(json.contains("\"kg_requests_total{kind=\\\"join\\\"}\": 2"));
        assert!(json.contains("\"events_total\": 2"));
        assert!(json.contains("\"join\": 1"));
        assert!(json.contains("\"wal_append\": 1"));
        assert!(json.contains("{\"seq\":1,\"at_us\":50,\"kind\":\"join\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn timeline_pretty_printer_orders_and_notes_eviction() {
        let clock = ManualClock::new();
        let obs = Obs::new(ObsConfig { timeline_capacity: 2, ..ObsConfig::manual(clock.clone()) });
        for u in 0..5 {
            clock.set_us(u * 10);
            obs.event(ObsEvent::Leave { user: u });
        }
        let text = obs.render_timeline();
        assert!(text.starts_with("... 3 earlier event(s) evicted"));
        assert!(text.contains("#4"));
        assert!(text.contains("#5"));
        assert!(text.contains("leave user=4"));
        assert!(!text.contains("leave user=1"));
    }
}
