//! Observability for the key-graph stack.
//!
//! The paper's evaluation (§6) is built entirely on measurements —
//! server processing time, message counts, encryption counts — and the
//! reproduction grew batching (PR 1) and persistence (PR 2) layers
//! whose behaviour is invisible to the post-hoc `ServerStats` vector.
//! This crate supplies the telemetry layer those subsystems hang their
//! measurements on:
//!
//! * a **metrics registry** ([`Obs::counter`], [`Obs::gauge`],
//!   [`Obs::histogram`]) whose handles are `Arc`s over atomics — the
//!   hot path is a relaxed atomic op, the registry lock is only taken
//!   when a handle is first resolved;
//! * an RAII **span API** ([`Obs::span`]) recording nested phase
//!   timings under dotted paths (`op.join.encrypt`), timestamped by a
//!   pluggable [`Clock`] so simulated time stays deterministic;
//! * a bounded **event timeline** ([`Obs::event`]) of typed
//!   [`ObsEvent`]s with gap-free sequence numbers for causal ordering,
//!   whose per-kind counts survive ring eviction;
//! * **exporters**: Prometheus-style text ([`Obs::render_prometheus`]),
//!   a JSON dump ([`Obs::render_json`]), and a human-readable timeline
//!   pretty-printer ([`Obs::render_timeline`]).
//!
//! An [`Obs`] handle is cheap to clone and thread through constructors.
//! The [`Obs::disabled`] handle (or [`ObsConfig::disabled`]) makes
//! every operation a no-op, so instrumented code pays almost nothing
//! when observability is off — the `report obs` bench quantifies the
//! residual overhead.

#![deny(missing_docs)]

mod clock;
mod export;
mod metrics;
mod span;
mod timeline;
pub mod trace;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram};
use span::SpanScope;
pub use span::{Span, TraceGuard};
pub use timeline::{ObsEvent, TimelineEntry};
pub use trace::{Trace, TraceContext, TraceSpan};

use metrics::Registry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use timeline::Timeline;

/// Which clock an [`Obs`] handle timestamps with.
#[derive(Debug, Clone, Default)]
pub enum ClockSource {
    /// Real time, measured from handle construction.
    #[default]
    Wall,
    /// A hand-driven clock; the caller keeps a clone and advances it
    /// (typically from the simulated network's virtual microseconds).
    Manual(ManualClock),
}

/// Configuration for [`Obs::new`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Whether the handle records anything at all. A disabled config
    /// yields the same no-op handle as [`Obs::disabled`].
    pub enabled: bool,
    /// Time source for spans and timeline entries.
    pub clock: ClockSource,
    /// Ring-buffer capacity of the event timeline.
    pub timeline_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { enabled: true, clock: ClockSource::Wall, timeline_capacity: 4096 }
    }
}

impl ObsConfig {
    /// A config whose handle records nothing — the baseline for
    /// overhead measurements.
    pub fn disabled() -> Self {
        ObsConfig { enabled: false, ..ObsConfig::default() }
    }

    /// An enabled config timestamped by `clock` (deterministic under
    /// simulated time).
    pub fn manual(clock: ManualClock) -> Self {
        ObsConfig { clock: ClockSource::Manual(clock), ..ObsConfig::default() }
    }
}

/// Shared state behind an enabled [`Obs`] handle.
#[derive(Debug)]
pub(crate) struct ObsInner {
    pub(crate) registry: Registry,
    pub(crate) clock: Box<dyn ClockDebug>,
    pub(crate) spans: Mutex<SpanScope>,
    pub(crate) timeline: Timeline,
    /// Per-process salt mixed into span ids (see [`Obs::set_trace_salt`]).
    trace_salt: AtomicU64,
    /// Monotone sequence behind span-id allocation.
    span_seq: AtomicU64,
}

impl ObsInner {
    /// Allocate a process-unique, salted, nonzero span id.
    pub(crate) fn next_span_id(&self) -> u64 {
        let n = self.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let salt = self.trace_salt.load(Ordering::Relaxed);
        // splitmix64 is a bijection, so for a fixed salt ids never
        // collide; distinct salts give disjoint-in-practice streams.
        let id = trace::splitmix64(trace::splitmix64(salt) ^ n);
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// [`Clock`] + `Debug`, so `ObsInner` can derive `Debug`.
pub(crate) trait ClockDebug: Clock + std::fmt::Debug {}
impl<T: Clock + std::fmt::Debug> ClockDebug for T {}

/// A cloneable observability handle.
///
/// All clones share one registry, one span stack, and one timeline.
/// The [`Default`]/[`Obs::disabled`] handle is a no-op everywhere:
/// counters don't count, spans don't record, events vanish, and every
/// exporter renders empty.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled handle per `config` (or a disabled one if
    /// `config.enabled` is false).
    pub fn new(config: ObsConfig) -> Self {
        if !config.enabled {
            return Obs::disabled();
        }
        let clock: Box<dyn ClockDebug> = match config.clock {
            ClockSource::Wall => Box::new(WallClock::new()),
            ClockSource::Manual(c) => Box::new(c),
        };
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::default(),
                clock,
                spans: Mutex::new(SpanScope::default()),
                timeline: Timeline::new(config.timeline_capacity),
                trace_salt: AtomicU64::new(0),
                span_seq: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time per the handle's clock (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_us())
    }

    /// A counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.registry.counter(name, None)))
    }

    /// A counter handle for `name{key="value"}` — one member of a
    /// labeled family (per-op-kind, per-fault-mode, ...).
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.registry.counter(name, Some((key, value)))))
    }

    /// A gauge handle for `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.registry.gauge(name, None)))
    }

    /// A gauge handle for `name{key="value"}`.
    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.registry.gauge(name, Some((key, value)))))
    }

    /// A histogram handle for `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| i.registry.histogram(name, None)))
    }

    /// A histogram handle for `name{key="value"}`.
    pub fn histogram_with(&self, name: &str, key: &str, value: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| i.registry.histogram(name, Some((key, value)))))
    }

    /// Open a span named `name`; it records its duration (µs) into
    /// `kg_span_us{span="<dotted path>"}` when dropped. Nesting is by
    /// dynamic scope: a span opened while another is open records
    /// under `parent.name`.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(inner) => Span::enter(inner, name),
            None => Span::noop(),
        }
    }

    /// Set the per-process salt mixed into distributed-trace span ids.
    ///
    /// Every process contributing spans to the same trace must use a
    /// distinct salt (convention: its transport endpoint id) so span
    /// ids stay unique across the cluster.
    pub fn set_trace_salt(&self, salt: u64) {
        if let Some(i) = &self.inner {
            i.trace_salt.store(salt, Ordering::Relaxed);
        }
    }

    /// Activate distributed tracing for the guard's lifetime.
    ///
    /// While active, every [`Obs::span`] allocates a span id under
    /// `ctx` and appends an [`ObsEvent::Span`] record to the timeline
    /// when it closes. Dropping the guard restores the previously
    /// active trace (if any). No-op on a disabled handle.
    pub fn trace_scope(&self, ctx: TraceContext) -> TraceGuard {
        match &self.inner {
            Some(inner) => TraceGuard::enter(inner, ctx),
            None => TraceGuard::noop(),
        }
    }

    /// Append a zero-duration traced span record directly to the
    /// timeline: one clock read, no scope entry, no histogram. The
    /// cheap marker for relay hops whose own work is sub-microsecond
    /// but whose causal link (`ctx.parent_span` → this record) must
    /// survive reassembly. No-op on a disabled handle.
    pub fn record_hop_span(&self, ctx: TraceContext, path: &str) {
        let Some(inner) = &self.inner else { return };
        let now = inner.clock.now_us();
        inner.timeline.push(
            now,
            ObsEvent::Span(trace::TraceSpan {
                trace_id: ctx.trace_id,
                span_id: inner.next_span_id(),
                parent_span: ctx.parent_span,
                hop: ctx.hop,
                path: path.to_string(),
                start_us: now,
                end_us: now,
            }),
        );
    }

    /// The active trace context, with `parent_span` set to the
    /// innermost open traced span — i.e. exactly what an outgoing
    /// frame should carry (after [`TraceContext::next_hop`]).
    pub fn current_trace(&self) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        inner.spans.lock().expect("span scope poisoned").trace.as_ref().map(|f| f.context())
    }

    /// Read the distribution recorded for a full dotted span path.
    pub fn span_snapshot(&self, path: &str) -> HistogramSnapshot {
        Histogram(
            self.inner.as_ref().map(|i| i.registry.histogram("kg_span_us", Some(("span", path)))),
        )
        .snapshot()
    }

    /// Append `event` to the timeline; returns its sequence number
    /// (0 when disabled).
    pub fn event(&self, event: ObsEvent) -> u64 {
        match &self.inner {
            Some(i) => i.timeline.push(i.clock.now_us(), event),
            None => 0,
        }
    }

    /// Copy of the retained timeline entries, oldest first.
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.timeline.entries())
    }

    /// Retained timeline entries with `seq > after`, oldest first —
    /// the increment a periodic harvester hasn't consumed yet, cloned
    /// without copying the whole ring.
    pub fn timeline_since(&self, after: u64) -> Vec<TimelineEntry> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.timeline.entries_since(after))
    }

    /// Cumulative number of events ever recorded (incl. evicted).
    pub fn timeline_total(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.timeline.total())
    }

    /// Entries lost to the ring bound so far.
    pub fn timeline_evicted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.timeline.evicted())
    }

    /// Cumulative per-kind event counts; unlike the ring itself these
    /// survive eviction, so they reconcile against WAL record counts.
    pub fn event_kind_counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| i.timeline.kind_counts())
    }

    /// Structured snapshot of every registered counter as sorted
    /// `(rendered name, value)` pairs, the name in exposition form
    /// (`name` or `name{key="value"}`). This is the aggregation surface:
    /// a cluster router merges the snapshots of N per-shard registries
    /// into one exported view by summing values under equal names.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.registry.counters().iter().map(|(k, v)| (metrics::render_key(k), *v)).collect()
        })
    }

    /// Structured snapshot of every registered gauge, as
    /// [`counter_values`](Obs::counter_values).
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.registry.gauges().iter().map(|(k, v)| (metrics::render_key(k), *v)).collect()
        })
    }

    /// Structured snapshot of every registered histogram, as
    /// [`counter_values`](Obs::counter_values) — the summary feeds
    /// telemetry snapshots, which ship quantile digests rather than
    /// raw buckets.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.registry.histograms().iter().map(|(k, v)| (metrics::render_key(k), *v)).collect()
        })
    }

    /// Prometheus-style text exposition of every registered metric.
    pub fn render_prometheus(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |i| export::render_prometheus(i))
    }

    /// JSON dump of metrics, cumulative event counts, and the retained
    /// timeline.
    pub fn render_json(&self) -> String {
        self.inner.as_ref().map_or_else(|| "{}".to_string(), |i| export::render_json(i))
    }

    /// Human-readable, causally ordered timeline.
    pub fn render_timeline(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |i| export::render_timeline(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.counter("c").inc();
        obs.gauge("g").set(9);
        obs.histogram("h").record(9);
        assert_eq!(obs.event(ObsEvent::Refresh), 0);
        assert_eq!(obs.counter("c").get(), 0);
        assert!(obs.timeline().is_empty());
        assert_eq!(obs.timeline_total(), 0);
        assert!(obs.event_kind_counts().is_empty());
        assert!(obs.render_prometheus().is_empty());
        assert_eq!(obs.render_json(), "{}");
        assert!(obs.render_timeline().is_empty());
        // ObsConfig::disabled() yields the same inert handle.
        assert!(!Obs::new(ObsConfig::disabled()).is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig::default());
        let c1 = obs.counter("kg_requests_total");
        let other = obs.clone();
        other.counter("kg_requests_total").add(4);
        c1.inc();
        assert_eq!(other.counter("kg_requests_total").get(), 5);
        obs.event(ObsEvent::Join { user: 7 });
        assert_eq!(other.timeline_total(), 1);
    }

    #[test]
    fn events_are_stamped_with_the_manual_clock() {
        let clock = ManualClock::new();
        let obs = Obs::new(ObsConfig::manual(clock.clone()));
        clock.set_us(40);
        let s1 = obs.event(ObsEvent::Join { user: 1 });
        clock.set_us(90);
        let s2 = obs.event(ObsEvent::Leave { user: 1 });
        assert_eq!((s1, s2), (1, 2));
        let tl = obs.timeline();
        assert_eq!(tl[0].at_us, 40);
        assert_eq!(tl[1].at_us, 90);
        assert_eq!(obs.now_us(), 90);
    }

    #[test]
    fn counter_and_gauge_snapshots_render_names() {
        let obs = Obs::new(ObsConfig::default());
        obs.counter("kg_requests_total").add(2);
        obs.counter_with("kg_requests_total", "kind", "join").add(5);
        obs.gauge("kg_group_size").set(-3);
        assert_eq!(
            obs.counter_values(),
            vec![
                ("kg_requests_total".to_string(), 2),
                ("kg_requests_total{kind=\"join\"}".to_string(), 5),
            ]
        );
        assert_eq!(obs.gauge_values(), vec![("kg_group_size".to_string(), -3)]);
        assert!(Obs::disabled().counter_values().is_empty());
        assert!(Obs::disabled().gauge_values().is_empty());
    }

    #[test]
    fn labeled_families_are_distinct_metrics() {
        let obs = Obs::new(ObsConfig::default());
        obs.counter_with("kg_requests_total", "kind", "join").add(3);
        obs.counter_with("kg_requests_total", "kind", "leave").add(1);
        assert_eq!(obs.counter_with("kg_requests_total", "kind", "join").get(), 3);
        assert_eq!(obs.counter_with("kg_requests_total", "kind", "leave").get(), 1);
        assert_eq!(obs.counter("kg_requests_total").get(), 0);
    }
}
