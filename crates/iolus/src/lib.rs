//! # kg-iolus — a simplified Iolus baseline
//!
//! Iolus (Mittra, SIGCOMM '97) is the system the paper compares against in
//! Section 6. It scales group key management with a hierarchy of *group
//! security agents* (GSAs) instead of a hierarchy of keys:
//!
//! * Clients attach to leaf agents; each agent shares a **subgroup key**
//!   with its children (clients, or lower-level agents). There is **no
//!   global group key**.
//! * A join/leave rekeys only the affected subgroup — O(subgroup size)
//!   work at one agent, nothing anywhere else.
//! * The price is paid on the **data path**: to send confidentially to the
//!   whole group, a client generates a *message key*, encrypts it under
//!   its subgroup key, and every agent along the distribution tree
//!   decrypts it with one subgroup key and re-encrypts it with each
//!   adjacent subgroup key. Every agent is a trusted entity.
//!
//! This implementation is faithful to that architecture with real keys and
//! real (DES-CBC) encryption, so the benchmark harness can measure both
//! sides of the paper's trade-off — "work when membership changes" (LKH)
//! versus "work when messages flow" (Iolus) — and the trust/reliability
//! comparison (#trusted entities) falls out of [`IolusSystem::agent_count`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kg_core::ids::UserId;
use kg_core::rekey::KeyCipher;
use kg_crypto::{KeySource, SymmetricKey};
use std::collections::BTreeMap;

/// Operation counts for an Iolus action (same unit as the paper: keys
/// encrypted/decrypted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IolusOps {
    /// Symmetric encryptions performed (by an agent or the sender).
    pub encryptions: u64,
    /// Symmetric decryptions performed by agents.
    pub agent_decryptions: u64,
    /// Agents that did work for this action.
    pub agents_touched: u64,
}

/// Identifies an agent in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(usize);

#[derive(Debug)]
struct Agent {
    parent: Option<AgentId>,
    children: Vec<AgentId>,
    /// Key shared by this agent and its *children* (clients for leaf
    /// agents, lower agents otherwise).
    subgroup_key: SymmetricKey,
    /// Clients attached here (leaf agents only) and their individual keys.
    clients: BTreeMap<UserId, SymmetricKey>,
}

/// A confidential message in flight: the payload under the message key,
/// plus the message key wrapped for one subgroup.
#[derive(Debug, Clone)]
pub struct IolusMessage {
    /// Sender.
    pub from: UserId,
    /// Payload encrypted under the message key.
    pub payload_ct: Vec<u8>,
    /// IV for the payload.
    pub payload_iv: Vec<u8>,
    /// Per-subgroup wrapped copies of the message key, keyed by the agent
    /// whose subgroup key wraps it.
    pub wrapped_keys: BTreeMap<AgentId, (Vec<u8>, Vec<u8>)>, // (iv, ct)
    /// Relay cost incurred delivering this message.
    pub ops: IolusOps,
}

/// The Iolus system: an agent hierarchy plus attached clients.
pub struct IolusSystem {
    cipher: KeyCipher,
    agents: Vec<Agent>,
    /// Maximum clients per leaf agent before the next agent is preferred.
    capacity: usize,
    user_home: BTreeMap<UserId, AgentId>,
}

impl IolusSystem {
    /// Build a hierarchy: `levels` levels of agents with `fanout` children
    /// per interior agent; clients attach to the leaf agents, `capacity`
    /// per leaf before spilling to the next.
    ///
    /// # Panics
    /// Panics if `levels == 0` or `fanout == 0` or `capacity == 0`.
    pub fn new(
        levels: usize,
        fanout: usize,
        capacity: usize,
        cipher: KeyCipher,
        source: &mut dyn KeySource,
    ) -> Self {
        assert!(levels > 0 && fanout > 0 && capacity > 0);
        let mut agents = Vec::new();
        agents.push(Agent {
            parent: None,
            children: Vec::new(),
            subgroup_key: source.generate_key(cipher.key_len()),
            clients: BTreeMap::new(),
        });
        let mut frontier = vec![AgentId(0)];
        for _ in 1..levels {
            let mut next = Vec::new();
            for &parent in &frontier {
                for _ in 0..fanout {
                    let id = AgentId(agents.len());
                    agents.push(Agent {
                        parent: Some(parent),
                        children: Vec::new(),
                        subgroup_key: source.generate_key(cipher.key_len()),
                        clients: BTreeMap::new(),
                    });
                    agents[parent.0].children.push(id);
                    next.push(id);
                }
            }
            frontier = next;
        }
        IolusSystem { cipher, agents, capacity, user_home: BTreeMap::new() }
    }

    /// Total number of agents — each is a *trusted entity* (the Section 6
    /// trust comparison; the key-graph approach needs exactly one).
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Number of attached clients.
    pub fn user_count(&self) -> usize {
        self.user_home.len()
    }

    /// Leaf agents (no agent children).
    fn leaf_agents(&self) -> Vec<AgentId> {
        (0..self.agents.len())
            .map(AgentId)
            .filter(|a| self.agents[a.0].children.is_empty())
            .collect()
    }

    /// The agent a user is attached to.
    pub fn home_agent(&self, user: UserId) -> Option<AgentId> {
        self.user_home.get(&user).copied()
    }

    /// Attach a new client to the least-loaded leaf agent (capacity
    /// permitting; spills over the soft cap when all leaves are full).
    ///
    /// Rekeys only that subgroup: the new subgroup key is sent to existing
    /// members under the old subgroup key (1 encryption) and to the joiner
    /// under its individual key (1 encryption). Nothing else changes —
    /// Iolus's headline advantage.
    pub fn join(&mut self, user: UserId, source: &mut dyn KeySource) -> Option<IolusOps> {
        if self.user_home.contains_key(&user) {
            return None;
        }
        let leaves = self.leaf_agents();
        let home = leaves
            .iter()
            .copied()
            .min_by_key(|a| {
                let load = self.agents[a.0].clients.len();
                // Prefer under-capacity leaves; among them the emptiest.
                (load >= self.capacity, load)
            })
            .expect("hierarchy has leaves");
        let individual = source.generate_key(self.cipher.key_len());
        let agent = &mut self.agents[home.0];
        let had_members = !agent.clients.is_empty();
        agent.clients.insert(user, individual);
        agent.subgroup_key = source.generate_key(self.cipher.key_len());
        self.user_home.insert(user, home);
        Some(IolusOps {
            encryptions: if had_members { 2 } else { 1 },
            agent_decryptions: 0,
            agents_touched: 1,
        })
    }

    /// Detach a client. The home subgroup's key is replaced and unicast to
    /// each remaining member under its individual key — O(subgroup size),
    /// like a star, but bounded by the subgroup capacity rather than n.
    pub fn leave(&mut self, user: UserId, source: &mut dyn KeySource) -> Option<IolusOps> {
        let home = self.user_home.remove(&user)?;
        let agent = &mut self.agents[home.0];
        agent.clients.remove(&user)?;
        agent.subgroup_key = source.generate_key(self.cipher.key_len());
        Some(IolusOps {
            encryptions: agent.clients.len() as u64,
            agent_decryptions: 0,
            agents_touched: 1,
        })
    }

    /// Send `plaintext` confidentially to the entire group, relaying the
    /// message key through the agent hierarchy. Returns the delivered
    /// message with relay costs — this is where Iolus pays for the
    /// "1 affects n" problem.
    pub fn send_to_group(
        &self,
        from: UserId,
        plaintext: &[u8],
        source: &mut dyn KeySource,
    ) -> Option<IolusMessage> {
        let home = self.user_home.get(&from)?;
        let mk = source.generate_key(self.cipher.key_len());
        let payload_iv = source.generate(self.cipher.block_len());
        let payload_ct = self.cipher.encrypt(&mk, &payload_iv, plaintext);
        let mut ops = IolusOps { encryptions: 1, ..IolusOps::default() }; // sender wraps MK once
        let mut wrapped: BTreeMap<AgentId, (Vec<u8>, Vec<u8>)> = BTreeMap::new();

        // Sender wraps MK for its home subgroup.
        let iv = source.generate(self.cipher.block_len());
        let ct = self.cipher.encrypt(&self.agents[home.0].subgroup_key, &iv, mk.material());
        wrapped.insert(*home, (iv, ct));

        // BFS over the agent graph: whenever an agent's subgroup has the
        // wrapped MK, that agent decrypts it and re-wraps it for each
        // adjacent subgroup that lacks it.
        let mut queue = std::collections::VecDeque::from([*home]);
        while let Some(a) = queue.pop_front() {
            let (iv, ct) = wrapped.get(&a).expect("reached with key").clone();
            let mk_again = self
                .cipher
                .decrypt(&self.agents[a.0].subgroup_key, &iv, &ct)
                .expect("agent holds its subgroup key");
            ops.agent_decryptions += 1;
            ops.agents_touched += 1;
            let mut neighbours: Vec<AgentId> = self.agents[a.0].children.clone();
            if let Some(p) = self.agents[a.0].parent {
                // The parent's subgroup key is shared between the parent
                // agent and its children (including `a`), so `a` can wrap
                // into it directly.
                neighbours.push(p);
            }
            for nb in neighbours {
                if wrapped.contains_key(&nb) {
                    continue;
                }
                let iv = source.generate(self.cipher.block_len());
                let ct = self.cipher.encrypt(&self.agents[nb.0].subgroup_key, &iv, &mk_again);
                ops.encryptions += 1;
                wrapped.insert(nb, (iv, ct));
                queue.push_back(nb);
            }
        }
        Some(IolusMessage { from, payload_ct, payload_iv, wrapped_keys: wrapped, ops })
    }

    /// Client-side receive: a member recovers the plaintext using its home
    /// subgroup's wrapped message key. Returns `None` for non-members or
    /// when decryption fails (e.g. a departed member with a stale key).
    pub fn receive(&self, user: UserId, msg: &IolusMessage) -> Option<Vec<u8>> {
        let home = self.user_home.get(&user)?;
        let (iv, ct) = msg.wrapped_keys.get(home)?;
        let mk = self.cipher.decrypt(&self.agents[home.0].subgroup_key, iv, ct).ok()?;
        self.cipher.decrypt(&SymmetricKey::new(mk), &msg.payload_iv, &msg.payload_ct).ok()
    }

    /// Simulate a departed member attempting to read `msg` with the
    /// subgroup key it held before leaving (secrecy audits in tests).
    pub fn receive_with_stale_key(
        &self,
        old_home: AgentId,
        stale_subgroup_key: &SymmetricKey,
        msg: &IolusMessage,
    ) -> Option<Vec<u8>> {
        let (iv, ct) = msg.wrapped_keys.get(&old_home)?;
        let mk = self.cipher.decrypt(stale_subgroup_key, iv, ct).ok()?;
        self.cipher.decrypt(&SymmetricKey::new(mk), &msg.payload_iv, &msg.payload_ct).ok()
    }

    /// The current subgroup key of an agent (for secrecy audits).
    pub fn subgroup_key(&self, agent: AgentId) -> SymmetricKey {
        self.agents[agent.0].subgroup_key.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::drbg::HmacDrbg;

    fn system(levels: usize, fanout: usize, cap: usize) -> (IolusSystem, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(77);
        let sys = IolusSystem::new(levels, fanout, cap, KeyCipher::des_cbc(), &mut src);
        (sys, src)
    }

    #[test]
    fn hierarchy_shape() {
        let (sys, _) = system(3, 3, 8);
        // 1 + 3 + 9 agents.
        assert_eq!(sys.agent_count(), 13);
        assert_eq!(sys.leaf_agents().len(), 9);
    }

    #[test]
    fn join_cost_is_constant() {
        let (mut sys, mut src) = system(2, 4, 16);
        let first = sys.join(UserId(0), &mut src).unwrap();
        assert_eq!(first.encryptions, 1); // no prior members in that subgroup
                                          // Fill so some subgroup gets a second member.
        for i in 1..=4 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let later = sys.join(UserId(99), &mut src).unwrap();
        assert_eq!(later.encryptions, 2);
        assert_eq!(later.agents_touched, 1);
    }

    #[test]
    fn leave_cost_bounded_by_subgroup() {
        let (mut sys, mut src) = system(2, 2, 32);
        for i in 0..20 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let ops = sys.leave(UserId(3), &mut src).unwrap();
        // Subgroup has ~10 members; cost is within the subgroup, not 19.
        assert!(ops.encryptions <= 10, "got {}", ops.encryptions);
        assert_eq!(ops.agents_touched, 1);
    }

    #[test]
    fn message_reaches_every_member() {
        let (mut sys, mut src) = system(3, 2, 4);
        for i in 0..16 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let msg = sys.send_to_group(UserId(5), b"state update", &mut src).unwrap();
        for i in 0..16 {
            assert_eq!(
                sys.receive(UserId(i), &msg).as_deref(),
                Some(b"state update".as_slice()),
                "user {i}"
            );
        }
        // Every agent relayed: decryptions = #agents (1+2+4 = 7).
        assert_eq!(msg.ops.agent_decryptions, 7);
    }

    #[test]
    fn relay_cost_scales_with_agents_not_members() {
        let (mut sys, mut src) = system(2, 2, 1000);
        for i in 0..200 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let msg = sys.send_to_group(UserId(0), b"x", &mut src).unwrap();
        // 3 agents total; ~1 wrap per subgroup edge regardless of the 200
        // members.
        assert!(msg.ops.encryptions <= 4, "got {}", msg.ops.encryptions);
    }

    #[test]
    fn departed_member_cannot_read_new_messages() {
        let (mut sys, mut src) = system(2, 2, 8);
        for i in 0..8 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let home = sys.home_agent(UserId(2)).unwrap();
        let stale_key = sys.subgroup_key(home);
        sys.leave(UserId(2), &mut src).unwrap();
        let msg = sys.send_to_group(UserId(0), b"secret", &mut src).unwrap();
        // Stale subgroup key no longer opens the wrapped message key.
        let leak = sys.receive_with_stale_key(home, &stale_key, &msg);
        assert_ne!(leak.as_deref(), Some(b"secret".as_slice()));
        assert!(sys.receive(UserId(2), &msg).is_none(), "non-member gets nothing");
    }

    #[test]
    fn nonmember_cannot_send() {
        let (sys, mut src) = system(2, 2, 8);
        assert!(sys.send_to_group(UserId(1), b"x", &mut src).is_none());
    }

    #[test]
    fn duplicate_join_and_phantom_leave() {
        let (mut sys, mut src) = system(2, 2, 8);
        sys.join(UserId(1), &mut src).unwrap();
        assert!(sys.join(UserId(1), &mut src).is_none());
        assert!(sys.leave(UserId(9), &mut src).is_none());
    }

    #[test]
    fn clients_balance_across_leaves() {
        let (mut sys, mut src) = system(2, 4, 100);
        for i in 0..40 {
            sys.join(UserId(i), &mut src).unwrap();
        }
        let leaves = sys.leaf_agents();
        let loads: Vec<usize> = leaves.iter().map(|a| sys.agents[a.0].clients.len()).collect();
        let min = *loads.iter().min().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced: {loads:?}");
    }

    #[test]
    fn trust_surface_is_the_agent_count() {
        let (sys, _) = system(4, 2, 8);
        // 1 + 2 + 4 + 8 trusted entities, versus 1 for the key-graph server.
        assert_eq!(sys.agent_count(), 15);
    }
}
