//! Star key graphs — the conventional baseline (§3.1, §3.2).
//!
//! In a star, every user holds exactly two keys: its individual key and the
//! group key. Joins are cheap (Figure 2: one encryption under the old group
//! key, one under the joiner's key), but a **leave costs n−1 encryptions**
//! (Figure 4: the new group key must be unicast to every remaining member
//! under its individual key). This linear leave cost is the scalability
//! problem the key tree solves; the star is implemented both as the
//! baseline for the benchmarks and because it *is* a degree-∞ key tree —
//! the figures' formulas degenerate to it.

use crate::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use crate::rekey::{KeyBundle, KeyCipher, OpCounts, Recipients, RekeyMessage, RekeyOutput};
use crate::tree::TreeError;
use kg_crypto::{KeySource, SymmetricKey};
use std::collections::BTreeMap;

/// A star key graph with its rekeying protocols.
#[derive(Debug, Clone)]
pub struct StarGroup {
    group_label: KeyLabel,
    group_version: KeyVersion,
    group_key: SymmetricKey,
    members: BTreeMap<UserId, (KeyLabel, SymmetricKey)>,
    next_label: u64,
    key_len: usize,
    cipher: KeyCipher,
}

impl StarGroup {
    /// Create an empty star group.
    pub fn new(key_len: usize, cipher: KeyCipher, source: &mut dyn KeySource) -> Self {
        StarGroup {
            group_label: KeyLabel(0),
            group_version: KeyVersion::default(),
            group_key: source.generate_key(key_len),
            members: BTreeMap::new(),
            next_label: 1,
            key_len,
            cipher,
        }
    }

    /// Number of members.
    pub fn user_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `u` is a member.
    pub fn is_member(&self, u: UserId) -> bool {
        self.members.contains_key(&u)
    }

    /// Current group key.
    pub fn group_key(&self) -> (KeyRef, SymmetricKey) {
        (KeyRef::new(self.group_label, self.group_version), self.group_key.clone())
    }

    /// A member's individual key (test/simulation support).
    pub fn individual_key(&self, u: UserId) -> Option<(KeyRef, SymmetricKey)> {
        self.members
            .get(&u)
            .map(|(label, key)| (KeyRef::new(*label, KeyVersion::default()), key.clone()))
    }

    /// Figure 2: admit `u`, rotate the group key, return the two rekey
    /// messages (multicast under the old group key; unicast to the joiner).
    pub fn join(
        &mut self,
        u: UserId,
        individual_key: SymmetricKey,
        source: &mut dyn KeySource,
        ivs: &mut dyn KeySource,
    ) -> Result<RekeyOutput, TreeError> {
        if self.members.contains_key(&u) {
            return Err(TreeError::AlreadyMember(u));
        }
        let leaf_label = KeyLabel(self.next_label);
        self.next_label += 1;

        let old_ref = KeyRef::new(self.group_label, self.group_version);
        let old_key = self.group_key.clone();
        self.group_version = self.group_version.next();
        self.group_key = source.generate_key(self.key_len);
        let new_ref = KeyRef::new(self.group_label, self.group_version);

        let mut ops = OpCounts { keys_generated: 1, ..OpCounts::default() };
        let mut messages = Vec::new();
        // Multicast to the existing group (skip when the group was empty).
        if !self.members.is_empty() {
            let iv = ivs.generate(self.cipher.block_len());
            let ct = self.cipher.encrypt(&old_key, &iv, self.group_key.material());
            ops.key_encryptions += 1;
            messages.push(RekeyMessage {
                recipients: Recipients::Group,
                bundles: vec![KeyBundle {
                    targets: vec![new_ref],
                    encrypted_with: old_ref,
                    iv,
                    ciphertext: ct,
                }],
            });
        }
        // Unicast to the joiner.
        let iv = ivs.generate(self.cipher.block_len());
        let ct = self.cipher.encrypt(&individual_key, &iv, self.group_key.material());
        ops.key_encryptions += 1;
        messages.push(RekeyMessage {
            recipients: Recipients::User(u),
            bundles: vec![KeyBundle {
                targets: vec![new_ref],
                encrypted_with: KeyRef::new(leaf_label, KeyVersion::default()),
                iv,
                ciphertext: ct,
            }],
        });
        self.members.insert(u, (leaf_label, individual_key));
        Ok(RekeyOutput { messages, ops })
    }

    /// Figure 4: remove `u`, rotate the group key, unicast it to every
    /// remaining member under its individual key — the Θ(n) step.
    pub fn leave(
        &mut self,
        u: UserId,
        source: &mut dyn KeySource,
        ivs: &mut dyn KeySource,
    ) -> Result<RekeyOutput, TreeError> {
        if self.members.remove(&u).is_none() {
            return Err(TreeError::NotAMember(u));
        }
        self.group_version = self.group_version.next();
        self.group_key = source.generate_key(self.key_len);
        let new_ref = KeyRef::new(self.group_label, self.group_version);

        let mut ops = OpCounts { keys_generated: 1, ..OpCounts::default() };
        let mut messages = Vec::with_capacity(self.members.len());
        for (&v, (leaf_label, ik)) in &self.members {
            let iv = ivs.generate(self.cipher.block_len());
            let ct = self.cipher.encrypt(ik, &iv, self.group_key.material());
            ops.key_encryptions += 1;
            messages.push(RekeyMessage {
                recipients: Recipients::User(v),
                bundles: vec![KeyBundle {
                    targets: vec![new_ref],
                    encrypted_with: KeyRef::new(*leaf_label, KeyVersion::default()),
                    iv,
                    ciphertext: ct,
                }],
            });
        }
        Ok(RekeyOutput { messages, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::drbg::HmacDrbg;

    fn setup(n: u64) -> (StarGroup, HmacDrbg, Vec<SymmetricKey>) {
        let mut src = HmacDrbg::from_seed(21);
        let mut ivs = HmacDrbg::from_seed(22);
        let mut star = StarGroup::new(8, KeyCipher::des_cbc(), &mut src);
        let mut iks = Vec::new();
        for i in 0..n {
            let ik = src.generate_key(8);
            iks.push(ik.clone());
            star.join(UserId(i), ik, &mut src, &mut ivs).unwrap();
        }
        (star, src, iks)
    }

    #[test]
    fn join_costs_table2() {
        let (mut star, mut src, _) = setup(5);
        let mut ivs = HmacDrbg::from_seed(23);
        let ik = src.generate_key(8);
        let out = star.join(UserId(100), ik, &mut src, &mut ivs).unwrap();
        // Server join cost for a star: 2 encryptions, 2 messages.
        assert_eq!(out.ops.key_encryptions, 2);
        assert_eq!(out.messages.len(), 2);
    }

    #[test]
    fn leave_costs_table2() {
        let n = 8;
        let (mut star, mut src, _) = setup(n);
        let mut ivs = HmacDrbg::from_seed(24);
        let out = star.leave(UserId(0), &mut src, &mut ivs).unwrap();
        // Server leave cost: n−1 encryptions, n−1 unicasts.
        assert_eq!(out.ops.key_encryptions, n - 1);
        assert_eq!(out.messages.len(), (n - 1) as usize);
    }

    #[test]
    fn members_can_decrypt_new_group_key_after_join() {
        let (mut star, mut src, iks) = setup(3);
        let mut ivs = HmacDrbg::from_seed(25);
        let (old_ref, old_gk) = star.group_key();
        let ik = src.generate_key(8);
        let out = star.join(UserId(100), ik.clone(), &mut src, &mut ivs).unwrap();
        let (_, new_gk) = star.group_key();
        // Existing members decrypt the multicast with the old group key.
        let mc = out.messages.iter().find(|m| m.recipients == Recipients::Group).unwrap();
        assert_eq!(mc.bundles[0].encrypted_with, old_ref);
        let plain = KeyCipher::des_cbc()
            .decrypt(&old_gk, &mc.bundles[0].iv, &mc.bundles[0].ciphertext)
            .unwrap();
        assert_eq!(plain, new_gk.material());
        // The joiner decrypts its unicast with its individual key.
        let uc =
            out.messages.iter().find(|m| m.recipients == Recipients::User(UserId(100))).unwrap();
        let plain = KeyCipher::des_cbc()
            .decrypt(&ik, &uc.bundles[0].iv, &uc.bundles[0].ciphertext)
            .unwrap();
        assert_eq!(plain, new_gk.material());
        let _ = iks;
    }

    #[test]
    fn leaver_cannot_decrypt_new_group_key() {
        let (mut star, mut src, iks) = setup(4);
        let mut ivs = HmacDrbg::from_seed(26);
        let (_, old_gk) = star.group_key();
        let out = star.leave(UserId(0), &mut src, &mut ivs).unwrap();
        let (_, new_gk) = star.group_key();
        // The leaver holds old_gk and iks[0]; neither opens any bundle.
        for msg in &out.messages {
            let b = &msg.bundles[0];
            for k in [&old_gk, &iks[0]] {
                if let Ok(plain) = KeyCipher::des_cbc().decrypt(k, &b.iv, &b.ciphertext) {
                    assert_ne!(plain, new_gk.material())
                }
            }
        }
        // Remaining members each have exactly one message they can open.
        for i in 1..4u64 {
            let msg =
                out.messages.iter().find(|m| m.recipients == Recipients::User(UserId(i))).unwrap();
            let plain = KeyCipher::des_cbc()
                .decrypt(&iks[i as usize], &msg.bundles[0].iv, &msg.bundles[0].ciphertext)
                .unwrap();
            assert_eq!(plain, new_gk.material());
        }
    }

    #[test]
    fn first_join_has_no_multicast() {
        let mut src = HmacDrbg::from_seed(27);
        let mut ivs = HmacDrbg::from_seed(28);
        let mut star = StarGroup::new(8, KeyCipher::des_cbc(), &mut src);
        let ik = src.generate_key(8);
        let out = star.join(UserId(1), ik, &mut src, &mut ivs).unwrap();
        assert_eq!(out.messages.len(), 1);
        assert!(matches!(out.messages[0].recipients, Recipients::User(_)));
    }

    #[test]
    fn membership_errors() {
        let (mut star, mut src, _) = setup(2);
        let mut ivs = HmacDrbg::from_seed(29);
        let ik = src.generate_key(8);
        assert!(star.join(UserId(0), ik, &mut src, &mut ivs).is_err());
        assert!(star.leave(UserId(42), &mut src, &mut ivs).is_err());
        assert_eq!(star.user_count(), 2);
        assert!(star.is_member(UserId(1)));
        assert!(star.individual_key(UserId(1)).is_some());
        assert!(star.individual_key(UserId(42)).is_none());
    }

    #[test]
    fn group_key_rotates_every_operation() {
        let (mut star, mut src, _) = setup(3);
        let mut ivs = HmacDrbg::from_seed(30);
        let (r0, k0) = star.group_key();
        let ik = src.generate_key(8);
        star.join(UserId(50), ik, &mut src, &mut ivs).unwrap();
        let (r1, k1) = star.group_key();
        assert!(r1.version > r0.version);
        assert_ne!(k0, k1);
        star.leave(UserId(50), &mut src, &mut ivs).unwrap();
        let (r2, k2) = star.group_key();
        assert!(r2.version > r1.version);
        assert_ne!(k1, k2);
    }
}
