//! General key graphs — the Section 2 formalism.
//!
//! A *key graph* is a DAG with u-nodes (users, no incoming edges) and
//! k-nodes (keys). It specifies a secure group `(U, K, R)` where `(u, k) ∈ R`
//! iff the graph has a directed path from u's node to k's node. This module
//! implements the general structure, the `keyset`/`userset` functions, and
//! the **key-covering problem**: given `S ⊆ U`, find a minimum set `K'` of
//! keys with `userset(K') = S`. The general problem is NP-hard (the paper
//! cites the technical report for the reduction), so we provide an exact
//! exponential solver for small instances and a greedy set-cover heuristic
//! for the rest. The tree-structured graphs in [`crate::tree`] solve it
//! exactly in linear time, which is the paper's point.
//!
//! Key graphs (rather than plain trees) matter for the paper's closing
//! application (Section 7 / the Keystone service): multiple secure groups
//! over one user population, with users in several groups — the per-group
//! key *trees* merge into a single key *graph*. See
//! [`KeyGraph::merge`].

use crate::ids::{KeyLabel, UserId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed acyclic key graph over users and keys.
///
/// Edges run *upward*: from a u-node to the k-nodes it directly holds, and
/// from a k-node to k-nodes "above" it. A user holds every key reachable
/// from its node.
#[derive(Debug, Clone, Default)]
pub struct KeyGraph {
    /// Direct edges from each user to k-nodes.
    user_edges: BTreeMap<UserId, BTreeSet<KeyLabel>>,
    /// Direct edges between k-nodes (from child to parent).
    key_edges: BTreeMap<KeyLabel, BTreeSet<KeyLabel>>,
    /// All k-nodes (including ones with no outgoing edges).
    keys: BTreeSet<KeyLabel>,
}

impl KeyGraph {
    /// An empty key graph.
    pub fn new() -> Self {
        KeyGraph::default()
    }

    /// Add a user node (no keys yet). Idempotent.
    pub fn add_user(&mut self, u: UserId) {
        self.user_edges.entry(u).or_default();
    }

    /// Add a k-node. Idempotent.
    pub fn add_key(&mut self, k: KeyLabel) {
        self.keys.insert(k);
        self.key_edges.entry(k).or_default();
    }

    /// Add an edge from user `u` to key `k` (u directly holds k).
    pub fn add_user_edge(&mut self, u: UserId, k: KeyLabel) {
        self.add_user(u);
        self.add_key(k);
        self.user_edges.get_mut(&u).expect("just added").insert(k);
    }

    /// Add an edge from key `child` to key `parent`.
    ///
    /// # Panics
    /// Panics if the edge would create a cycle (key graphs are DAGs by
    /// definition; a cycle is a construction bug, not a runtime condition).
    pub fn add_key_edge(&mut self, child: KeyLabel, parent: KeyLabel) {
        self.add_key(child);
        self.add_key(parent);
        assert!(
            !self.reachable_keys_from(parent).contains(&child),
            "edge {child:?} -> {parent:?} would create a cycle"
        );
        self.key_edges.get_mut(&child).expect("just added").insert(parent);
    }

    /// Remove a user and its outgoing edges.
    pub fn remove_user(&mut self, u: UserId) {
        self.user_edges.remove(&u);
    }

    /// Remove a k-node and all edges touching it.
    pub fn remove_key(&mut self, k: KeyLabel) {
        self.keys.remove(&k);
        self.key_edges.remove(&k);
        for parents in self.key_edges.values_mut() {
            parents.remove(&k);
        }
        for keys in self.user_edges.values_mut() {
            keys.remove(&k);
        }
    }

    /// All users in the graph.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.user_edges.keys().copied()
    }

    /// All keys in the graph.
    pub fn keys(&self) -> impl Iterator<Item = KeyLabel> + '_ {
        self.keys.iter().copied()
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.user_edges.len()
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Roots: k-nodes with no outgoing edges.
    pub fn roots(&self) -> Vec<KeyLabel> {
        self.keys
            .iter()
            .copied()
            .filter(|k| self.key_edges.get(k).is_none_or(|p| p.is_empty()))
            .collect()
    }

    fn reachable_keys_from(&self, start: KeyLabel) -> BTreeSet<KeyLabel> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(k) = queue.pop_front() {
            if !seen.insert(k) {
                continue;
            }
            if let Some(parents) = self.key_edges.get(&k) {
                queue.extend(parents.iter().copied());
            }
        }
        seen
    }

    /// `keyset(u)`: every key reachable from user `u`.
    pub fn keyset(&self, u: UserId) -> BTreeSet<KeyLabel> {
        let mut out = BTreeSet::new();
        if let Some(direct) = self.user_edges.get(&u) {
            for &k in direct {
                out.extend(self.reachable_keys_from(k));
            }
        }
        out
    }

    /// `keyset(U')` for a set of users: keys held by at least one of them.
    pub fn keyset_of(&self, users: &BTreeSet<UserId>) -> BTreeSet<KeyLabel> {
        let mut out = BTreeSet::new();
        for &u in users {
            out.extend(self.keyset(u));
        }
        out
    }

    /// `userset(k)`: every user that holds key `k`.
    pub fn userset(&self, k: KeyLabel) -> BTreeSet<UserId> {
        self.user_edges
            .iter()
            .filter(|(_, direct)| {
                direct.iter().any(|&d| d == k || self.reachable_keys_from(d).contains(&k))
            })
            .map(|(&u, _)| u)
            .collect()
    }

    /// `userset(K')` for a set of keys: users holding at least one of them.
    pub fn userset_of(&self, keys: &BTreeSet<KeyLabel>) -> BTreeSet<UserId> {
        let mut out = BTreeSet::new();
        for &k in keys {
            out.extend(self.userset(k));
        }
        out
    }

    /// The user–key relation R as explicit pairs (small graphs/tests only).
    pub fn relation(&self) -> BTreeSet<(UserId, KeyLabel)> {
        let mut r = BTreeSet::new();
        for u in self.users().collect::<Vec<_>>() {
            for k in self.keyset(u) {
                r.insert((u, k));
            }
        }
        r
    }

    /// Merge another key graph into this one (union of nodes and edges).
    ///
    /// This is how multiple per-group key trees combine into the single key
    /// graph of a multi-group service (Section 7): a user in several groups
    /// appears once, with edges into each group's tree.
    pub fn merge(&mut self, other: &KeyGraph) {
        for (&u, keys) in &other.user_edges {
            for &k in keys {
                self.add_user_edge(u, k);
            }
            self.add_user(u);
        }
        for (&child, parents) in &other.key_edges {
            self.add_key(child);
            for &p in parents {
                self.add_key_edge(child, p);
            }
        }
        for &k in &other.keys {
            self.add_key(k);
        }
    }

    /// A copy of this graph with every key label shifted by `offset`.
    ///
    /// Independently built group key trees number their labels from zero;
    /// shifting avoids collisions when merging them into one multi-group
    /// key graph (Section 7).
    pub fn relabeled(&self, offset: u64) -> KeyGraph {
        let mut out = KeyGraph::new();
        for (&u, keys) in &self.user_edges {
            out.add_user(u);
            for &k in keys {
                out.add_user_edge(u, KeyLabel(k.0 + offset));
            }
        }
        for (&child, parents) in &self.key_edges {
            out.add_key(KeyLabel(child.0 + offset));
            for &p in parents {
                out.add_key_edge(KeyLabel(child.0 + offset), KeyLabel(p.0 + offset));
            }
        }
        for &k in &self.keys {
            out.add_key(KeyLabel(k.0 + offset));
        }
        out
    }

    /// Exact minimum key cover: the smallest `K' ⊆ K` with
    /// `userset(K') = target`, found by exhaustive subset search over the
    /// *useful* candidate keys. Exponential — intended for small instances
    /// and for validating the greedy heuristic in tests.
    ///
    /// Returns `None` when no cover exists (some target user holds no key,
    /// or every key covering a target user also covers a non-target user).
    pub fn key_cover_exact(&self, target: &BTreeSet<UserId>) -> Option<BTreeSet<KeyLabel>> {
        if target.is_empty() {
            return Some(BTreeSet::new());
        }
        // Candidate keys: those whose userset is a nonempty subset of target.
        let candidates: Vec<(KeyLabel, BTreeSet<UserId>)> = self
            .keys()
            .map(|k| (k, self.userset(k)))
            .filter(|(_, us)| !us.is_empty() && us.is_subset(target))
            .collect();
        let n = candidates.len();
        if n > 20 {
            // Refuse pathological instances; callers use the greedy path.
            return self.key_cover_greedy(target);
        }
        let mut best: Option<BTreeSet<KeyLabel>> = None;
        for mask in 0u32..(1 << n) {
            if let Some(ref b) = best {
                if (mask.count_ones() as usize) >= b.len() {
                    continue;
                }
            }
            let mut covered: BTreeSet<UserId> = BTreeSet::new();
            for (i, (_, us)) in candidates.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    covered.extend(us.iter().copied());
                }
            }
            if covered == *target {
                let set = candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, (k, _))| *k)
                    .collect();
                best = Some(set);
            }
        }
        best
    }

    /// Greedy key cover (classic ln(n)-approximation to set cover):
    /// repeatedly take the candidate key covering the most uncovered target
    /// users. Returns `None` when no cover exists.
    pub fn key_cover_greedy(&self, target: &BTreeSet<UserId>) -> Option<BTreeSet<KeyLabel>> {
        let mut remaining = target.clone();
        let candidates: Vec<(KeyLabel, BTreeSet<UserId>)> = self
            .keys()
            .map(|k| (k, self.userset(k)))
            .filter(|(_, us)| !us.is_empty() && us.is_subset(target))
            .collect();
        let mut cover = BTreeSet::new();
        while !remaining.is_empty() {
            let best =
                candidates.iter().max_by_key(|(_, us)| us.intersection(&remaining).count())?;
            let gain = best.1.intersection(&remaining).count();
            if gain == 0 {
                return None;
            }
            cover.insert(best.0);
            remaining = remaining.difference(&best.1).copied().collect();
        }
        Some(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u64) -> UserId {
        UserId(i)
    }
    fn k(i: u64) -> KeyLabel {
        KeyLabel(i)
    }

    /// Build the key graph of the paper's Figure 1:
    /// users u1..u4; keys k1..k4 (individual), k234, k1234.
    /// u1 -> k1, k1234; u2 -> k2, k234; u3 -> k3, k234; u4 -> k4, k234;
    /// k234 -> k1234.
    fn figure1() -> KeyGraph {
        let mut g = KeyGraph::new();
        for i in 1..=4 {
            g.add_user_edge(u(i), k(i));
        }
        g.add_user_edge(u(1), k(1234));
        for i in 2..=4 {
            g.add_user_edge(u(i), k(234));
        }
        g.add_key_edge(k(234), k(1234));
        g
    }

    #[test]
    fn figure1_keysets_match_paper() {
        let g = figure1();
        assert_eq!(g.keyset(u(1)), [k(1), k(1234)].into_iter().collect());
        assert_eq!(g.keyset(u(4)), [k(4), k(234), k(1234)].into_iter().collect());
    }

    #[test]
    fn figure1_usersets_match_paper() {
        let g = figure1();
        assert_eq!(g.userset(k(234)), [u(2), u(3), u(4)].into_iter().collect());
        assert_eq!(g.userset(k(1234)), [u(1), u(2), u(3), u(4)].into_iter().collect());
        assert_eq!(g.userset(k(1)), [u(1)].into_iter().collect());
    }

    #[test]
    fn figure1_relation_size() {
        let g = figure1();
        // R = {(u1,k1),(u1,k1234)} ∪ {(ui,ki),(ui,k234),(ui,k1234) : i=2..4}
        assert_eq!(g.relation().len(), 2 + 3 * 3);
    }

    #[test]
    fn roots_detected() {
        // In Figure 1 the individual k-nodes k1..k4 hang directly off the
        // u-nodes with no outgoing edges, so by the paper's definition they
        // are roots too ("a key graph can have multiple roots"); k1234 is
        // the group-key root.
        let g = figure1();
        let roots = g.roots();
        assert!(roots.contains(&k(1234)));
        assert_eq!(roots.len(), 5);
        // In a *tree* key graph, individual keys chain upward, so the only
        // root is the group key (cf. KeyTree::to_key_graph tests).
        let mut tree = KeyGraph::new();
        tree.add_user_edge(u(1), k(1));
        tree.add_user_edge(u(2), k(2));
        tree.add_key_edge(k(1), k(100));
        tree.add_key_edge(k(2), k(100));
        assert_eq!(tree.roots(), vec![k(100)]);
    }

    #[test]
    fn multi_root_graph() {
        let mut g = KeyGraph::new();
        g.add_user_edge(u(1), k(10));
        g.add_user_edge(u(1), k(20));
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_rejected() {
        let mut g = KeyGraph::new();
        g.add_key_edge(k(1), k(2));
        g.add_key_edge(k(2), k(3));
        g.add_key_edge(k(3), k(1));
    }

    #[test]
    fn key_cover_after_leave_matches_paper_intro() {
        // The introduction's example: 9 users in 3 subgroups of 3, u1
        // leaves; the new subgroup {u2,u3} must be covered by individual
        // keys; the whole remaining group by {k23', s2, s3} — here we check
        // covering {u2..u9} uses subgroup keys, not 8 individual keys.
        let mut g = KeyGraph::new();
        for i in 1..=9 {
            g.add_user_edge(u(i), k(i));
        }
        // subgroup keys 101, 102, 103; group key 100.
        for i in 1..=3 {
            g.add_user_edge(u(i), k(101));
        }
        for i in 4..=6 {
            g.add_user_edge(u(i), k(102));
        }
        for i in 7..=9 {
            g.add_user_edge(u(i), k(103));
        }
        for sub in [101, 102, 103] {
            g.add_key_edge(k(sub), k(100));
        }
        // Cover U - {u1}:
        let target: BTreeSet<UserId> = (2..=9).map(u).collect();
        let cover = g.key_cover_exact(&target).unwrap();
        // Optimal: {k2, k3, k102, k103} — 4 keys.
        assert_eq!(cover.len(), 4);
        assert_eq!(g.userset_of(&cover), target);
        let greedy = g.key_cover_greedy(&target).unwrap();
        assert_eq!(g.userset_of(&greedy), target);
        assert!(greedy.len() >= cover.len());
    }

    #[test]
    fn key_cover_unsatisfiable() {
        let g = figure1();
        // {u2} alone: only k2 covers exactly u2 — satisfiable.
        let t: BTreeSet<UserId> = [u(2)].into_iter().collect();
        assert_eq!(g.key_cover_exact(&t).unwrap(), [k(2)].into_iter().collect());
        // A user with no keys is uncoverable.
        let mut g2 = g.clone();
        g2.add_user(u(99));
        let t: BTreeSet<UserId> = [u(2), u(99)].into_iter().collect();
        assert!(g2.key_cover_exact(&t).is_none());
        assert!(g2.key_cover_greedy(&t).is_none());
    }

    #[test]
    fn empty_cover_for_empty_target() {
        let g = figure1();
        assert_eq!(g.key_cover_exact(&BTreeSet::new()).unwrap(), BTreeSet::new());
    }

    #[test]
    fn merge_unions_two_groups() {
        // Two groups sharing user u2: merging their trees produces one key
        // graph where u2 reaches both roots.
        let mut g1 = KeyGraph::new();
        g1.add_user_edge(u(1), k(1));
        g1.add_user_edge(u(2), k(2));
        g1.add_key_edge(k(1), k(100));
        g1.add_key_edge(k(2), k(100));

        let mut g2 = KeyGraph::new();
        g2.add_user_edge(u(2), k(2));
        g2.add_user_edge(u(3), k(3));
        g2.add_key_edge(k(2), k(200));
        g2.add_key_edge(k(3), k(200));

        let mut merged = g1.clone();
        merged.merge(&g2);
        assert_eq!(merged.user_count(), 3);
        let ks = merged.keyset(u(2));
        assert!(ks.contains(&k(100)) && ks.contains(&k(200)));
        // u1 must not gain access to group 2's key.
        assert!(!merged.keyset(u(1)).contains(&k(200)));
        assert_eq!(merged.roots().len(), 2);
    }

    #[test]
    fn remove_key_cleans_edges() {
        let mut g = figure1();
        g.remove_key(k(234));
        assert!(!g.keyset(u(2)).contains(&k(234)));
        // u2 loses the path to the group key that ran through k234.
        assert!(!g.keyset(u(2)).contains(&k(1234)));
        assert!(g.keyset(u(1)).contains(&k(1234)));
    }

    #[test]
    fn remove_user_keeps_keys() {
        let mut g = figure1();
        g.remove_user(u(3));
        assert_eq!(g.user_count(), 3);
        assert!(g.keys().any(|key| key == k(3)));
        assert_eq!(g.userset(k(234)), [u(2), u(4)].into_iter().collect());
    }

    #[test]
    fn keyset_of_multiple_users() {
        let g = figure1();
        let users: BTreeSet<UserId> = [u(1), u(2)].into_iter().collect();
        let ks = g.keyset_of(&users);
        assert!(ks.contains(&k(1)) && ks.contains(&k(2)) && ks.contains(&k(234)));
    }

    proptest::proptest! {
        /// keyset/userset duality: u ∈ userset(k) ⇔ k ∈ keyset(u).
        #[test]
        fn keyset_userset_duality(edges in proptest::collection::vec((0u64..8, 0u64..8), 1..30)) {
            let mut g = KeyGraph::new();
            for &(uu, kk) in &edges {
                g.add_user_edge(u(uu), k(kk));
            }
            // Random upward key edges that cannot cycle: only child < parent.
            for &(a, b) in &edges {
                if a < b {
                    g.add_key_edge(k(a), k(b));
                }
            }
            for uu in g.users().collect::<Vec<_>>() {
                for kk in g.keyset(uu) {
                    proptest::prop_assert!(g.userset(kk).contains(&uu));
                }
            }
            for kk in g.keys().collect::<Vec<_>>() {
                for uu in g.userset(kk) {
                    proptest::prop_assert!(g.keyset(uu).contains(&kk));
                }
            }
        }

        /// Greedy cover, when it exists, actually covers exactly the target.
        #[test]
        fn greedy_cover_is_exact_cover(edges in proptest::collection::vec((0u64..6, 0u64..6), 1..20)) {
            let mut g = KeyGraph::new();
            for &(uu, kk) in &edges {
                g.add_user_edge(u(uu), k(kk + 100));
            }
            // Also give each user an individual key so covers always exist.
            for uu in g.users().collect::<Vec<_>>() {
                g.add_user_edge(uu, k(uu.0));
            }
            let all: BTreeSet<UserId> = g.users().collect();
            for drop in all.iter().copied() {
                let target: BTreeSet<UserId> = all.iter().copied().filter(|&x| x != drop).collect();
                if target.is_empty() { continue; }
                let cover = g.key_cover_greedy(&target).unwrap();
                proptest::prop_assert_eq!(g.userset_of(&cover), target);
            }
        }
    }
}
