//! Batched (periodic) rekeying — the marking algorithm.
//!
//! The paper's protocols rekey once per join or leave, so under heavy
//! churn a group pays O(churn × log n) encryptions and multicasts. The
//! follow-on literature (CKCS; Chan et al.'s approximation algorithms for
//! batched key management) aggregates all membership changes in a *rekey
//! interval* into one tree update: departed users' leaf slots are refilled
//! by joiners first, the tree then grows or shrinks, and every key on the
//! union of the changed paths is replaced **once**, no matter how many
//! operations touched it.
//!
//! [`KeyTree::apply_batch`] implements that marking algorithm:
//!
//! 1. **Detach** all departing leaves, remembering each vacated parent.
//! 2. **Attach** joiners, preferring vacated interior slots (shallowest
//!    first) before falling back to the tree's normal join heuristic
//!    (which may split a leaf exactly as a single join would).
//! 3. **Contract** degenerate structure left behind: interior nodes that
//!    lost all users are removed; unary non-root interiors are spliced
//!    into their grandparent (same rule as a single leave).
//! 4. **Mark** the ancestor closure of every node touched above. The
//!    marked set is the minimal set of keys to replace: it contains every
//!    key a departed user held and every key on a joiner's path, and each
//!    marked node's version is bumped exactly once for the interval.
//!
//! The returned [`BatchEvent`] carries, for every marked node, its new key
//! and the post-batch keys of all its children — precisely what the
//! consolidated rekey-message constructions in `kg-batch` need: the new
//! key of a marked node is encrypted under each child's current key
//! (the child's *new* key if the child is itself marked), and joiners
//! receive their whole path in one unicast under their individual key.

use crate::derive::DerivedLink;
use crate::ids::KeyLabel;
use crate::ids::{KeyRef, UserId};
use crate::tree::{JoinSlot, KeyTree, NewKeyMode, NodeId, TreeError};
use kg_crypto::{KeySource, SymmetricKey};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One child of a marked node, as seen *after* the batch was applied.
#[derive(Debug, Clone)]
pub struct BatchChild {
    /// The child k-node's label (or a user leaf's label).
    pub label: KeyLabel,
    /// Whether the child itself is marked (its `key` below is new).
    pub marked: bool,
    /// The child's current key reference (post-batch).
    pub key_ref: KeyRef,
    /// The child's current key material (post-batch).
    pub key: SymmetricKey,
    /// `Some(u)` iff this child is the individual-key leaf of a user who
    /// joined in this batch (such children are served by unicast, not by
    /// a ciphertext under their individual key).
    pub joiner: Option<UserId>,
}

/// One key replaced by the batch, with everything needed to distribute it.
#[derive(Debug, Clone)]
pub struct MarkedNode {
    /// The k-node's stable label.
    pub label: KeyLabel,
    /// Reference of the replacement key (version bumped once per batch).
    pub new_ref: KeyRef,
    /// The replacement key material.
    pub new_key: SymmetricKey,
    /// All children with their post-batch keys.
    pub children: Vec<BatchChild>,
}

/// A user admitted by the batch.
#[derive(Debug, Clone)]
pub struct BatchJoin {
    /// The joining user.
    pub user: UserId,
    /// Label of the new individual-key leaf.
    pub leaf_label: KeyLabel,
    /// Reference of the joiner's individual key.
    pub leaf_ref: KeyRef,
    /// The joiner's individual key (from the authentication exchange).
    pub leaf_key: SymmetricKey,
    /// The joiner's new key path, root-first (group key … joining point);
    /// every entry is a *marked* node, so all of these are interval-fresh.
    pub path: Vec<(KeyRef, SymmetricKey)>,
}

/// Result of applying one interval's worth of membership changes.
#[derive(Debug, Clone, Default)]
pub struct BatchEvent {
    /// Replaced keys, root-first (the root is always first when nonempty).
    pub marked: Vec<MarkedNode>,
    /// Users admitted this interval, with their unicast key paths.
    pub joins: Vec<BatchJoin>,
    /// Users removed this interval.
    pub departed: Vec<UserId>,
}

impl BatchEvent {
    /// Whether the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.marked.is_empty() && self.joins.is_empty() && self.departed.is_empty()
    }

    /// Labels of the replaced keys (the "marked set"), root-first.
    pub fn marked_labels(&self) -> Vec<KeyLabel> {
        self.marked.iter().map(|m| m.label).collect()
    }

    /// The interval's **key cover** as a flat work list: every
    /// `(marked node, child)` edge whose ciphertext `{K'_x}_{K_y}` a
    /// rekey strategy may need.
    ///
    /// # Iteration order (stable, documented, relied upon)
    ///
    /// Edges are yielded in *cover order*: marked nodes root-first in
    /// the breadth-first order `apply_batch` replaced them (`marked` is
    /// built from an explicit BFS over `BTreeMap`-backed structures —
    /// no hash-map iteration anywhere), and within each node its
    /// children in the recorded child order. Two `BatchEvent`s with
    /// equal contents therefore yield identical sequences, on every
    /// platform and run.
    ///
    /// The rekey builders consume the cover in exactly this order, so
    /// the order fixes the IV stream: each edge's first sealing draws
    /// the next IV. The parallel pipeline's deterministic merge and the
    /// sequential-vs-parallel equivalence tests both depend on this
    /// being a total order, not an implementation accident.
    pub fn key_cover(&self) -> impl Iterator<Item = (&MarkedNode, &BatchChild)> {
        self.marked.iter().flat_map(|m| m.children.iter().map(move |c| (m, c)))
    }
}

impl KeyTree {
    /// Apply one rekey interval's joins and leaves as a single batched
    /// tree update, replacing each key on the union of the changed paths
    /// exactly once.
    ///
    /// Validation is all-or-nothing: every leaver must be a current
    /// member (listed once), every joiner must be a non-member after the
    /// leaves are accounted for (so a user may leave and rejoin in one
    /// interval), and on any validation error the tree is unchanged.
    pub fn apply_batch(
        &mut self,
        joins: &[(UserId, SymmetricKey)],
        leaves: &[UserId],
        source: &mut dyn KeySource,
    ) -> Result<BatchEvent, TreeError> {
        self.apply_batch_inner(joins, leaves, source, NewKeyMode::Fresh).map(|(ev, _)| ev)
    }

    /// Apply a **leave-free** interval with derived key replacement
    /// ([`crate::rekey::Strategy::Derived`]): every marked key is
    /// recomputed as [`crate::derive::derive_key`]`(from, code, label,
    /// new_version)`, where `from` is the node's pre-batch key — or, for a
    /// node freshly created by a leaf split, the displaced member's
    /// individual key. Returns the event plus one [`DerivedLink`] per
    /// marked node (in `marked` order, root-first) for the wire packet.
    ///
    /// Leaves are excluded by construction: an interval containing a leave
    /// must ship fresh keys (forward secrecy), which the server does by
    /// falling back to the shipped batch path.
    pub fn apply_batch_derived(
        &mut self,
        joins: &[(UserId, SymmetricKey)],
        source: &mut dyn KeySource,
        code: &[u8],
    ) -> Result<(BatchEvent, Vec<DerivedLink>), TreeError> {
        self.apply_batch_inner(joins, &[], source, NewKeyMode::Derived(code))
    }

    fn apply_batch_inner(
        &mut self,
        joins: &[(UserId, SymmetricKey)],
        leaves: &[UserId],
        source: &mut dyn KeySource,
        mode: NewKeyMode<'_>,
    ) -> Result<(BatchEvent, Vec<DerivedLink>), TreeError> {
        debug_assert!(
            matches!(mode, NewKeyMode::Fresh) || leaves.is_empty(),
            "derived batches must be leave-free (forward secrecy)"
        );
        // ---- Validate up front (tree untouched on error). ----
        let mut leaving = BTreeSet::new();
        for &u in leaves {
            if !self.users.contains_key(&u) || !leaving.insert(u) {
                return Err(TreeError::NotAMember(u));
            }
        }
        let mut joining = BTreeSet::new();
        for &(u, _) in joins {
            if (self.users.contains_key(&u) && !leaving.contains(&u)) || !joining.insert(u) {
                return Err(TreeError::AlreadyMember(u));
            }
        }

        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        let mut vacated: Vec<NodeId> = Vec::new();
        // For nodes created by leaf splits: the displaced member's
        // individual key — the derive-from source (and in shipped mode the
        // encrypt-under key) its one previous holder already has.
        let mut fresh_from: BTreeMap<NodeId, (KeyRef, SymmetricKey)> = BTreeMap::new();

        // ---- 1. Detach departing leaves. ----
        for &u in leaves {
            let leaf = self.users.remove(&u).expect("validated member");
            let parent = self.node(leaf).parent.expect("user leaf has a parent");
            let pos =
                self.node(parent).children.iter().position(|&c| c == leaf).expect("child link");
            self.node_mut(parent).children.remove(pos);
            self.dealloc(leaf);
            for anc in self.ancestors_inclusive(parent) {
                self.node_mut(anc).size -= 1;
            }
            touched.insert(parent);
            vacated.push(parent);
        }

        // ---- 2. Attach joiners, refilling vacated slots first. ----
        for &(u, ref individual_key) in joins {
            let refill = vacated
                .iter()
                .copied()
                .filter(|&id| {
                    self.nodes[id].is_some() && self.node(id).children.len() < self.degree
                })
                .min_by_key(|&id| (self.depth_knodes(id), self.node(id).size, id));
            let joining_point = match refill {
                Some(id) => id,
                None => match self.find_join_slot() {
                    JoinSlot::Interior(id) => id,
                    JoinSlot::SplitLeaf(leaf_id) => {
                        // Split exactly as a single join would: a fresh
                        // interior node takes the leaf's position and
                        // adopts the displaced leaf.
                        let (displaced_ref, displaced_key) = {
                            let l = self.node(leaf_id);
                            (KeyRef::new(l.label, l.version), l.key.clone())
                        };
                        let parent = self.node(leaf_id).parent.expect("leaf has a parent");
                        let fresh = self.alloc(source, Some(parent), None);
                        let pos = self
                            .node(parent)
                            .children
                            .iter()
                            .position(|&c| c == leaf_id)
                            .expect("child link");
                        self.node_mut(parent).children[pos] = fresh;
                        self.node_mut(fresh).children.push(leaf_id);
                        self.node_mut(leaf_id).parent = Some(fresh);
                        let displaced_size = self.node(leaf_id).size;
                        self.node_mut(fresh).size = displaced_size;
                        fresh_from.insert(fresh, (displaced_ref, displaced_key));
                        fresh
                    }
                },
            };
            let leaf = self.alloc(source, Some(joining_point), Some(u));
            self.node_mut(leaf).key = individual_key.clone();
            self.node_mut(joining_point).children.push(leaf);
            self.users.insert(u, leaf);
            for anc in self.ancestors_inclusive(joining_point) {
                self.node_mut(anc).size += 1;
            }
            touched.insert(joining_point);
        }

        // ---- 3. Contract degenerate structure. ----
        // Interior nodes left with no users are removed; unary non-root
        // interiors are spliced into the grandparent (the survivors below
        // keep their keys — the departed never held them). Each action
        // moves the "touched" obligation up to the surviving parent.
        loop {
            let degenerate = (0..self.nodes.len()).find(|&id| {
                id != self.root
                    && self.nodes[id]
                        .as_ref()
                        .is_some_and(|n| n.user.is_none() && n.children.len() < 2)
            });
            let Some(id) = degenerate else { break };
            let parent = self.node(id).parent.expect("non-root");
            let pos = self.node(parent).children.iter().position(|&c| c == id).expect("child link");
            if let Some(&only_child) = self.node(id).children.first() {
                self.node_mut(parent).children[pos] = only_child;
                self.node_mut(only_child).parent = Some(parent);
            } else {
                self.node_mut(parent).children.remove(pos);
            }
            self.dealloc(id);
            touched.remove(&id);
            touched.insert(parent);
        }

        let departed: Vec<UserId> = leaves.to_vec();

        // ---- Group emptied: rotate the root key, nothing to distribute.
        if self.users.is_empty() {
            if !departed.is_empty() {
                let new_key = source.generate_key(self.key_len);
                let root = self.node_mut(self.root);
                root.version = root.version.next();
                root.key = new_key;
            }
            return Ok((
                BatchEvent { marked: Vec::new(), joins: Vec::new(), departed },
                Vec::new(),
            ));
        }

        // ---- 4. Mark: ancestor closure of every touched node. ----
        let mut marked_set: BTreeSet<NodeId> = BTreeSet::new();
        for &t in &touched {
            for anc in self.ancestors_inclusive(t) {
                if !marked_set.insert(anc) {
                    break; // closure already contains the rest of this path
                }
            }
        }

        // Replace each marked key once, root-first (deterministic order).
        let mut order: Vec<NodeId> = Vec::new();
        let mut queue = VecDeque::from([self.root]);
        while let Some(id) = queue.pop_front() {
            if marked_set.contains(&id) {
                order.push(id);
            }
            queue.extend(self.node(id).children.iter().copied());
        }
        debug_assert_eq!(order.len(), marked_set.len());
        let mut new_keys: BTreeMap<NodeId, (KeyRef, SymmetricKey)> = BTreeMap::new();
        let mut links: Vec<DerivedLink> = Vec::new();
        for &id in &order {
            let new_key = match mode {
                NewKeyMode::Fresh => source.generate_key(self.key_len),
                NewKeyMode::Derived(code) => {
                    let (from_ref, from_key) = fresh_from.get(&id).cloned().unwrap_or_else(|| {
                        let n = self.node(id);
                        (KeyRef::new(n.label, n.version), n.key.clone())
                    });
                    let n = self.node(id);
                    let new_ref = KeyRef::new(n.label, n.version.next());
                    links.push(DerivedLink { new_ref, from: from_ref });
                    crate::derive::derive_key(
                        &from_key,
                        code,
                        n.label,
                        new_ref.version,
                        self.key_len,
                    )
                }
            };
            let node = self.node_mut(id);
            node.version = node.version.next();
            node.key = new_key.clone();
            new_keys.insert(id, (KeyRef::new(node.label, node.version), new_key));
        }

        // ---- Assemble the event. ----
        let marked = order
            .iter()
            .map(|&id| {
                let (new_ref, new_key) = new_keys[&id].clone();
                let children = self
                    .node(id)
                    .children
                    .iter()
                    .map(|&c| {
                        let n = self.node(c);
                        BatchChild {
                            label: n.label,
                            marked: marked_set.contains(&c),
                            key_ref: KeyRef::new(n.label, n.version),
                            key: n.key.clone(),
                            joiner: n.user.filter(|u| joining.contains(u)),
                        }
                    })
                    .collect();
                MarkedNode { label: self.node(id).label, new_ref, new_key, children }
            })
            .collect();

        let joins = joins
            .iter()
            .map(|&(u, ref individual_key)| {
                let leaf = self.users[&u];
                let leaf_node = self.node(leaf);
                let leaf_label = leaf_node.label;
                let leaf_ref = KeyRef::new(leaf_node.label, leaf_node.version);
                let parent = leaf_node.parent.expect("user leaf has a parent");
                let mut path: Vec<(KeyRef, SymmetricKey)> = self
                    .ancestors_inclusive(parent)
                    .into_iter()
                    .map(|anc| new_keys[&anc].clone())
                    .collect();
                path.reverse(); // root-first
                BatchJoin { user: u, leaf_label, leaf_ref, leaf_key: individual_key.clone(), path }
            })
            .collect();

        Ok((BatchEvent { marked, joins, departed }, links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::drbg::HmacDrbg;

    fn setup(degree: usize, n: u64) -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(0xBA7C);
        let mut tree = KeyTree::new(degree, 8, &mut src);
        for i in 0..n {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        (tree, src)
    }

    fn join_reqs(src: &mut HmacDrbg, ids: &[u64]) -> Vec<(UserId, SymmetricKey)> {
        ids.iter().map(|&i| (UserId(i), src.generate_key(8))).collect()
    }

    /// Every key a departed user held must be marked; every joiner path
    /// entry must be marked; the root must be marked when anything changed.
    fn assert_marking_sound(
        ev: &BatchEvent,
        pre_keysets: &BTreeMap<UserId, Vec<KeyLabel>>,
        tree: &KeyTree,
    ) {
        let marked: BTreeSet<KeyLabel> = ev.marked_labels().into_iter().collect();
        if !marked.is_empty() {
            let (gk, _) = tree.group_key();
            assert_eq!(ev.marked[0].label, gk.label, "root first");
        }
        for u in &ev.departed {
            for label in &pre_keysets[u][1..] {
                // Skip the departed user's own leaf (removed, not rekeyed);
                // contracted nodes disappear rather than being rekeyed —
                // they're fine because the keys cease to exist.
                if tree.userset(*label).is_empty() {
                    continue;
                }
                assert!(
                    marked.contains(label),
                    "departed {u:?} still-live key {label:?} not marked"
                );
            }
        }
        for j in &ev.joins {
            for (kr, _) in &j.path {
                assert!(marked.contains(&kr.label), "joiner path key {:?} unmarked", kr.label);
            }
            let ks = tree.keyset(j.user).unwrap();
            assert_eq!(ks.len(), j.path.len() + 1, "unicast path covers whole keyset");
        }
    }

    fn pre_keysets(tree: &KeyTree) -> BTreeMap<UserId, Vec<KeyLabel>> {
        tree.members()
            .map(|u| {
                let labels = tree.keyset(u).unwrap().into_iter().map(|(r, _)| r.label).collect();
                (u, labels)
            })
            .collect()
    }

    #[test]
    fn pure_join_batch_marks_union_of_paths() {
        let (mut tree, mut src) = setup(3, 9);
        let pre = pre_keysets(&tree);
        let joins = join_reqs(&mut src, &[100, 101, 102, 103]);
        let ev = tree.apply_batch(&joins, &[], &mut src).unwrap();
        tree.check_invariants();
        assert_eq!(ev.joins.len(), 4);
        assert!(ev.departed.is_empty());
        assert_eq!(tree.user_count(), 13);
        assert_marking_sound(&ev, &pre, &tree);
        // Versions bumped exactly once: every marked ref is old version + 1
        // is implied by one generate per node; check refs are current.
        for m in &ev.marked {
            let (gk, gkey) = tree.group_key();
            if m.label == gk.label {
                assert_eq!(m.new_ref, gk);
                assert_eq!(m.new_key, gkey);
            }
        }
    }

    #[test]
    fn pure_leave_batch_marks_union_of_paths() {
        let (mut tree, mut src) = setup(3, 27);
        let pre = pre_keysets(&tree);
        let leaves: Vec<UserId> = [0u64, 5, 13, 26].map(UserId).to_vec();
        let ev = tree.apply_batch(&[], &leaves, &mut src).unwrap();
        tree.check_invariants();
        assert_eq!(ev.departed, leaves);
        assert!(ev.joins.is_empty());
        assert_eq!(tree.user_count(), 23);
        assert_marking_sound(&ev, &pre, &tree);
        // Departed users appear nowhere.
        for u in &leaves {
            assert!(!tree.is_member(*u));
        }
    }

    #[test]
    fn mixed_batch_refills_vacated_slots() {
        let (mut tree, mut src) = setup(4, 64);
        let key_count_before = tree.key_count();
        let height_before = tree.height();
        let pre = pre_keysets(&tree);
        let leaves: Vec<UserId> = [3u64, 17, 42].map(UserId).to_vec();
        let joins = join_reqs(&mut src, &[200, 201, 202]);
        let ev = tree.apply_batch(&joins, &leaves, &mut src).unwrap();
        tree.check_invariants();
        assert_eq!(tree.user_count(), 64);
        assert_marking_sound(&ev, &pre, &tree);
        // Equal joins and leaves refill in place: no growth in keys/height.
        assert_eq!(tree.key_count(), key_count_before);
        assert_eq!(tree.height(), height_before);
    }

    #[test]
    fn leave_and_rejoin_same_interval() {
        let (mut tree, mut src) = setup(3, 9);
        let joins = join_reqs(&mut src, &[4]);
        let ev = tree.apply_batch(&joins, &[UserId(4)], &mut src).unwrap();
        tree.check_invariants();
        assert!(tree.is_member(UserId(4)));
        assert_eq!(ev.departed, vec![UserId(4)]);
        assert_eq!(ev.joins.len(), 1);
        // The rejoined user got a fresh leaf label and key.
        assert_ne!(ev.joins[0].leaf_key, SymmetricKey::new(vec![0; 8]));
    }

    #[test]
    fn batch_validation_is_atomic() {
        let (mut tree, mut src) = setup(3, 9);
        let before = tree.key_count();
        let (gk_before, _) = tree.group_key();
        // Leaver not a member.
        let joins = join_reqs(&mut src, &[100]);
        assert_eq!(
            tree.apply_batch(&joins, &[UserId(77)], &mut src).unwrap_err(),
            TreeError::NotAMember(UserId(77))
        );
        // Joiner already a member.
        let joins = join_reqs(&mut src, &[4]);
        assert_eq!(
            tree.apply_batch(&joins, &[], &mut src).unwrap_err(),
            TreeError::AlreadyMember(UserId(4))
        );
        // Duplicate joiner.
        let joins = join_reqs(&mut src, &[100, 100]);
        assert_eq!(
            tree.apply_batch(&joins, &[], &mut src).unwrap_err(),
            TreeError::AlreadyMember(UserId(100))
        );
        tree.check_invariants();
        assert_eq!(tree.key_count(), before);
        assert_eq!(tree.group_key().0, gk_before);
    }

    #[test]
    fn batch_emptying_group_rotates_root() {
        let (mut tree, mut src) = setup(3, 4);
        let (gk_before, _) = tree.group_key();
        let leaves: Vec<UserId> = (0..4).map(UserId).collect();
        let ev = tree.apply_batch(&[], &leaves, &mut src).unwrap();
        tree.check_invariants();
        assert!(ev.marked.is_empty());
        assert_eq!(ev.departed.len(), 4);
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.key_count(), 1);
        let (gk_after, _) = tree.group_key();
        assert!(gk_after.version > gk_before.version);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (mut tree, mut src) = setup(3, 9);
        let (gk_before, _) = tree.group_key();
        let ev = tree.apply_batch(&[], &[], &mut src).unwrap();
        assert!(ev.is_empty());
        assert_eq!(tree.group_key().0, gk_before);
    }

    #[test]
    fn batch_of_one_join_matches_per_op_marked_set() {
        for n in [1u64, 2, 3, 7, 9, 26, 27, 64] {
            let (tree, mut src) = setup(3, n);
            let mut per_op = tree.clone();
            let mut batched = tree.clone();
            let ik = src.generate_key(8);
            let ev = per_op.join(UserId(999), ik.clone(), &mut src).unwrap();
            let per_op_labels: Vec<KeyLabel> = ev.path.iter().map(|p| p.label).collect();
            let bev = batched.apply_batch(&[(UserId(999), ik)], &[], &mut src).unwrap();
            assert_eq!(bev.marked_labels(), per_op_labels, "join marked-set mismatch at n={n}");
            batched.check_invariants();
        }
    }

    #[test]
    fn batch_of_one_leave_matches_per_op_marked_set() {
        for n in [2u64, 3, 7, 9, 26, 27, 64] {
            for victim in [0, n / 2, n - 1] {
                let (tree, mut src) = setup(3, n);
                let mut per_op = tree.clone();
                let mut batched = tree.clone();
                let ev = per_op.leave(UserId(victim), &mut src).unwrap();
                let per_op_labels: Vec<KeyLabel> = ev.path.iter().map(|p| p.label).collect();
                let bev = batched.apply_batch(&[], &[UserId(victim)], &mut src).unwrap();
                assert_eq!(
                    bev.marked_labels(),
                    per_op_labels,
                    "leave marked-set mismatch at n={n} victim={victim}"
                );
                batched.check_invariants();
            }
        }
    }

    #[test]
    fn batched_marks_at_most_per_op_total() {
        // The whole point: a batch replaces no more keys than the same
        // operations applied one at a time (it replaces the union once).
        let (tree, mut src) = setup(4, 256);
        let mut per_op = tree.clone();
        let mut batched = tree.clone();
        let leaves: Vec<UserId> = (0..16).map(|i| UserId(i * 16)).collect();
        let joins = join_reqs(&mut src, &(1000..1016).collect::<Vec<_>>());

        let mut per_op_replacements = 0usize;
        for u in &leaves {
            per_op_replacements += per_op.leave(*u, &mut src).unwrap().path.len();
        }
        for (u, ik) in &joins {
            per_op_replacements += per_op.join(*u, ik.clone(), &mut src).unwrap().path.len();
        }

        let ev = batched.apply_batch(&joins, &leaves, &mut src).unwrap();
        batched.check_invariants();
        assert!(
            ev.marked.len() < per_op_replacements,
            "batched {} vs per-op {per_op_replacements}",
            ev.marked.len()
        );
    }

    /// [`BatchEvent::key_cover`]'s order contract: marked nodes in
    /// `marked` order (root first), children in recorded order, and the
    /// same operations replayed from scratch yield the identical cover
    /// sequence — the property the parallel pipeline's IV assignment
    /// rests on.
    #[test]
    fn key_cover_order_is_stable_and_exhaustive() {
        let run = || {
            let (mut tree, mut src) = setup(3, 30);
            let joins = join_reqs(&mut src, &[100, 101, 102]);
            let leaves: Vec<UserId> = [2u64, 5, 11, 17].map(UserId).to_vec();
            let ev = tree.apply_batch(&joins, &leaves, &mut src).unwrap();
            let cover: Vec<(KeyRef, KeyRef, bool)> =
                ev.key_cover().map(|(m, c)| (m.new_ref, c.key_ref, c.joiner.is_some())).collect();
            (ev, cover)
        };
        let (ev, cover) = run();
        let (_, cover2) = run();
        assert_eq!(cover, cover2, "cover sequence must be reproducible");
        let expected: usize = ev.marked.iter().map(|m| m.children.len()).sum();
        assert_eq!(cover.len(), expected, "cover visits every child exactly once");
        // Cover order is `marked` order: the flat sequence's marked refs
        // appear as contiguous runs following ev.marked.
        let mut runs = Vec::new();
        for (m_ref, _, _) in &cover {
            if runs.last() != Some(m_ref) {
                runs.push(*m_ref);
            }
        }
        let marked_refs: Vec<KeyRef> =
            ev.marked.iter().filter(|m| !m.children.is_empty()).map(|m| m.new_ref).collect();
        assert_eq!(runs, marked_refs, "marked nodes visited root-first, each in one run");
    }

    #[test]
    fn derived_batch_matches_shipped_structure_and_is_recomputable() {
        let (tree, mut src) = setup(3, 9);
        let mut shipped = tree.clone();
        let mut derived = tree.clone();
        let pre_keys: BTreeMap<KeyLabel, SymmetricKey> = derived
            .members()
            .flat_map(|u| derived.keyset(u).unwrap())
            .map(|(r, k)| (r.label, k))
            .collect();
        let joins = join_reqs(&mut src, &[100, 101, 102, 103]);
        let code = [0x42u8; 16];
        let sev = shipped.apply_batch(&joins, &[], &mut src.clone()).unwrap();
        let (dev, links) = derived.apply_batch_derived(&joins, &mut src, &code).unwrap();
        derived.check_invariants();
        // Same joins → same structure → same marked set.
        assert_eq!(sev.marked_labels(), dev.marked_labels());
        assert_eq!(links.len(), dev.marked.len());
        // Every link: new key = derive(from-key, code, label, new version),
        // where from is either the node's own pre-batch key or a displaced
        // leaf's individual key (both captured in pre_keys).
        for (link, m) in links.iter().zip(&dev.marked) {
            assert_eq!(link.new_ref, m.new_ref);
            let from_key = pre_keys.get(&link.from.label).expect("derive-from key pre-existed");
            let want = crate::derive::derive_key(
                from_key,
                &code,
                link.new_ref.label,
                link.new_ref.version,
                8,
            );
            assert_eq!(m.new_key, want, "marked node {:?} not derivable", m.label);
        }
    }

    #[test]
    fn derived_batch_split_derives_from_displaced_leaf() {
        // Degree 2, 4 members: more joiners than open slots forces splits.
        let (mut tree, mut src) = setup(2, 4);
        let pre = pre_keysets(&tree);
        let leaf_keys: BTreeMap<UserId, (KeyRef, SymmetricKey)> =
            tree.members().map(|u| (u, tree.keyset(u).unwrap()[0].clone())).collect();
        let joins = join_reqs(&mut src, &[10, 11]);
        let code = [3u8; 16];
        let (ev, links) = tree.apply_batch_derived(&joins, &mut src, &code).unwrap();
        tree.check_invariants();
        assert_marking_sound(&ev, &pre, &tree);
        // At least one link's derive-from is a displaced member's
        // individual key (a label outside the marked set's own lineage).
        let displaced_links: Vec<_> =
            links.iter().filter(|l| leaf_keys.values().any(|(r, _)| *r == l.from)).collect();
        assert!(!displaced_links.is_empty(), "split must derive from a displaced leaf");
        for l in displaced_links {
            let (_, ik) = leaf_keys.values().find(|(r, _)| *r == l.from).unwrap();
            let m = ev.marked.iter().find(|m| m.new_ref == l.new_ref).unwrap();
            let want = crate::derive::derive_key(ik, &code, l.new_ref.label, l.new_ref.version, 8);
            assert_eq!(m.new_key, want);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Random mixed batches on random trees preserve all structural
        /// invariants and the marking soundness property.
        #[test]
        fn random_batches_sound(
            n in 1u64..40,
            degree in 2usize..6,
            join_count in 0u64..12,
            leave_seed in 0u64..1000,
        ) {
            let mut src = HmacDrbg::from_seed(leave_seed ^ 0xF00D);
            let mut tree = KeyTree::new(degree, 8, &mut src);
            for i in 0..n {
                let ik = src.generate_key(8);
                tree.join(UserId(i), ik, &mut src).unwrap();
            }
            let pre = pre_keysets(&tree);
            let leaves: Vec<UserId> = (0..n)
                .filter(|i| (i.wrapping_mul(leave_seed + 7)) % 3 == 0)
                .map(UserId)
                .collect();
            let joins: Vec<(UserId, SymmetricKey)> = (0..join_count)
                .map(|i| (UserId(1000 + i), src.generate_key(8)))
                .collect();
            let ev = tree.apply_batch(&joins, &leaves, &mut src).unwrap();
            tree.check_invariants();
            if tree.user_count() > 0 {
                assert_marking_sound(&ev, &pre, &tree);
            }
            proptest::prop_assert_eq!(
                tree.user_count() as u64,
                n - leaves.len() as u64 + join_count
            );
        }
    }
}
