//! Signing many rekey messages with one digital signature (Section 4).
//!
//! A digital signature is ~two orders of magnitude slower than a DES
//! encryption, and key-/user-oriented rekeying sends many messages per
//! join/leave. Signing each one individually makes the signature dominate
//! (Table 4: ~140 ms vs ~14 ms). The paper's remedy, after Merkle '89:
//! build a binary tree over the messages' digests, sign only the root, and
//! ship each message with its *authentication path* — the sibling digests
//! needed to recompute the root. One private-key operation amortizes over
//! the whole batch; each receiver does a handful of extra digest
//! computations.
//!
//! The paper's worked example (messages M1…M4, digest messages D12, D34,
//! D1-4) is exactly a two-level instance of this construction.

use kg_crypto::rsa::{HashAlg, RsaPrivateKey, RsaPublicKey};
use kg_crypto::CryptoError;

/// Which side a sibling digest sits on when recombining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Sibling is the left input of the parent digest.
    Left,
    /// Sibling is the right input.
    Right,
}

/// The authentication path for one message of a signed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthPath {
    /// Index of the message within the batch (diagnostic only).
    pub index: u32,
    /// Sibling digests from the leaf level up to (but excluding) the root.
    pub siblings: Vec<(Side, Vec<u8>)>,
}

impl AuthPath {
    /// Bytes this path adds to a rekey message on the wire (sides are
    /// packed one byte each in the prototype codec).
    pub fn wire_len(&self) -> usize {
        4 + self.siblings.iter().map(|(_, d)| 1 + d.len()).sum::<usize>()
    }
}

/// A batch signature: one root signature plus one auth path per message.
#[derive(Debug, Clone)]
pub struct SignedBatch {
    /// Digest algorithm used throughout the tree.
    pub alg: HashAlg,
    /// RSA signature over the root digest.
    pub root_signature: Vec<u8>,
    /// Authentication path for each message, in input order.
    pub paths: Vec<AuthPath>,
}

/// Build the digest tree over `messages` and sign the root once.
///
/// Odd levels duplicate their last digest (so every node has two children),
/// keeping paths uniform. A single message degenerates to signing its
/// digest directly (empty path).
pub fn sign_batch(
    key: &RsaPrivateKey,
    alg: HashAlg,
    messages: &[&[u8]],
) -> Result<SignedBatch, CryptoError> {
    assert!(!messages.is_empty(), "cannot sign an empty batch");
    // Level 0: message digests.
    let mut levels: Vec<Vec<Vec<u8>>> = vec![messages.iter().map(|m| alg.hash(m)).collect()];
    while levels.last().expect("nonempty").len() > 1 {
        let prev = levels.last().expect("nonempty");
        let mut next = Vec::with_capacity(prev.len().div_ceil(2));
        for pair in prev.chunks(2) {
            let left = &pair[0];
            let right = pair.get(1).unwrap_or(&pair[0]);
            let mut d = Vec::with_capacity(left.len() + right.len());
            d.extend_from_slice(left);
            d.extend_from_slice(right);
            next.push(alg.hash(&d));
        }
        levels.push(next);
    }
    let root = levels.last().expect("nonempty")[0].clone();
    let root_signature = key.sign_digest(alg, &root)?;

    let mut paths = Vec::with_capacity(messages.len());
    for i in 0..messages.len() {
        let mut siblings = Vec::new();
        let mut idx = i;
        for level in &levels[..levels.len() - 1] {
            let sib_idx = idx ^ 1;
            let sibling = level.get(sib_idx).unwrap_or(&level[idx]).clone();
            let side = if sib_idx < idx { Side::Left } else { Side::Right };
            siblings.push((side, sibling));
            idx /= 2;
        }
        paths.push(AuthPath { index: i as u32, siblings });
    }
    Ok(SignedBatch { alg, root_signature, paths })
}

/// Verify that `message` belongs to the batch signed by `root_signature`.
pub fn verify_message(
    key: &RsaPublicKey,
    alg: HashAlg,
    message: &[u8],
    path: &AuthPath,
    root_signature: &[u8],
) -> Result<(), CryptoError> {
    let mut digest = alg.hash(message);
    for (side, sibling) in &path.siblings {
        let mut combined = Vec::with_capacity(digest.len() + sibling.len());
        match side {
            Side::Left => {
                combined.extend_from_slice(sibling);
                combined.extend_from_slice(&digest);
            }
            Side::Right => {
                combined.extend_from_slice(&digest);
                combined.extend_from_slice(sibling);
            }
        }
        digest = alg.hash(&combined);
    }
    key.verify_digest(alg, &digest, root_signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(4242);
        RsaKeyPair::generate(512, &mut rng).unwrap()
    }

    #[test]
    fn four_messages_like_the_paper() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"M1", b"M2", b"M3", b"M4"];
        let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        assert_eq!(batch.paths.len(), 4);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(batch.paths[i].siblings.len(), 2, "two-level tree");
            verify_message(kp.public(), HashAlg::Md5, m, &batch.paths[i], &batch.root_signature)
                .unwrap();
        }
    }

    #[test]
    fn single_message_degenerates() {
        let kp = keypair();
        let batch = sign_batch(&kp.private, HashAlg::Md5, &[b"only"]).unwrap();
        assert!(batch.paths[0].siblings.is_empty());
        verify_message(kp.public(), HashAlg::Md5, b"only", &batch.paths[0], &batch.root_signature)
            .unwrap();
    }

    #[test]
    fn odd_batch_sizes() {
        let kp = keypair();
        for n in [2usize, 3, 5, 7, 19] {
            let owned: Vec<Vec<u8>> =
                (0..n).map(|i| format!("rekey message {i}").into_bytes()).collect();
            let msgs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
            let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
            for (i, m) in msgs.iter().enumerate() {
                verify_message(
                    kp.public(),
                    HashAlg::Md5,
                    m,
                    &batch.paths[i],
                    &batch.root_signature,
                )
                .unwrap();
            }
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        assert!(verify_message(
            kp.public(),
            HashAlg::Md5,
            b"x",
            &batch.paths[0],
            &batch.root_signature
        )
        .is_err());
    }

    #[test]
    fn swapped_paths_rejected() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        // Message "a" with "b"'s path fails (siblings differ).
        assert!(verify_message(
            kp.public(),
            HashAlg::Md5,
            b"a",
            &batch.paths[1],
            &batch.root_signature
        )
        .is_err());
    }

    #[test]
    fn tampered_sibling_rejected() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"a", b"b"];
        let mut batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        batch.paths[0].siblings[0].1[0] ^= 1;
        assert!(verify_message(
            kp.public(),
            HashAlg::Md5,
            b"a",
            &batch.paths[0],
            &batch.root_signature
        )
        .is_err());
    }

    #[test]
    fn cross_batch_signature_rejected() {
        let kp = keypair();
        let b1 = sign_batch(&kp.private, HashAlg::Md5, &[b"a", b"b"]).unwrap();
        let b2 = sign_batch(&kp.private, HashAlg::Md5, &[b"c", b"d"]).unwrap();
        assert!(verify_message(kp.public(), HashAlg::Md5, b"a", &b1.paths[0], &b2.root_signature)
            .is_err());
    }

    #[test]
    fn works_with_sha256() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"m1", b"m2", b"m3"];
        let batch = sign_batch(&kp.private, HashAlg::Sha256, &msgs).unwrap();
        for (i, m) in msgs.iter().enumerate() {
            verify_message(kp.public(), HashAlg::Sha256, m, &batch.paths[i], &batch.root_signature)
                .unwrap();
        }
    }

    #[test]
    fn path_wire_len_accounts_for_siblings() {
        let kp = keypair();
        let msgs: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        // Two siblings × (1 side byte + 16 digest bytes) + 4-byte index.
        assert_eq!(batch.paths[0].wire_len(), 4 + 2 * 17);
    }

    #[test]
    fn amortization_one_signature_many_messages() {
        // The point of the whole section: m messages, exactly one
        // signature. (Timing is benchmarked in kg-bench; here we assert
        // the structural property.)
        let kp = keypair();
        let owned: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 100]).collect();
        let msgs: Vec<&[u8]> = owned.iter().map(|m| m.as_slice()).collect();
        let batch = sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap();
        assert_eq!(batch.root_signature.len(), 64);
        assert_eq!(batch.paths.len(), 32);
        assert!(batch.paths.iter().all(|p| p.siblings.len() == 5)); // log2(32)
    }
}
