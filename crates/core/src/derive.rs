//! Client-side key derivation — the `Strategy::Derived` KDF.
//!
//! The paper's three strategies all *ship* refreshed keys: every change to
//! a k-node costs the server an encryption and the group a ciphertext on
//! the wire. Client-derived rekeying (CKCS-style; see PAPERS.md) observes
//! that for *joins* and *refreshes* — where every current holder of a
//! changed key is entitled to its replacement — the server need only
//! multicast a short random **derivation code** and let each member
//! recompute the keys it holds:
//!
//! ```text
//! K'_x = HMAC-SHA256(K_x, code ‖ label(x) ‖ version'(x))  truncated to key_len
//! ```
//!
//! Binding the node's label and the *new* version number into the message
//! makes every (node, generation) derivation domain-separated: the same
//! code never maps two nodes, or two generations of one node, to related
//! keys. The server performs the same derivation (it holds every old key),
//! so server and members converge on identical key material with **zero**
//! key ciphertexts for current members — only the joiner still needs its
//! path shipped, sealed under its individual key.
//!
//! *Leaves must still ship*: a departing member holds the old keys on its
//! path, so any key derivable from them via a public code would be
//! derivable by the departed member too. Forward secrecy therefore forces
//! the evicted path's replacements to be fresh random keys delivered the
//! classic way (see `DESIGN.md` §4g for the full argument).

use crate::ids::{KeyLabel, KeyRef, KeyVersion};
use crate::tree::PathNode;
use kg_crypto::hmac::hmac;
use kg_crypto::sha256::Sha256;
use kg_crypto::{Digest, SymmetricKey};

/// One derivable key replacement, as published in a derived rekey packet:
/// whoever holds the key at `from` recomputes the key at `new_ref` via
/// [`derive_key`]`(held, code, new_ref.label, new_ref.version)`.
///
/// `from` is usually the same node one version earlier; for a node freshly
/// created by a leaf split it is the displaced member's individual key —
/// a different label, held by exactly the node's previous userset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedLink {
    /// Reference of the replacement key (label + new version).
    pub new_ref: KeyRef,
    /// Reference of the key the replacement is derived from.
    pub from: KeyRef,
}

/// The derivation links of an immediate-mode derived join or refresh: one
/// per changed path node, in the path's (root-first) order.
pub fn links_from_path(path: &[PathNode]) -> Vec<DerivedLink> {
    path.iter().map(|p| DerivedLink { new_ref: p.new_ref, from: p.old_ref }).collect()
}

/// Bytes of derivation code published per derived rekey operation.
///
/// 128 bits: comfortably past birthday bounds for any conceivable number
/// of intervals, while keeping the multicast packet tiny.
pub const DERIVATION_CODE_LEN: usize = 16;

/// Derive the replacement key for node `label` at (new) version
/// `new_version` from its previous key `old` and the published `code`.
///
/// Both sides of the protocol call exactly this function: the server to
/// advance its tree, each member to advance the subset of the path it
/// holds. The HMAC output (32 bytes) is truncated to `key_len`.
pub fn derive_key(
    old: &SymmetricKey,
    code: &[u8],
    label: KeyLabel,
    new_version: KeyVersion,
    key_len: usize,
) -> SymmetricKey {
    debug_assert!(key_len <= Sha256::OUTPUT_SIZE, "key_len exceeds HMAC-SHA256 output");
    let mut msg = Vec::with_capacity(code.len() + 16);
    msg.extend_from_slice(code);
    msg.extend_from_slice(&label.0.to_be_bytes());
    msg.extend_from_slice(&new_version.0.to_be_bytes());
    let mut out = hmac::<Sha256>(old.material(), &msg);
    out.truncate(key_len);
    SymmetricKey::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(bytes: &[u8]) -> SymmetricKey {
        SymmetricKey::from_bytes(bytes)
    }

    #[test]
    fn deterministic_and_truncated() {
        let old = k(&[7u8; 8]);
        let code = [0xAAu8; DERIVATION_CODE_LEN];
        let a = derive_key(&old, &code, KeyLabel(3), KeyVersion(2), 8);
        let b = derive_key(&old, &code, KeyLabel(3), KeyVersion(2), 8);
        assert_eq!(a, b);
        assert_eq!(a.material().len(), 8);
    }

    #[test]
    fn domain_separated_by_label_version_code_and_key() {
        let old = k(&[7u8; 8]);
        let code = [0xAAu8; DERIVATION_CODE_LEN];
        let base = derive_key(&old, &code, KeyLabel(3), KeyVersion(2), 8);
        assert_ne!(base, derive_key(&old, &code, KeyLabel(4), KeyVersion(2), 8));
        assert_ne!(base, derive_key(&old, &code, KeyLabel(3), KeyVersion(3), 8));
        let code2 = [0xABu8; DERIVATION_CODE_LEN];
        assert_ne!(base, derive_key(&old, &code2, KeyLabel(3), KeyVersion(2), 8));
        assert_ne!(base, derive_key(&k(&[8u8; 8]), &code, KeyLabel(3), KeyVersion(2), 8));
    }

    #[test]
    fn matches_raw_hmac_construction() {
        // Pin the exact message layout: code ‖ label.be ‖ new_version.be.
        let old = k(b"old-key!");
        let code = [1u8; DERIVATION_CODE_LEN];
        let mut msg = code.to_vec();
        msg.extend_from_slice(&5u64.to_be_bytes());
        msg.extend_from_slice(&9u64.to_be_bytes());
        let want = &hmac::<Sha256>(old.material(), &msg)[..8];
        let got = derive_key(&old, &code, KeyLabel(5), KeyVersion(9), 8);
        assert_eq!(got.material(), want);
    }
}
