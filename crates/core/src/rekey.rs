//! Rekey message construction — the three strategies of Section 3.
//!
//! After a join or leave mutates the key tree, the server must deliver the
//! new path keys to exactly the users entitled to them. The paper proposes
//! three ways to package that delivery:
//!
//! * **User-oriented** (§3.3/§3.4): one message per user class, containing
//!   *precisely* the new keys that class needs, all encrypted under one key
//!   the class already holds. Most messages, most server encryptions,
//!   smallest messages per client.
//! * **Key-oriented** (Figures 6 and 8): each new key encrypted
//!   individually under its node's old key (join) or under each surviving
//!   child key (leave); ciphertexts are *stored and reused* across the
//!   per-subgroup messages, which is what brings the leave cost down from
//!   `(d−1)h(h−1)/2` to `d(h−1)` encryptions.
//! * **Group-oriented** (Figures 7 and 9): one rekey message carrying all
//!   new keys, multicast to the whole group; each client picks out what it
//!   can decrypt. Fewest messages and fewest server encryptions, but the
//!   biggest message on every client's wire.
//!
//! Plans are *materialized*: each [`KeyBundle`] carries a real ciphertext
//! produced by the configured cipher (DES-CBC in the paper), and an
//! [`OpCounts`] tally is returned so tests can check the Table 2 formulas
//! against reality.

use crate::ids::{KeyLabel, KeyRef, UserId};
use crate::tree::{JoinEvent, LeaveEvent, PathNode};
use kg_crypto::cbc::CbcCipher;
use kg_crypto::des::{Des, TripleDes};
use kg_crypto::{BlockCipher, CryptoError, KeySource, SymmetricKey};
use std::collections::BTreeMap;

/// The rekeying strategies: the paper's three *shipped* strategies plus
/// the client-*derived* extension (see [`crate::derive`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One tailored message per user class (§3.3 "user-oriented").
    UserOriented,
    /// Per-key ciphertexts with reuse (Figures 6/8).
    KeyOriented,
    /// One message for the whole group (Figures 7/9).
    GroupOriented,
    /// Client-derived rekeying: joins and refreshes publish a derivation
    /// code and members recompute changed keys locally
    /// ([`crate::derive::derive_key`]); leaves fall back to the shipped
    /// group-oriented construction (forward secrecy — see `DESIGN.md` §4g).
    Derived,
}

impl Strategy {
    /// The paper's three shipped strategies (Table 2 sweeps). The derived
    /// extension is deliberately excluded: these sweeps validate the
    /// paper's cost model, which derived rekeying side-steps.
    pub const ALL: [Strategy; 3] =
        [Strategy::UserOriented, Strategy::KeyOriented, Strategy::GroupOriented];

    /// Every strategy including [`Strategy::Derived`], for sweeps that
    /// compare shipped vs derived costs.
    pub const EVERY: [Strategy; 4] =
        [Strategy::UserOriented, Strategy::KeyOriented, Strategy::GroupOriented, Strategy::Derived];

    /// Short name used in reports and spec files ("user" / "key" /
    /// "group", as in the paper's tables, plus "derived").
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::UserOriented => "user",
            Strategy::KeyOriented => "key",
            Strategy::GroupOriented => "group",
            Strategy::Derived => "derived",
        }
    }

    /// Alias of [`Strategy::as_str`] (the historical accessor name).
    pub fn name(self) -> &'static str {
        self.as_str()
    }

    /// The strategy rekey *messages* are constructed under: derived mode
    /// ships its leave (and mixed-batch) traffic group-oriented.
    pub fn shipped_fallback(self) -> Strategy {
        match self {
            Strategy::Derived => Strategy::GroupOriented,
            other => other,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "user" | "user-oriented" => Ok(Strategy::UserOriented),
            "key" | "key-oriented" => Ok(Strategy::KeyOriented),
            "group" | "group-oriented" => Ok(Strategy::GroupOriented),
            "derived" | "client-derived" => Ok(Strategy::Derived),
            other => Err(format!("unknown strategy {other:?}")),
        }
    }
}

/// Whom a rekey message is addressed to. The server resolves these against
/// the key tree when sending (subgroup multicast in the paper; the
/// simulated network does the same).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipients {
    /// A single user (unicast).
    User(UserId),
    /// Every user holding the key at this label.
    Subgroup(KeyLabel),
    /// Users holding `include`'s key but not `exclude`'s — the
    /// `userset(K_i) − userset(K_{i+1})` sets of the join protocols.
    SubgroupExcept {
        /// Users must hold this key…
        include: KeyLabel,
        /// …and must not hold this one.
        exclude: KeyLabel,
    },
    /// The entire group.
    Group,
}

/// One ciphertext inside a rekey message: `targets` new keys (in order)
/// encrypted under `encrypted_with`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBundle {
    /// References of the new keys inside the ciphertext, in plaintext order.
    pub targets: Vec<KeyRef>,
    /// Reference of the key the bundle is encrypted under.
    pub encrypted_with: KeyRef,
    /// CBC initialization vector.
    pub iv: Vec<u8>,
    /// The ciphertext (length = padded concatenation of target keys).
    pub ciphertext: Vec<u8>,
}

/// A rekey message: recipients plus one or more key bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RekeyMessage {
    /// Delivery scope.
    pub recipients: Recipients,
    /// Encrypted new keys.
    pub bundles: Vec<KeyBundle>,
}

impl RekeyMessage {
    /// Total number of encrypted keys carried (for cost accounting).
    pub fn key_count(&self) -> usize {
        self.bundles.iter().map(|b| b.targets.len()).sum()
    }
}

/// Cryptographic operation counts for one rekey operation, in the units of
/// the paper's cost model: `key_encryptions` counts *keys encrypted*, so a
/// bundle packing three keys into one ciphertext costs three.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Keys encrypted by the server.
    pub key_encryptions: u64,
    /// Fresh keys generated.
    pub keys_generated: u64,
    /// Bundle requests served from the per-operation encryption cache
    /// (no IV drawn, no ciphertext produced, not counted in
    /// `key_encryptions`) — the stored-ciphertext reuse of Figures 6/8,
    /// made explicit.
    pub cache_hits: u64,
    /// Bundle requests that actually sealed a ciphertext. `cache_misses`
    /// is the number of distinct ciphertexts the operation produced.
    pub cache_misses: u64,
}

/// Output of a rekey operation: the messages to send and the cost tally.
#[derive(Debug, Clone)]
pub struct RekeyOutput {
    /// Messages to deliver (the joiner's unicast, when present, is the one
    /// with `Recipients::User`).
    pub messages: Vec<RekeyMessage>,
    /// Server-side operation counts.
    pub ops: OpCounts,
}

/// Key-encryption engine used to materialize bundles.
///
/// The paper's prototype used DES-CBC; [`KeyCipher::des_cbc`] is the
/// default. The trait-object-free enum keeps the hot path monomorphic
/// while still letting the benchmark harness ablate the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCipher {
    /// DES in CBC mode (the paper's configuration).
    DesCbc,
    /// Triple-DES EDE3 in CBC mode (ablation option).
    TripleDesCbc,
}

impl std::fmt::Display for KeyCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KeyCipher {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "des-cbc" => Ok(KeyCipher::DesCbc),
            "3des-cbc" => Ok(KeyCipher::TripleDesCbc),
            other => Err(format!("unknown cipher: {other:?}")),
        }
    }
}

impl KeyCipher {
    /// The paper's configuration.
    pub fn des_cbc() -> Self {
        KeyCipher::DesCbc
    }

    /// Stable spec-file name for this cipher (the string
    /// [`KeyCipher::from_str`] accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            KeyCipher::DesCbc => "des-cbc",
            KeyCipher::TripleDesCbc => "3des-cbc",
        }
    }

    /// Bytes of key material each encryption key must supply.
    pub fn key_len(self) -> usize {
        match self {
            KeyCipher::DesCbc => Des::KEY_SIZE,
            KeyCipher::TripleDesCbc => TripleDes::KEY_SIZE,
        }
    }

    /// Cipher block size (8 for both DES variants).
    pub fn block_len(self) -> usize {
        match self {
            KeyCipher::DesCbc => Des::BLOCK_SIZE,
            KeyCipher::TripleDesCbc => TripleDes::BLOCK_SIZE,
        }
    }

    /// Ciphertext size for a plaintext of `plain` bytes.
    pub fn ciphertext_len(self, plain: usize) -> usize {
        (plain / self.block_len() + 1) * self.block_len()
    }

    /// Encrypt `plaintext` under `key` with the given IV.
    pub fn encrypt(self, key: &SymmetricKey, iv: &[u8], plaintext: &[u8]) -> Vec<u8> {
        match self {
            KeyCipher::DesCbc => {
                let c = CbcCipher::new(Des::new(key.material()).expect("checked key length"));
                c.encrypt(plaintext, iv)
            }
            KeyCipher::TripleDesCbc => {
                let c = CbcCipher::new(TripleDes::new(key.material()).expect("checked key length"));
                c.encrypt(plaintext, iv)
            }
        }
    }

    /// Decrypt a bundle ciphertext.
    pub fn decrypt(
        self,
        key: &SymmetricKey,
        iv: &[u8],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match self {
            KeyCipher::DesCbc => {
                let c = CbcCipher::new(Des::new(key.material())?);
                c.decrypt(ciphertext, iv)
            }
            KeyCipher::TripleDesCbc => {
                let c = CbcCipher::new(TripleDes::new(key.material())?);
                c.decrypt(ciphertext, iv)
            }
        }
    }
}

/// Where a rekey construction obtains its ciphertext bundles.
///
/// The construction functions ([`build_join`], [`build_leave`],
/// [`build_refresh`], and `kg-batch`'s interval builder) describe *which*
/// bundles a rekey operation needs and in *what order*; the sink decides
/// *how* they are produced. [`SealingSink`] encrypts inline (the
/// sequential path); a planning sink can instead record the encryption as
/// a deferred job and patch the ciphertext in later (the parallel path).
///
/// # Contract
///
/// * Requesting the same `(encrypting_ref, targets, payload)` triple
///   twice within one sink's lifetime returns the *same* bundle — same
///   IV, same ciphertext — without drawing from the IV stream or
///   re-encrypting, and counts a cache hit instead of new
///   `key_encryptions`. Constructions rely on this for the paper's
///   stored-ciphertext reuse (Figures 6/8), so a sink must memoize.
/// * A first-time request draws exactly one IV from the sink's
///   [`IvStream`] (which prefetches from the underlying source in a
///   fixed chunk schedule). Because construction order is deterministic
///   (see
///   [`crate::batch::BatchEvent::key_cover`]), the IV assignment — and
///   therefore every output byte — is identical across sink
///   implementations.
pub trait BundleSink {
    /// Return the bundle carrying `targets` sealed under
    /// `encrypting_key`, counting the work performed into `ops`.
    fn bundle(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle;
}

/// Buffered IV drawing shared by every [`BundleSink`].
///
/// An HMAC-DRBG pays a fixed ~3-HMAC overhead per `generate` call
/// regardless of output length, which made the per-bundle 8-byte IV
/// draw the single largest *sequential* cost of rekey construction —
/// and the stream must advance in construction order, so it can never
/// be parallelized away. Drawing IVs in geometrically growing chunks
/// ([`IV_CHUNK_START`](Self::IV_CHUNK_START) →
/// [`IV_CHUNK_MAX`](Self::IV_CHUNK_MAX) IVs per call) amortizes that
/// overhead roughly tenfold on batch intervals while staying cheap for
/// single-bundle operations. Every sink draws through this type with
/// the same chunk schedule, so the inline and planning paths consume
/// the identical DRBG stream and outputs remain byte-identical.
///
/// Unused buffered IVs are discarded when the sink (and with it the
/// stream) is dropped at the end of the operation; the underlying
/// source has simply advanced by whole chunks, deterministically.
pub struct IvStream<'a> {
    source: &'a mut dyn KeySource,
    iv_len: usize,
    buf: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl<'a> IvStream<'a> {
    /// IVs prefetched by the first draw.
    pub const IV_CHUNK_START: usize = 8;
    /// Largest prefetch chunk, in IVs; each refill quadruples the
    /// chunk until it reaches this.
    pub const IV_CHUNK_MAX: usize = 128;

    /// Create a stream of `iv_len`-byte IVs drawn from `source`.
    pub fn new(source: &'a mut dyn KeySource, iv_len: usize) -> Self {
        IvStream { source, iv_len, buf: Vec::new(), pos: 0, chunk: Self::IV_CHUNK_START }
    }

    /// The next IV in the stream.
    pub fn next_iv(&mut self) -> Vec<u8> {
        if self.pos == self.buf.len() {
            self.buf = self.source.generate(self.iv_len * self.chunk);
            self.pos = 0;
            self.chunk = (self.chunk * 4).min(Self::IV_CHUNK_MAX);
        }
        let iv = self.buf[self.pos..self.pos + self.iv_len].to_vec();
        self.pos += self.iv_len;
        iv
    }
}

/// Per-operation encryption cache shared by [`BundleSink`] impls.
///
/// Keyed by `(encrypting key ref, target refs, payload bytes)`. The
/// encrypting ref includes the key *version*, so a key change is an
/// automatic invalidation: once any key on a path is replaced, requests
/// under it form new cache keys. The cache's scope is one rekey
/// operation (one join/leave/refresh, or one whole batch interval), so
/// overlapping key-covers within an interval never seal the same
/// (encrypting-key, payload) pair twice.
#[derive(Debug, Default)]
pub struct BundleCache {
    map: BTreeMap<(KeyRef, Vec<KeyRef>, Vec<u8>), KeyBundle>,
}

impl BundleCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        BundleCache::default()
    }

    /// Look up the bundle for this request, sealing (and memoizing) it
    /// via `seal` on a miss. Counts the hit or miss — and, on a miss,
    /// `targets.len()` key encryptions — into `ops`.
    pub fn request(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        targets: &[KeyRef],
        payload: Vec<u8>,
        seal: impl FnOnce(&[u8]) -> KeyBundle,
    ) -> KeyBundle {
        use std::collections::btree_map::Entry;
        match self.map.entry((encrypting_ref, targets.to_vec(), payload)) {
            Entry::Occupied(e) => {
                ops.cache_hits += 1;
                e.get().clone()
            }
            Entry::Vacant(e) => {
                ops.cache_misses += 1;
                ops.key_encryptions += targets.len() as u64;
                let b = seal(&e.key().2);
                e.insert(b).clone()
            }
        }
    }
}

/// The inline [`BundleSink`]: draws an IV and encrypts immediately.
/// This is the sequential pipeline — and the reference the parallel one
/// must match byte for byte.
pub struct SealingSink<'a> {
    cipher: KeyCipher,
    ivs: IvStream<'a>,
    cache: BundleCache,
}

impl<'a> SealingSink<'a> {
    /// Create a sink with a fresh (empty) cache.
    pub fn new(cipher: KeyCipher, ivs: &'a mut dyn KeySource) -> Self {
        let ivs = IvStream::new(ivs, cipher.block_len());
        SealingSink { cipher, ivs, cache: BundleCache::new() }
    }
}

impl BundleSink for SealingSink<'_> {
    fn bundle(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle {
        let SealingSink { cipher, ivs, cache } = self;
        let mut payload = Vec::with_capacity(targets.len() * 8);
        for (_, key) in targets {
            payload.extend_from_slice(key.material());
        }
        let target_refs: Vec<KeyRef> = targets.iter().map(|(r, _)| *r).collect();
        cache.request(ops, encrypting_ref, &target_refs, payload, |plain| {
            let iv = ivs.next_iv();
            let ciphertext = cipher.encrypt(encrypting_key, &iv, plain);
            KeyBundle {
                targets: target_refs.clone(),
                encrypted_with: encrypting_ref,
                iv,
                ciphertext,
            }
        })
    }
}

/// Construct the rekey messages for a join under `strategy`.
///
/// Bundle-request order (hence IV-draw order) is deterministic: per-path
/// bundles root-first, then the joiner unicast last.
pub fn build_join(sink: &mut dyn BundleSink, ev: &JoinEvent, strategy: Strategy) -> RekeyOutput {
    let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
    let mut messages = Vec::new();
    let path = &ev.path; // root-first: x_0 … x_j
    let j = path.len() - 1;

    match strategy {
        Strategy::UserOriented => {
            // For each x_i: the users holding old K_i but not K_{i+1}
            // get {K'_0 … K'_i} under old K_i.
            for i in 0..=j {
                let targets: Vec<(KeyRef, &SymmetricKey)> =
                    path[..=i].iter().map(|p| (p.new_ref, &p.new_key)).collect();
                let b = sink.bundle(&mut ops, path[i].old_ref, &path[i].old_key, &targets);
                messages.push(RekeyMessage {
                    recipients: Recipients::SubgroupExcept {
                        include: path[i].label,
                        exclude: ev.path_child[i],
                    },
                    bundles: vec![b],
                });
            }
        }
        Strategy::KeyOriented => {
            // Each new key encrypted once under its old key; the
            // ciphertexts are shared across the per-class messages
            // (Figure 6's combined form). Message i carries
            // {K'_0}_{K_0} … {K'_i}_{K_i}; repeats are cache hits, so
            // single l draws its IV at first occurrence — path order.
            for i in 0..=j {
                let bundles: Vec<KeyBundle> = (0..=i)
                    .map(|l| {
                        let t = [(path[l].new_ref, &path[l].new_key)];
                        sink.bundle(&mut ops, path[l].old_ref, &path[l].old_key, &t)
                    })
                    .collect();
                messages.push(RekeyMessage {
                    recipients: Recipients::SubgroupExcept {
                        include: path[i].label,
                        exclude: ev.path_child[i],
                    },
                    bundles,
                });
            }
        }
        Strategy::GroupOriented | Strategy::Derived => {
            // One multicast with every {K'_i}_{K_i}. A derived-mode server
            // never calls this for a join (it publishes a code instead —
            // [`build_derived_join`]); the arm is the documented shipped
            // fallback so generic sweeps over every strategy stay total.
            let bundles: Vec<KeyBundle> = path
                .iter()
                .map(|p| {
                    let t = [(p.new_ref, &p.new_key)];
                    sink.bundle(&mut ops, p.old_ref, &p.old_key, &t)
                })
                .collect();
            messages.push(RekeyMessage { recipients: Recipients::Group, bundles });
        }
    }

    // All strategies unicast the full new path to the joiner under its
    // individual key.
    let joiner_targets: Vec<(KeyRef, &SymmetricKey)> =
        path.iter().map(|p| (p.new_ref, &p.new_key)).collect();
    let b = sink.bundle(&mut ops, ev.leaf_ref, &ev.leaf_key, &joiner_targets);
    messages.push(RekeyMessage { recipients: Recipients::User(ev.user), bundles: vec![b] });

    RekeyOutput { messages, ops }
}

/// Construct the rekey message for a group-key refresh (key-version bump
/// with no membership change): the new root key encrypted under the old
/// one, multicast to the whole group. Every strategy degrades to this
/// single message when only the root changes.
pub fn build_refresh(sink: &mut dyn BundleSink, path: &PathNode) -> RekeyOutput {
    let mut ops = OpCounts { keys_generated: 1, ..OpCounts::default() };
    let t = [(path.new_ref, &path.new_key)];
    let b = sink.bundle(&mut ops, path.old_ref, &path.old_key, &t);
    RekeyOutput {
        messages: vec![RekeyMessage { recipients: Recipients::Group, bundles: vec![b] }],
        ops,
    }
}

/// Construct the rekey messages for a *derived* join: current members
/// recompute the changed path keys from the published code
/// ([`crate::derive::derive_key`]), so the only ciphertext the server
/// seals is the joiner's unicast — its full new path under its individual
/// key. One seal regardless of tree height; the O(log n) work moved to
/// the members, one HMAC per held-and-changed key each.
///
/// `keys_generated` counts 0: the path keys were derived, not drawn from
/// the DRBG (the joiner's individual key is accounted by the caller).
pub fn build_derived_join(sink: &mut dyn BundleSink, ev: &JoinEvent) -> RekeyOutput {
    let mut ops = OpCounts::default();
    let joiner_targets: Vec<(KeyRef, &SymmetricKey)> =
        ev.path.iter().map(|p| (p.new_ref, &p.new_key)).collect();
    let b = sink.bundle(&mut ops, ev.leaf_ref, &ev.leaf_key, &joiner_targets);
    RekeyOutput {
        messages: vec![RekeyMessage { recipients: Recipients::User(ev.user), bundles: vec![b] }],
        ops,
    }
}

/// Construct the rekey messages for a leave under `strategy`.
///
/// Returns an empty output when the group became empty (no recipients).
///
/// Bundle-request order is deterministic: for the key-oriented strategy
/// the chain ciphertexts {K'_{i-1}}_{K'_i} are sealed first (i = 1..=j,
/// fixing their IVs exactly as the stored-ciphertext optimization of
/// Figure 8 does), then per-level head bundles in (level, sibling) order;
/// chain links inside each message are cache hits.
pub fn build_leave(sink: &mut dyn BundleSink, ev: &LeaveEvent, strategy: Strategy) -> RekeyOutput {
    let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
    let mut messages = Vec::new();
    if ev.path.is_empty() {
        return RekeyOutput { messages, ops };
    }
    let path = &ev.path; // root-first: x_0 … x_j
    let j = path.len() - 1;

    match strategy {
        Strategy::UserOriented => {
            // For each x_i and each unchanged child y of x_i: a message
            // {K'_i, K'_{i-1} … K'_0} under y's key, to userset(y).
            for i in 0..=j {
                // New keys of x_i and all its ancestors, node-first.
                let targets: Vec<(KeyRef, &SymmetricKey)> =
                    (0..=i).rev().map(|l| (path[l].new_ref, &path[l].new_key)).collect();
                for sib in &ev.siblings[i] {
                    let b = sink.bundle(&mut ops, sib.key_ref, &sib.key, &targets);
                    messages.push(RekeyMessage {
                        recipients: Recipients::Subgroup(sib.label),
                        bundles: vec![b],
                    });
                }
            }
        }
        Strategy::KeyOriented => {
            // Seal the chain ciphertexts {K'_{i-1}}_{K'_i} first; the
            // per-message chain links below re-request them as cache
            // hits, so each is encrypted (and counted) exactly once.
            for i in 1..=j {
                let t = [(path[i - 1].new_ref, &path[i - 1].new_key)];
                let _ = sink.bundle(&mut ops, path[i].new_ref, &path[i].new_key, &t);
            }
            // For each x_i, each unchanged child y: M = {K'_i}_K,
            // {K'_{i-1}}_{K'_i}, …, {K'_0}_{K'_1}.
            for (i, sibs) in ev.siblings.iter().enumerate().take(j + 1) {
                for sib in sibs {
                    let t = [(path[i].new_ref, &path[i].new_key)];
                    let head = sink.bundle(&mut ops, sib.key_ref, &sib.key, &t);
                    let mut bundles = vec![head];
                    for l in (0..i).rev() {
                        let t = [(path[l].new_ref, &path[l].new_key)];
                        bundles.push(sink.bundle(
                            &mut ops,
                            path[l + 1].new_ref,
                            &path[l + 1].new_key,
                            &t,
                        ));
                    }
                    messages.push(RekeyMessage {
                        recipients: Recipients::Subgroup(sib.label),
                        bundles,
                    });
                }
            }
        }
        Strategy::GroupOriented | Strategy::Derived => {
            // L_i = {K'_i} under each child key of x_i; children on the
            // path use their *new* keys. Derived mode ships its leaves
            // exactly like this (forward secrecy: a departed member holds
            // the old path keys, so nothing on the evicted path may be
            // *derivable* — see `DESIGN.md` §4g), hence the shared arm.
            let mut bundles = Vec::new();
            for (i, sibs) in ev.siblings.iter().enumerate().take(j + 1) {
                for sib in sibs {
                    let t = [(path[i].new_ref, &path[i].new_key)];
                    bundles.push(sink.bundle(&mut ops, sib.key_ref, &sib.key, &t));
                }
                if i < j {
                    // The path child x_{i+1} holds its fresh key K'_{i+1}.
                    let t = [(path[i].new_ref, &path[i].new_key)];
                    bundles.push(sink.bundle(
                        &mut ops,
                        path[i + 1].new_ref,
                        &path[i + 1].new_key,
                        &t,
                    ));
                }
            }
            messages.push(RekeyMessage { recipients: Recipients::Group, bundles });
        }
    }
    RekeyOutput { messages, ops }
}

/// Context for materializing rekey messages: cipher choice plus the IV
/// source. Thin wrapper over [`build_join`]/[`build_leave`]/
/// [`build_refresh`] with an inline [`SealingSink`] (fresh cache per
/// operation).
pub struct Rekeyer<'a> {
    cipher: KeyCipher,
    ivs: &'a mut dyn KeySource,
}

impl<'a> Rekeyer<'a> {
    /// Create a rekeyer.
    pub fn new(cipher: KeyCipher, ivs: &'a mut dyn KeySource) -> Self {
        Rekeyer { cipher, ivs }
    }

    /// The cipher in use.
    pub fn cipher(&self) -> KeyCipher {
        self.cipher
    }

    /// Construct the rekey messages for a join under `strategy`.
    pub fn join(&mut self, ev: &JoinEvent, strategy: Strategy) -> RekeyOutput {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        build_join(&mut sink, ev, strategy)
    }

    /// Construct the rekey messages for a leave under `strategy`.
    ///
    /// Returns an empty output when the group became empty.
    pub fn leave(&mut self, ev: &LeaveEvent, strategy: Strategy) -> RekeyOutput {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        build_leave(&mut sink, ev, strategy)
    }

    /// Construct the rekey message for a group-key refresh.
    pub fn refresh(&mut self, path: &PathNode) -> RekeyOutput {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        build_refresh(&mut sink, path)
    }

    /// Construct the rekey messages for a derived join: only the joiner's
    /// unicast is sealed (members derive from the published code).
    pub fn join_derived(&mut self, ev: &JoinEvent) -> RekeyOutput {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        build_derived_join(&mut sink, ev)
    }

    /// Crate-internal bundle constructor for strategy extensions (the §7
    /// hybrid in [`crate::hybrid`]). Each call seals a fresh bundle (a
    /// transient sink: no cross-call reuse).
    pub(crate) fn bundle_for(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        sink.bundle(ops, encrypting_ref, encrypting_key, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::KeyTree;
    use kg_crypto::drbg::HmacDrbg;

    /// Build the Figure 5 tree: degree 3, users u1..u8 (then u9 joins).
    fn figure5_tree() -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(55);
        let mut tree = KeyTree::new(3, 8, &mut src);
        for i in 1..=8 {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        (tree, src)
    }

    fn h(tree: &KeyTree) -> usize {
        tree.height()
    }

    #[test]
    fn join_message_counts_match_paper() {
        // Figure 5 join: user-oriented → h msgs (incl. joiner), key-oriented
        // → h msgs, group-oriented → 2 msgs.
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik, &mut src).unwrap();
        let height = h(&tree);
        assert_eq!(height, 3);
        for (strategy, expected_msgs) in [
            (Strategy::UserOriented, height), // h−1 classes + joiner
            (Strategy::KeyOriented, height),  // same recipient classes
            (Strategy::GroupOriented, 2),     // one multicast + joiner
        ] {
            let mut ivs = HmacDrbg::from_seed(1);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            assert_eq!(out.messages.len(), expected_msgs, "strategy {strategy:?}");
        }
    }

    #[test]
    fn join_encryption_costs_match_table2() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik, &mut src).unwrap();
        let height = h(&tree) as u64; // 3
        let cases = [
            // user-oriented: h(h+1)/2 − 1
            (Strategy::UserOriented, height * (height + 1) / 2 - 1),
            // key-oriented and group-oriented: 2(h−1)
            (Strategy::KeyOriented, 2 * (height - 1)),
            (Strategy::GroupOriented, 2 * (height - 1)),
        ];
        for (strategy, expected) in cases {
            let mut ivs = HmacDrbg::from_seed(2);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            assert_eq!(out.ops.key_encryptions, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn leave_message_counts_match_paper() {
        // Figure 5 leave of u9 from the 9-user tree: (d−1)(h−1) messages for
        // user/key-oriented, 1 for group-oriented.
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        tree.join(UserId(9), ik, &mut src).unwrap();
        let d = tree.degree() as u64;
        let height = h(&tree) as u64;
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        for (strategy, expected) in [
            (Strategy::UserOriented, ((d - 1) * (height - 1)) as usize),
            (Strategy::KeyOriented, ((d - 1) * (height - 1)) as usize),
            (Strategy::GroupOriented, 1),
        ] {
            let mut ivs = HmacDrbg::from_seed(3);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert_eq!(out.messages.len(), expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn leave_encryption_costs_match_table2() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        tree.join(UserId(9), ik, &mut src).unwrap();
        let d = tree.degree() as u64;
        let height = h(&tree) as u64;
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        // The paper's own Figure 5 example: key-oriented sends
        // {k1-8}k123, {k1-8}k456, {k1-8}k78, {k78}k7, {k78}k8 — five
        // encryptions. Table 2's d(h−1) rounds the leaving level up to d
        // children; the exact count on a full tree is (d−1) + d(h−2).
        let exact_key_group = (d - 1) + d * (height - 2);
        for (strategy, expected) in [
            // user-oriented: (d−1)·h(h−1)/2 (exact here: every level has
            // d−1 unchanged children).
            (Strategy::UserOriented, (d - 1) * height * (height - 1) / 2),
            (Strategy::KeyOriented, exact_key_group),
            (Strategy::GroupOriented, exact_key_group),
        ] {
            let mut ivs = HmacDrbg::from_seed(4);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert_eq!(out.ops.key_encryptions, expected, "strategy {strategy:?}");
        }
    }

    /// The encryption cache's accounting: hits are the stored-ciphertext
    /// reuses of Figures 6/8 (key-oriented chains), misses are the
    /// distinct ciphertexts, and hits never consume IVs or encryptions.
    #[test]
    fn cache_accounting_matches_stored_ciphertext_reuse() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        tree.join(UserId(9), ik, &mut src).unwrap();
        let ev = tree.leave(UserId(9), &mut src).unwrap();

        let mut ivs = HmacDrbg::from_seed(17);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave(&ev, Strategy::KeyOriented);
        // Key-oriented leave re-sends the chain links {K'_{l}}K'_{l+1}
        // in every message below their level: a sibling at level i
        // repeats i links, all served from the cache.
        let expected_hits: u64 =
            ev.siblings.iter().enumerate().map(|(i, s)| (s.len() * i) as u64).sum();
        assert!(expected_hits > 0, "figure-5 tree must have reusable chain links");
        assert_eq!(out.ops.cache_hits, expected_hits);
        let distinct: std::collections::BTreeSet<Vec<u8>> = out
            .messages
            .iter()
            .flat_map(|m| m.bundles.iter().map(|b| b.ciphertext.clone()))
            .collect();
        assert_eq!(distinct.len() as u64, out.ops.cache_misses);
        assert_eq!(out.ops.key_encryptions, out.ops.cache_misses); // all bundles single-target
                                                                   // Group-oriented packs everything once: no repeats possible.
        let mut ivs = HmacDrbg::from_seed(17);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave(&ev, Strategy::GroupOriented);
        assert_eq!(out.ops.cache_hits, 0);
    }

    #[test]
    fn joiner_always_gets_full_path() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik.clone(), &mut src).unwrap();
        for strategy in Strategy::ALL {
            let mut ivs = HmacDrbg::from_seed(5);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            let joiner_msg = out
                .messages
                .iter()
                .find(|m| m.recipients == Recipients::User(UserId(9)))
                .expect("joiner unicast");
            assert_eq!(joiner_msg.key_count(), ev.path.len());
            // The joiner can decrypt it with its individual key.
            let bundle = &joiner_msg.bundles[0];
            assert_eq!(bundle.encrypted_with, ev.leaf_ref);
            let plain = KeyCipher::des_cbc().decrypt(&ik, &bundle.iv, &bundle.ciphertext).unwrap();
            assert_eq!(plain.len(), ev.path.len() * 8);
            // Each 8-byte slice is the corresponding new key.
            for (i, p) in ev.path.iter().enumerate() {
                assert_eq!(&plain[i * 8..(i + 1) * 8], p.new_key.material());
            }
        }
    }

    #[test]
    fn bundles_decrypt_under_declared_keys() {
        let (mut tree, mut src) = figure5_tree();
        // Capture old keys before the leave.
        let ik9 = src.generate_key(8);
        tree.join(UserId(9), ik9, &mut src).unwrap();
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        // key-oriented: the head bundle of each message decrypts under the
        // sibling's key, yielding that level's new key.
        let mut ivs = HmacDrbg::from_seed(6);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave(&ev, Strategy::KeyOriented);
        let mut checked = 0;
        for msg in &out.messages {
            let head = &msg.bundles[0];
            for level in ev.siblings.iter().flatten() {
                if level.key_ref == head.encrypted_with {
                    let plain = KeyCipher::des_cbc()
                        .decrypt(&level.key, &head.iv, &head.ciphertext)
                        .unwrap();
                    let target = head.targets[0];
                    let p = ev.path.iter().find(|p| p.new_ref == target).unwrap();
                    assert_eq!(plain, p.new_key.material());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn group_oriented_leave_single_message_size_grows_with_d() {
        // Paper: the leave rekey message is about d times bigger than the
        // join one. Check the key-count ratio on a full tree.
        let mut src = HmacDrbg::from_seed(7);
        let mut tree = KeyTree::new(4, 8, &mut src);
        for i in 0..64 {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        let ik = src.generate_key(8);
        let jev = tree.join(UserId(100), ik, &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(8);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let join_keys = rk.join(&jev, Strategy::GroupOriented).messages[0].key_count();
        let lev = tree.leave(UserId(100), &mut src).unwrap();
        let leave_keys = rk.leave(&lev, Strategy::GroupOriented).messages[0].key_count();
        assert!(
            leave_keys >= 3 * join_keys,
            "leave msg ({leave_keys} keys) should dwarf join msg ({join_keys} keys) at d=4"
        );
    }

    #[test]
    fn empty_group_leave_produces_no_messages() {
        let mut src = HmacDrbg::from_seed(9);
        let mut tree = KeyTree::new(4, 8, &mut src);
        let ik = src.generate_key(8);
        tree.join(UserId(1), ik, &mut src).unwrap();
        let ev = tree.leave(UserId(1), &mut src).unwrap();
        for strategy in Strategy::ALL {
            let mut ivs = HmacDrbg::from_seed(10);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert!(out.messages.is_empty(), "strategy {strategy:?}");
            assert_eq!(out.ops.key_encryptions, 0);
        }
    }

    #[test]
    fn refresh_message_decrypts_under_old_group_key() {
        let (mut tree, mut src) = figure5_tree();
        let (_, old_key) = tree.group_key();
        let path = tree.refresh_group_key(&mut src);
        let mut ivs = HmacDrbg::from_seed(13);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.refresh(&path);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.ops.key_encryptions, 1);
        let msg = &out.messages[0];
        assert_eq!(msg.recipients, Recipients::Group);
        let b = &msg.bundles[0];
        assert_eq!(b.encrypted_with, path.old_ref);
        assert_eq!(b.targets, vec![path.new_ref]);
        let plain = KeyCipher::des_cbc().decrypt(&old_key, &b.iv, &b.ciphertext).unwrap();
        assert_eq!(plain, tree.group_key().1.material());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!("user".parse::<Strategy>().unwrap(), Strategy::UserOriented);
        assert_eq!("key-oriented".parse::<Strategy>().unwrap(), Strategy::KeyOriented);
        assert_eq!("group".parse::<Strategy>().unwrap(), Strategy::GroupOriented);
        assert!("bogus".parse::<Strategy>().is_err());
        assert_eq!(Strategy::GroupOriented.name(), "group");
    }

    #[test]
    fn triple_des_cipher_works_end_to_end() {
        let mut src = HmacDrbg::from_seed(11);
        let mut tree = KeyTree::new(4, 24, &mut src);
        for i in 0..5 {
            let ik = src.generate_key(24);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        let ik = src.generate_key(24);
        let ev = tree.join(UserId(9), ik.clone(), &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(12);
        let mut rk = Rekeyer::new(KeyCipher::TripleDesCbc, &mut ivs);
        let out = rk.join(&ev, Strategy::GroupOriented);
        let joiner_msg =
            out.messages.iter().find(|m| matches!(m.recipients, Recipients::User(_))).unwrap();
        let b = &joiner_msg.bundles[0];
        let plain = KeyCipher::TripleDesCbc.decrypt(&ik, &b.iv, &b.ciphertext).unwrap();
        assert_eq!(plain.len(), ev.path.len() * 24);
    }
}
