//! Rekey message construction — the three strategies of Section 3.
//!
//! After a join or leave mutates the key tree, the server must deliver the
//! new path keys to exactly the users entitled to them. The paper proposes
//! three ways to package that delivery:
//!
//! * **User-oriented** (§3.3/§3.4): one message per user class, containing
//!   *precisely* the new keys that class needs, all encrypted under one key
//!   the class already holds. Most messages, most server encryptions,
//!   smallest messages per client.
//! * **Key-oriented** (Figures 6 and 8): each new key encrypted
//!   individually under its node's old key (join) or under each surviving
//!   child key (leave); ciphertexts are *stored and reused* across the
//!   per-subgroup messages, which is what brings the leave cost down from
//!   `(d−1)h(h−1)/2` to `d(h−1)` encryptions.
//! * **Group-oriented** (Figures 7 and 9): one rekey message carrying all
//!   new keys, multicast to the whole group; each client picks out what it
//!   can decrypt. Fewest messages and fewest server encryptions, but the
//!   biggest message on every client's wire.
//!
//! Plans are *materialized*: each [`KeyBundle`] carries a real ciphertext
//! produced by the configured cipher (DES-CBC in the paper), and an
//! [`OpCounts`] tally is returned so tests can check the Table 2 formulas
//! against reality.

use crate::ids::{KeyLabel, KeyRef, UserId};
use crate::tree::{JoinEvent, LeaveEvent, PathNode};
use kg_crypto::cbc::CbcCipher;
use kg_crypto::des::{Des, TripleDes};
use kg_crypto::{BlockCipher, CryptoError, KeySource, SymmetricKey};

/// The three rekeying strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One tailored message per user class (§3.3 "user-oriented").
    UserOriented,
    /// Per-key ciphertexts with reuse (Figures 6/8).
    KeyOriented,
    /// One message for the whole group (Figures 7/9).
    GroupOriented,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 3] =
        [Strategy::UserOriented, Strategy::KeyOriented, Strategy::GroupOriented];

    /// Short name used in reports ("user" / "key" / "group", as in the
    /// paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::UserOriented => "user",
            Strategy::KeyOriented => "key",
            Strategy::GroupOriented => "group",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "user" | "user-oriented" => Ok(Strategy::UserOriented),
            "key" | "key-oriented" => Ok(Strategy::KeyOriented),
            "group" | "group-oriented" => Ok(Strategy::GroupOriented),
            other => Err(format!("unknown strategy {other:?}")),
        }
    }
}

/// Whom a rekey message is addressed to. The server resolves these against
/// the key tree when sending (subgroup multicast in the paper; the
/// simulated network does the same).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipients {
    /// A single user (unicast).
    User(UserId),
    /// Every user holding the key at this label.
    Subgroup(KeyLabel),
    /// Users holding `include`'s key but not `exclude`'s — the
    /// `userset(K_i) − userset(K_{i+1})` sets of the join protocols.
    SubgroupExcept {
        /// Users must hold this key…
        include: KeyLabel,
        /// …and must not hold this one.
        exclude: KeyLabel,
    },
    /// The entire group.
    Group,
}

/// One ciphertext inside a rekey message: `targets` new keys (in order)
/// encrypted under `encrypted_with`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyBundle {
    /// References of the new keys inside the ciphertext, in plaintext order.
    pub targets: Vec<KeyRef>,
    /// Reference of the key the bundle is encrypted under.
    pub encrypted_with: KeyRef,
    /// CBC initialization vector.
    pub iv: Vec<u8>,
    /// The ciphertext (length = padded concatenation of target keys).
    pub ciphertext: Vec<u8>,
}

/// A rekey message: recipients plus one or more key bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RekeyMessage {
    /// Delivery scope.
    pub recipients: Recipients,
    /// Encrypted new keys.
    pub bundles: Vec<KeyBundle>,
}

impl RekeyMessage {
    /// Total number of encrypted keys carried (for cost accounting).
    pub fn key_count(&self) -> usize {
        self.bundles.iter().map(|b| b.targets.len()).sum()
    }
}

/// Cryptographic operation counts for one rekey operation, in the units of
/// the paper's cost model: `key_encryptions` counts *keys encrypted*, so a
/// bundle packing three keys into one ciphertext costs three.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Keys encrypted by the server.
    pub key_encryptions: u64,
    /// Fresh keys generated.
    pub keys_generated: u64,
}

/// Output of a rekey operation: the messages to send and the cost tally.
#[derive(Debug, Clone)]
pub struct RekeyOutput {
    /// Messages to deliver (the joiner's unicast, when present, is the one
    /// with `Recipients::User`).
    pub messages: Vec<RekeyMessage>,
    /// Server-side operation counts.
    pub ops: OpCounts,
}

/// Key-encryption engine used to materialize bundles.
///
/// The paper's prototype used DES-CBC; [`KeyCipher::des_cbc`] is the
/// default. The trait-object-free enum keeps the hot path monomorphic
/// while still letting the benchmark harness ablate the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCipher {
    /// DES in CBC mode (the paper's configuration).
    DesCbc,
    /// Triple-DES EDE3 in CBC mode (ablation option).
    TripleDesCbc,
}

impl KeyCipher {
    /// The paper's configuration.
    pub fn des_cbc() -> Self {
        KeyCipher::DesCbc
    }

    /// Bytes of key material each encryption key must supply.
    pub fn key_len(self) -> usize {
        match self {
            KeyCipher::DesCbc => Des::KEY_SIZE,
            KeyCipher::TripleDesCbc => TripleDes::KEY_SIZE,
        }
    }

    /// Cipher block size (8 for both DES variants).
    pub fn block_len(self) -> usize {
        match self {
            KeyCipher::DesCbc => Des::BLOCK_SIZE,
            KeyCipher::TripleDesCbc => TripleDes::BLOCK_SIZE,
        }
    }

    /// Ciphertext size for a plaintext of `plain` bytes.
    pub fn ciphertext_len(self, plain: usize) -> usize {
        (plain / self.block_len() + 1) * self.block_len()
    }

    /// Encrypt `plaintext` under `key` with the given IV.
    pub fn encrypt(self, key: &SymmetricKey, iv: &[u8], plaintext: &[u8]) -> Vec<u8> {
        match self {
            KeyCipher::DesCbc => {
                let c = CbcCipher::new(Des::new(key.material()).expect("checked key length"));
                c.encrypt(plaintext, iv)
            }
            KeyCipher::TripleDesCbc => {
                let c = CbcCipher::new(TripleDes::new(key.material()).expect("checked key length"));
                c.encrypt(plaintext, iv)
            }
        }
    }

    /// Decrypt a bundle ciphertext.
    pub fn decrypt(
        self,
        key: &SymmetricKey,
        iv: &[u8],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match self {
            KeyCipher::DesCbc => {
                let c = CbcCipher::new(Des::new(key.material())?);
                c.decrypt(ciphertext, iv)
            }
            KeyCipher::TripleDesCbc => {
                let c = CbcCipher::new(TripleDes::new(key.material())?);
                c.decrypt(ciphertext, iv)
            }
        }
    }
}

/// Context for materializing rekey messages: cipher choice plus the IV
/// source.
pub struct Rekeyer<'a> {
    cipher: KeyCipher,
    ivs: &'a mut dyn KeySource,
}

impl<'a> Rekeyer<'a> {
    /// Create a rekeyer.
    pub fn new(cipher: KeyCipher, ivs: &'a mut dyn KeySource) -> Self {
        Rekeyer { cipher, ivs }
    }

    /// The cipher in use.
    pub fn cipher(&self) -> KeyCipher {
        self.cipher
    }

    fn bundle(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle {
        let mut plaintext = Vec::with_capacity(targets.len() * 8);
        for (_, key) in targets {
            plaintext.extend_from_slice(key.material());
        }
        let iv = self.ivs.generate(self.cipher.block_len());
        let ciphertext = self.cipher.encrypt(encrypting_key, &iv, &plaintext);
        ops.key_encryptions += targets.len() as u64;
        KeyBundle {
            targets: targets.iter().map(|(r, _)| *r).collect(),
            encrypted_with: encrypting_ref,
            iv,
            ciphertext,
        }
    }

    /// Construct the rekey messages for a join under `strategy`.
    pub fn join(&mut self, ev: &JoinEvent, strategy: Strategy) -> RekeyOutput {
        let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
        let mut messages = Vec::new();
        let path = &ev.path; // root-first: x_0 … x_j
        let j = path.len() - 1;

        match strategy {
            Strategy::UserOriented => {
                // For each x_i: the users holding old K_i but not K_{i+1}
                // get {K'_0 … K'_i} under old K_i.
                for i in 0..=j {
                    let targets: Vec<(KeyRef, &SymmetricKey)> =
                        path[..=i].iter().map(|p| (p.new_ref, &p.new_key)).collect();
                    let b = self.bundle(&mut ops, path[i].old_ref, &path[i].old_key, &targets);
                    messages.push(RekeyMessage {
                        recipients: Recipients::SubgroupExcept {
                            include: path[i].label,
                            exclude: ev.path_child[i],
                        },
                        bundles: vec![b],
                    });
                }
            }
            Strategy::KeyOriented => {
                // Each new key encrypted once under its old key; the
                // ciphertexts are shared across the per-class messages
                // (Figure 6's combined form).
                let singles: Vec<KeyBundle> = path
                    .iter()
                    .map(|p| {
                        self.bundle_dedup_count(
                            &mut ops, p.old_ref, &p.old_key, p.new_ref, &p.new_key,
                        )
                    })
                    .collect();
                // Message for class i carries {K'_0}_{K_0} … {K'_i}_{K_i}.
                for i in 0..=j {
                    messages.push(RekeyMessage {
                        recipients: Recipients::SubgroupExcept {
                            include: path[i].label,
                            exclude: ev.path_child[i],
                        },
                        bundles: singles[..=i].to_vec(),
                    });
                }
            }
            Strategy::GroupOriented => {
                // One multicast with every {K'_i}_{K_i}.
                let bundles: Vec<KeyBundle> = path
                    .iter()
                    .map(|p| {
                        let t = [(p.new_ref, &p.new_key)];
                        self.bundle(&mut ops, p.old_ref, &p.old_key, &t)
                    })
                    .collect();
                messages.push(RekeyMessage { recipients: Recipients::Group, bundles });
            }
        }

        // All strategies unicast the full new path to the joiner under its
        // individual key.
        let joiner_targets: Vec<(KeyRef, &SymmetricKey)> =
            path.iter().map(|p| (p.new_ref, &p.new_key)).collect();
        let b = self.bundle(&mut ops, ev.leaf_ref, &ev.leaf_key, &joiner_targets);
        messages.push(RekeyMessage { recipients: Recipients::User(ev.user), bundles: vec![b] });

        RekeyOutput { messages, ops }
    }

    /// Crate-internal bundle constructor for strategy extensions (the §7
    /// hybrid in [`crate::hybrid`]).
    pub(crate) fn bundle_for(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle {
        self.bundle(ops, encrypting_ref, encrypting_key, targets)
    }

    /// Like [`Self::bundle`] for a single target, used where the paper
    /// counts each stored ciphertext exactly once.
    fn bundle_dedup_count(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        target_ref: KeyRef,
        target_key: &SymmetricKey,
    ) -> KeyBundle {
        let t = [(target_ref, target_key)];
        self.bundle(ops, encrypting_ref, encrypting_key, &t)
    }

    /// Construct the rekey message for a group-key refresh (key-version
    /// bump with no membership change): the new root key encrypted under
    /// the old one, multicast to the whole group. Every strategy degrades
    /// to this single message when only the root changes.
    pub fn refresh(&mut self, path: &PathNode) -> RekeyOutput {
        let mut ops = OpCounts { keys_generated: 1, ..OpCounts::default() };
        let b = self.bundle_dedup_count(
            &mut ops,
            path.old_ref,
            &path.old_key,
            path.new_ref,
            &path.new_key,
        );
        RekeyOutput {
            messages: vec![RekeyMessage { recipients: Recipients::Group, bundles: vec![b] }],
            ops,
        }
    }

    /// Construct the rekey messages for a leave under `strategy`.
    ///
    /// Returns an empty output when the group became empty (no recipients).
    pub fn leave(&mut self, ev: &LeaveEvent, strategy: Strategy) -> RekeyOutput {
        let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
        let mut messages = Vec::new();
        if ev.path.is_empty() {
            return RekeyOutput { messages, ops };
        }
        let path = &ev.path; // root-first: x_0 … x_j
        let j = path.len() - 1;

        match strategy {
            Strategy::UserOriented => {
                // For each x_i and each unchanged child y of x_i: a message
                // {K'_i, K'_{i-1} … K'_0} under y's key, to userset(y).
                for i in 0..=j {
                    // New keys of x_i and all its ancestors, node-first.
                    let targets: Vec<(KeyRef, &SymmetricKey)> =
                        (0..=i).rev().map(|l| (path[l].new_ref, &path[l].new_key)).collect();
                    for sib in &ev.siblings[i] {
                        let b = self.bundle(&mut ops, sib.key_ref, &sib.key, &targets);
                        messages.push(RekeyMessage {
                            recipients: Recipients::Subgroup(sib.label),
                            bundles: vec![b],
                        });
                    }
                }
            }
            Strategy::KeyOriented => {
                // Stored chain ciphertexts {K'_{i-1}}_{K'_i} computed once.
                let chain: Vec<KeyBundle> = (1..=j)
                    .map(|i| {
                        self.bundle_dedup_count(
                            &mut ops,
                            path[i].new_ref,
                            &path[i].new_key,
                            path[i - 1].new_ref,
                            &path[i - 1].new_key,
                        )
                    })
                    .collect();
                // For each x_i, each unchanged child y: M = {K'_i}_K,
                // {K'_{i-1}}_{K'_i}, …, {K'_0}_{K'_1}.
                for (i, sibs) in ev.siblings.iter().enumerate().take(j + 1) {
                    for sib in sibs {
                        let head = self.bundle_dedup_count(
                            &mut ops,
                            sib.key_ref,
                            &sib.key,
                            path[i].new_ref,
                            &path[i].new_key,
                        );
                        let mut bundles = vec![head];
                        // chain[i-1] is {K'_{i-1}}_{K'_i}; walk down to
                        // {K'_0}_{K'_1}.
                        for l in (0..i).rev() {
                            bundles.push(chain[l].clone());
                        }
                        messages.push(RekeyMessage {
                            recipients: Recipients::Subgroup(sib.label),
                            bundles,
                        });
                    }
                }
            }
            Strategy::GroupOriented => {
                // L_i = {K'_i} under each child key of x_i; children on the
                // path use their *new* keys.
                let mut bundles = Vec::new();
                for (i, sibs) in ev.siblings.iter().enumerate().take(j + 1) {
                    for sib in sibs {
                        bundles.push(self.bundle_dedup_count(
                            &mut ops,
                            sib.key_ref,
                            &sib.key,
                            path[i].new_ref,
                            &path[i].new_key,
                        ));
                    }
                    if i < j {
                        // The path child x_{i+1} holds its fresh key K'_{i+1}.
                        bundles.push(self.bundle_dedup_count(
                            &mut ops,
                            path[i + 1].new_ref,
                            &path[i + 1].new_key,
                            path[i].new_ref,
                            &path[i].new_key,
                        ));
                    }
                }
                messages.push(RekeyMessage { recipients: Recipients::Group, bundles });
            }
        }
        RekeyOutput { messages, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::KeyTree;
    use kg_crypto::drbg::HmacDrbg;

    /// Build the Figure 5 tree: degree 3, users u1..u8 (then u9 joins).
    fn figure5_tree() -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(55);
        let mut tree = KeyTree::new(3, 8, &mut src);
        for i in 1..=8 {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        (tree, src)
    }

    fn h(tree: &KeyTree) -> usize {
        tree.height()
    }

    #[test]
    fn join_message_counts_match_paper() {
        // Figure 5 join: user-oriented → h msgs (incl. joiner), key-oriented
        // → h msgs, group-oriented → 2 msgs.
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik, &mut src).unwrap();
        let height = h(&tree);
        assert_eq!(height, 3);
        for (strategy, expected_msgs) in [
            (Strategy::UserOriented, height), // h−1 classes + joiner
            (Strategy::KeyOriented, height),  // same recipient classes
            (Strategy::GroupOriented, 2),     // one multicast + joiner
        ] {
            let mut ivs = HmacDrbg::from_seed(1);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            assert_eq!(out.messages.len(), expected_msgs, "strategy {strategy:?}");
        }
    }

    #[test]
    fn join_encryption_costs_match_table2() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik, &mut src).unwrap();
        let height = h(&tree) as u64; // 3
        let cases = [
            // user-oriented: h(h+1)/2 − 1
            (Strategy::UserOriented, height * (height + 1) / 2 - 1),
            // key-oriented and group-oriented: 2(h−1)
            (Strategy::KeyOriented, 2 * (height - 1)),
            (Strategy::GroupOriented, 2 * (height - 1)),
        ];
        for (strategy, expected) in cases {
            let mut ivs = HmacDrbg::from_seed(2);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            assert_eq!(out.ops.key_encryptions, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn leave_message_counts_match_paper() {
        // Figure 5 leave of u9 from the 9-user tree: (d−1)(h−1) messages for
        // user/key-oriented, 1 for group-oriented.
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        tree.join(UserId(9), ik, &mut src).unwrap();
        let d = tree.degree() as u64;
        let height = h(&tree) as u64;
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        for (strategy, expected) in [
            (Strategy::UserOriented, ((d - 1) * (height - 1)) as usize),
            (Strategy::KeyOriented, ((d - 1) * (height - 1)) as usize),
            (Strategy::GroupOriented, 1),
        ] {
            let mut ivs = HmacDrbg::from_seed(3);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert_eq!(out.messages.len(), expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn leave_encryption_costs_match_table2() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        tree.join(UserId(9), ik, &mut src).unwrap();
        let d = tree.degree() as u64;
        let height = h(&tree) as u64;
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        // The paper's own Figure 5 example: key-oriented sends
        // {k1-8}k123, {k1-8}k456, {k1-8}k78, {k78}k7, {k78}k8 — five
        // encryptions. Table 2's d(h−1) rounds the leaving level up to d
        // children; the exact count on a full tree is (d−1) + d(h−2).
        let exact_key_group = (d - 1) + d * (height - 2);
        for (strategy, expected) in [
            // user-oriented: (d−1)·h(h−1)/2 (exact here: every level has
            // d−1 unchanged children).
            (Strategy::UserOriented, (d - 1) * height * (height - 1) / 2),
            (Strategy::KeyOriented, exact_key_group),
            (Strategy::GroupOriented, exact_key_group),
        ] {
            let mut ivs = HmacDrbg::from_seed(4);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert_eq!(out.ops.key_encryptions, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn joiner_always_gets_full_path() {
        let (mut tree, mut src) = figure5_tree();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(9), ik.clone(), &mut src).unwrap();
        for strategy in Strategy::ALL {
            let mut ivs = HmacDrbg::from_seed(5);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.join(&ev, strategy);
            let joiner_msg = out
                .messages
                .iter()
                .find(|m| m.recipients == Recipients::User(UserId(9)))
                .expect("joiner unicast");
            assert_eq!(joiner_msg.key_count(), ev.path.len());
            // The joiner can decrypt it with its individual key.
            let bundle = &joiner_msg.bundles[0];
            assert_eq!(bundle.encrypted_with, ev.leaf_ref);
            let plain = KeyCipher::des_cbc().decrypt(&ik, &bundle.iv, &bundle.ciphertext).unwrap();
            assert_eq!(plain.len(), ev.path.len() * 8);
            // Each 8-byte slice is the corresponding new key.
            for (i, p) in ev.path.iter().enumerate() {
                assert_eq!(&plain[i * 8..(i + 1) * 8], p.new_key.material());
            }
        }
    }

    #[test]
    fn bundles_decrypt_under_declared_keys() {
        let (mut tree, mut src) = figure5_tree();
        // Capture old keys before the leave.
        let ik9 = src.generate_key(8);
        tree.join(UserId(9), ik9, &mut src).unwrap();
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        // key-oriented: the head bundle of each message decrypts under the
        // sibling's key, yielding that level's new key.
        let mut ivs = HmacDrbg::from_seed(6);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave(&ev, Strategy::KeyOriented);
        let mut checked = 0;
        for msg in &out.messages {
            let head = &msg.bundles[0];
            for level in ev.siblings.iter().flatten() {
                if level.key_ref == head.encrypted_with {
                    let plain = KeyCipher::des_cbc()
                        .decrypt(&level.key, &head.iv, &head.ciphertext)
                        .unwrap();
                    let target = head.targets[0];
                    let p = ev.path.iter().find(|p| p.new_ref == target).unwrap();
                    assert_eq!(plain, p.new_key.material());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn group_oriented_leave_single_message_size_grows_with_d() {
        // Paper: the leave rekey message is about d times bigger than the
        // join one. Check the key-count ratio on a full tree.
        let mut src = HmacDrbg::from_seed(7);
        let mut tree = KeyTree::new(4, 8, &mut src);
        for i in 0..64 {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        let ik = src.generate_key(8);
        let jev = tree.join(UserId(100), ik, &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(8);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let join_keys = rk.join(&jev, Strategy::GroupOriented).messages[0].key_count();
        let lev = tree.leave(UserId(100), &mut src).unwrap();
        let leave_keys = rk.leave(&lev, Strategy::GroupOriented).messages[0].key_count();
        assert!(
            leave_keys >= 3 * join_keys,
            "leave msg ({leave_keys} keys) should dwarf join msg ({join_keys} keys) at d=4"
        );
    }

    #[test]
    fn empty_group_leave_produces_no_messages() {
        let mut src = HmacDrbg::from_seed(9);
        let mut tree = KeyTree::new(4, 8, &mut src);
        let ik = src.generate_key(8);
        tree.join(UserId(1), ik, &mut src).unwrap();
        let ev = tree.leave(UserId(1), &mut src).unwrap();
        for strategy in Strategy::ALL {
            let mut ivs = HmacDrbg::from_seed(10);
            let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.leave(&ev, strategy);
            assert!(out.messages.is_empty(), "strategy {strategy:?}");
            assert_eq!(out.ops.key_encryptions, 0);
        }
    }

    #[test]
    fn refresh_message_decrypts_under_old_group_key() {
        let (mut tree, mut src) = figure5_tree();
        let (_, old_key) = tree.group_key();
        let path = tree.refresh_group_key(&mut src);
        let mut ivs = HmacDrbg::from_seed(13);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.refresh(&path);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.ops.key_encryptions, 1);
        let msg = &out.messages[0];
        assert_eq!(msg.recipients, Recipients::Group);
        let b = &msg.bundles[0];
        assert_eq!(b.encrypted_with, path.old_ref);
        assert_eq!(b.targets, vec![path.new_ref]);
        let plain = KeyCipher::des_cbc().decrypt(&old_key, &b.iv, &b.ciphertext).unwrap();
        assert_eq!(plain, tree.group_key().1.material());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!("user".parse::<Strategy>().unwrap(), Strategy::UserOriented);
        assert_eq!("key-oriented".parse::<Strategy>().unwrap(), Strategy::KeyOriented);
        assert_eq!("group".parse::<Strategy>().unwrap(), Strategy::GroupOriented);
        assert!("bogus".parse::<Strategy>().is_err());
        assert_eq!(Strategy::GroupOriented.name(), "group");
    }

    #[test]
    fn triple_des_cipher_works_end_to_end() {
        let mut src = HmacDrbg::from_seed(11);
        let mut tree = KeyTree::new(4, 24, &mut src);
        for i in 0..5 {
            let ik = src.generate_key(24);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        let ik = src.generate_key(24);
        let ev = tree.join(UserId(9), ik.clone(), &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(12);
        let mut rk = Rekeyer::new(KeyCipher::TripleDesCbc, &mut ivs);
        let out = rk.join(&ev, Strategy::GroupOriented);
        let joiner_msg =
            out.messages.iter().find(|m| matches!(m.recipients, Recipients::User(_))).unwrap();
        let b = &joiner_msg.bundles[0];
        let plain = KeyCipher::TripleDesCbc.decrypt(&ik, &b.iv, &b.ciphertext).unwrap();
        assert_eq!(plain.len(), ev.path.len() * 24);
    }
}
