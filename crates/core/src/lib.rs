//! # kg-core — secure groups using key graphs
//!
//! The primary contribution of *"Secure Group Communications Using Key
//! Graphs"* (Wong, Gouda, Lam; SIGCOMM '98), implemented as a library:
//!
//! * [`keygraph`] — the Section 2 formalism: secure groups `(U, K, R)` as
//!   DAGs of u-nodes and k-nodes, `keyset`/`userset`, and the NP-hard
//!   key-covering problem (exact + greedy solvers).
//! * [`star`] — the conventional baseline: one group key, Θ(n) leaves.
//! * [`tree`] — key trees with the full-and-balanced maintenance heuristic;
//!   joins and leaves return the changed-path events the strategies need.
//! * [`complete`] — the 2^n−1-key extreme, for bracketing the design space.
//! * [`rekey`] — the three rekeying strategies (user-, key-,
//!   group-oriented) materializing real DES-CBC-encrypted rekey messages,
//!   with the paper's cost accounting.
//! * [`merkle`] — signing a batch of rekey messages with one RSA operation
//!   (Section 4).
//! * [`cost`] — the analytical model behind Tables 1–3.
//!
//! ## Quick tour
//!
//! ```
//! use kg_core::prelude::*;
//! use kg_crypto::drbg::HmacDrbg;
//! use kg_crypto::KeySource;
//!
//! let mut keys = HmacDrbg::from_seed(1);
//! let mut ivs = HmacDrbg::from_seed(2);
//! let mut tree = KeyTree::new(4, 8, &mut keys);
//!
//! // Admit nine users.
//! for i in 0..9 {
//!     let individual = keys.generate_key(8);
//!     let event = tree.join(UserId(i), individual, &mut keys).unwrap();
//!     let mut rekeyer = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
//!     let out = rekeyer.join(&event, Strategy::GroupOriented);
//!     assert!(!out.messages.is_empty());
//! }
//!
//! // One leave: the whole path to the root is rekeyed.
//! let event = tree.leave(UserId(3), &mut keys).unwrap();
//! let mut rekeyer = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
//! let out = rekeyer.leave(&event, Strategy::GroupOriented);
//! assert_eq!(out.messages.len(), 1); // single multicast
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod complete;
pub mod cost;
pub mod derive;
pub mod hybrid;
pub mod ids;
pub mod keygraph;
pub mod merkle;
pub mod rekey;
pub mod serial;
pub mod star;
pub mod tree;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::batch::{BatchChild, BatchEvent, BatchJoin, MarkedNode};
    pub use crate::derive::{derive_key, links_from_path, DerivedLink, DERIVATION_CODE_LEN};
    pub use crate::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
    pub use crate::keygraph::KeyGraph;
    pub use crate::rekey::{
        build_derived_join, build_join, build_leave, build_refresh, BundleCache, BundleSink,
        IvStream, KeyBundle, KeyCipher, OpCounts, Recipients, RekeyMessage, RekeyOutput, Rekeyer,
        SealingSink, Strategy,
    };
    pub use crate::star::StarGroup;
    pub use crate::tree::{
        JoinEvent, JoinPolicy, KeyTree, LeaveEvent, PathNode, SiblingChild, TreeError,
    };
}

pub use prelude::*;
