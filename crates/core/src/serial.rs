//! Key-tree serialization and root-key digest — the `kg-persist` substrate.
//!
//! Snapshots must restore a [`KeyTree`] *exactly*: the arena layout (node
//! slots, free list, label counter) determines which slots future joins
//! reuse, so a structurally-equal-but-reindexed tree would diverge from
//! the original on the very next operation. The encoding here therefore
//! serializes the arena verbatim rather than a normalized view, making
//! continuation after recovery byte-identical to never having crashed.
//!
//! [`root_digest`] hashes the current group key (label, version, material)
//! with SHA-256; the recovery path uses it to prove the replayed tree
//! converged on the same root key the pre-crash server held.

use crate::ids::{KeyLabel, KeyVersion, UserId};
use crate::tree::{JoinPolicy, KeyTree, Node};
use kg_crypto::sha256::Sha256;
use kg_crypto::{Digest, SymmetricKey};
use std::collections::BTreeMap;

/// Format tag for the tree encoding (bumped on incompatible changes).
const TREE_MAGIC: &[u8; 4] = b"KGT1";

/// Upper bound accepted for any count/length field when decoding (guards
/// allocation on corrupt snapshots).
const MAX_ITEMS: usize = 1 << 24;

/// Errors from decoding a serialized tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The magic/version header did not match.
    BadMagic,
    /// A structural check failed while rebuilding the arena.
    Corrupt(&'static str),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Truncated => write!(f, "serialized tree is truncated"),
            SerialError::BadMagic => write!(f, "not a serialized key tree (bad magic)"),
            SerialError::Corrupt(what) => write!(f, "corrupt serialized tree: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, SerialError> {
    let (&b, rest) = buf.split_first().ok_or(SerialError::Truncated)?;
    *buf = rest;
    Ok(b)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, SerialError> {
    if buf.len() < 4 {
        return Err(SerialError::Truncated);
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_be_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, SerialError> {
    if buf.len() < 8 {
        return Err(SerialError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_be_bytes(head.try_into().expect("8 bytes")))
}

fn get_count(buf: &mut &[u8]) -> Result<usize, SerialError> {
    let n = get_u32(buf)? as usize;
    if n > MAX_ITEMS {
        return Err(SerialError::Corrupt("count exceeds sanity bound"));
    }
    Ok(n)
}

fn put_opt_index(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.push(0),
        Some(i) => {
            out.push(1);
            put_u64(out, i as u64);
        }
    }
}

fn get_opt_index(buf: &mut &[u8]) -> Result<Option<usize>, SerialError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(buf)? as usize)),
        _ => Err(SerialError::Corrupt("bad option tag")),
    }
}

/// Serialize a tree, arena layout included, to a stable binary form.
pub fn encode_tree(tree: &KeyTree) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(TREE_MAGIC);
    put_u32(&mut out, tree.degree as u32);
    put_u32(&mut out, tree.key_len as u32);
    out.push(match tree.policy {
        JoinPolicy::Balanced => 0,
        JoinPolicy::FirstFit => 1,
    });
    put_u64(&mut out, tree.root as u64);
    put_u64(&mut out, tree.next_label);
    put_u32(&mut out, tree.nodes.len() as u32);
    for slot in &tree.nodes {
        match slot {
            None => out.push(0),
            Some(node) => {
                out.push(1);
                put_u64(&mut out, node.label.0);
                put_u64(&mut out, node.version.0);
                put_u32(&mut out, node.key.len() as u32);
                out.extend_from_slice(node.key.material());
                put_opt_index(&mut out, node.parent);
                put_u32(&mut out, node.children.len() as u32);
                for &c in &node.children {
                    put_u64(&mut out, c as u64);
                }
                put_opt_index(&mut out, node.user.map(|u| u.0 as usize));
                put_u64(&mut out, node.size as u64);
            }
        }
    }
    put_u32(&mut out, tree.free.len() as u32);
    for &f in &tree.free {
        put_u64(&mut out, f as u64);
    }
    put_u32(&mut out, tree.users.len() as u32);
    for (&u, &leaf) in &tree.users {
        put_u64(&mut out, u.0);
        put_u64(&mut out, leaf as u64);
    }
    out
}

/// Rebuild a tree from [`encode_tree`] output. The result continues the
/// original's behaviour exactly (same arena slots, same label counter).
pub fn decode_tree(bytes: &[u8]) -> Result<KeyTree, SerialError> {
    let mut buf = bytes;
    if buf.len() < 4 || &buf[..4] != TREE_MAGIC {
        return Err(SerialError::BadMagic);
    }
    buf = &buf[4..];
    let degree = get_u32(&mut buf)? as usize;
    let key_len = get_u32(&mut buf)? as usize;
    if degree < 2 || key_len == 0 {
        return Err(SerialError::Corrupt("invalid degree/key length"));
    }
    let policy = match get_u8(&mut buf)? {
        0 => JoinPolicy::Balanced,
        1 => JoinPolicy::FirstFit,
        _ => return Err(SerialError::Corrupt("bad join policy tag")),
    };
    let root = get_u64(&mut buf)? as usize;
    let next_label = get_u64(&mut buf)?;
    let n_slots = get_count(&mut buf)?;
    let mut nodes: Vec<Option<Node>> = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        match get_u8(&mut buf)? {
            0 => nodes.push(None),
            1 => {
                let label = KeyLabel(get_u64(&mut buf)?);
                let version = KeyVersion(get_u64(&mut buf)?);
                let klen = get_count(&mut buf)?;
                if buf.len() < klen {
                    return Err(SerialError::Truncated);
                }
                let key = SymmetricKey::from_bytes(&buf[..klen]);
                buf = &buf[klen..];
                let parent = get_opt_index(&mut buf)?;
                let n_children = get_count(&mut buf)?;
                let mut children = Vec::with_capacity(n_children);
                for _ in 0..n_children {
                    children.push(get_u64(&mut buf)? as usize);
                }
                let user = get_opt_index(&mut buf)?.map(|u| UserId(u as u64));
                let size = get_u64(&mut buf)? as usize;
                nodes.push(Some(Node { label, version, key, parent, children, user, size }));
            }
            _ => return Err(SerialError::Corrupt("bad node slot tag")),
        }
    }
    let n_free = get_count(&mut buf)?;
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push(get_u64(&mut buf)? as usize);
    }
    let n_users = get_count(&mut buf)?;
    let mut users = BTreeMap::new();
    for _ in 0..n_users {
        let u = UserId(get_u64(&mut buf)?);
        let leaf = get_u64(&mut buf)? as usize;
        users.insert(u, leaf);
    }
    if !buf.is_empty() {
        return Err(SerialError::Corrupt("trailing bytes"));
    }

    // Structural sanity before handing the arena back: every stored index
    // must reference a live slot, or later `node()` calls would panic.
    let live = |id: usize| nodes.get(id).is_some_and(|n| n.is_some());
    if !live(root) {
        return Err(SerialError::Corrupt("root index dead"));
    }
    for node in nodes.iter().flatten() {
        if let Some(p) = node.parent {
            if !live(p) {
                return Err(SerialError::Corrupt("parent index dead"));
            }
        }
        for &c in &node.children {
            if !live(c) {
                return Err(SerialError::Corrupt("child index dead"));
            }
        }
    }
    for &f in &free {
        if f >= nodes.len() || nodes[f].is_some() {
            return Err(SerialError::Corrupt("free-list entry live"));
        }
    }
    for &leaf in users.values() {
        if !live(leaf) {
            return Err(SerialError::Corrupt("user leaf dead"));
        }
    }
    Ok(KeyTree { degree, key_len, policy, nodes, free, root, users, next_label })
}

/// SHA-256 digest of the current group (root) key: label, version, and
/// material. Two trees agree on this iff they hold the same group key.
pub fn root_digest(tree: &KeyTree) -> [u8; 32] {
    let (key_ref, key) = tree.group_key();
    let mut material = Vec::with_capacity(16 + key.len());
    material.extend_from_slice(&key_ref.label.0.to_be_bytes());
    material.extend_from_slice(&key_ref.version.0.to_be_bytes());
    material.extend_from_slice(key.material());
    let d = Sha256::digest(&material);
    let mut out = [0u8; 32];
    out.copy_from_slice(&d);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::drbg::HmacDrbg;
    use kg_crypto::KeySource;

    fn churned_tree(seed: u64, ops: u64) -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(seed);
        let mut tree = KeyTree::new(4, 8, &mut src);
        let mut present = Vec::new();
        for i in 0..ops {
            if i % 3 == 2 && present.len() > 1 {
                let u = present.remove((i as usize * 13) % present.len());
                tree.leave(UserId(u), &mut src).unwrap();
            } else {
                let ik = src.generate_key(8);
                tree.join(UserId(i), ik, &mut src).unwrap();
                present.push(i);
            }
        }
        (tree, src)
    }

    #[test]
    fn roundtrip_preserves_structure_and_keys() {
        let (tree, _) = churned_tree(0xD00D, 120);
        let encoded = encode_tree(&tree);
        let restored = decode_tree(&encoded).unwrap();
        restored.check_invariants();
        assert_eq!(restored.degree(), tree.degree());
        assert_eq!(restored.key_len(), tree.key_len());
        assert_eq!(restored.user_count(), tree.user_count());
        assert_eq!(restored.group_key(), tree.group_key());
        for u in tree.members().collect::<Vec<_>>() {
            assert_eq!(restored.keyset(u), tree.keyset(u));
        }
        assert_eq!(encode_tree(&restored), encoded, "re-encoding is stable");
    }

    #[test]
    fn restored_tree_continues_identically() {
        let (mut tree, mut src) = churned_tree(0xFACE, 60);
        let mut restored = decode_tree(&encode_tree(&tree)).unwrap();
        let mut src2 = src.clone();
        // The same future operations must produce identical events.
        let ik = src.generate_key(8);
        let ik2 = src2.generate_key(8);
        let ev_a = tree.join(UserId(9001), ik, &mut src).unwrap();
        let ev_b = restored.join(UserId(9001), ik2, &mut src2).unwrap();
        assert_eq!(ev_a.leaf_label, ev_b.leaf_label);
        assert_eq!(tree.group_key(), restored.group_key());
        let lv_a = tree.leave(UserId(9001), &mut src).unwrap();
        let lv_b = restored.leave(UserId(9001), &mut src2).unwrap();
        assert_eq!(lv_a.removed_leaf, lv_b.removed_leaf);
        assert_eq!(tree.group_key(), restored.group_key());
        assert_eq!(root_digest(&tree), root_digest(&restored));
    }

    #[test]
    fn root_digest_tracks_group_key() {
        let (mut tree, mut src) = churned_tree(7, 20);
        let before = root_digest(&tree);
        assert_eq!(before, root_digest(&decode_tree(&encode_tree(&tree)).unwrap()));
        let departing = tree.members().next().unwrap();
        tree.leave(departing, &mut src).unwrap();
        assert_ne!(before, root_digest(&tree), "rekey must change the digest");
    }

    #[test]
    fn truncation_and_corruption_are_errors_not_panics() {
        let (tree, _) = churned_tree(3, 40);
        let encoded = encode_tree(&tree);
        for cut in 0..encoded.len() {
            assert!(decode_tree(&encoded[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = encoded.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_tree(&bad).unwrap_err(), SerialError::BadMagic);
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(decode_tree(&trailing).is_err());
    }

    #[test]
    fn dangling_indices_rejected() {
        let (tree, _) = churned_tree(4, 10);
        let mut clone = tree.clone();
        // Point the root at a hole in the arena.
        clone.nodes.push(None);
        clone.root = clone.nodes.len() - 1;
        let encoded = encode_tree(&clone);
        assert!(matches!(decode_tree(&encoded), Err(SerialError::Corrupt(_))));
    }
}
