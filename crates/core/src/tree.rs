//! Key trees — the paper's scalable special class of key graphs.
//!
//! A key tree is a single-root tree of k-nodes: the root holds the group
//! key, leaves hold individual keys (one per user), and interior nodes hold
//! subgroup keys. Joins attach a new individual-key leaf at a *joining
//! point*; leaves remove one and rekey from the *leaving point*; in both
//! cases every key on the path to the root is replaced (backward secrecy on
//! join, forward secrecy on leave).
//!
//! The server in the paper "employs a heuristic that attempts to build and
//! maintain a key tree that is full and balanced". Ours:
//!
//! * **Join:** attach at the shallowest interior node with fewer than `d`
//!   children (ties broken by smaller subtree). If every interior node is
//!   full, *split* the shallowest leaf: a fresh interior node takes the
//!   leaf's place and adopts both the displaced leaf and the newcomer.
//! * **Leave:** remove the leaf; if the leaving point drops to a single
//!   child (and is not the root), splice that child into the grandparent so
//!   degenerate chains never accumulate.
//!
//! Every mutation returns an event ([`JoinEvent`] / [`LeaveEvent`])
//! carrying the old and new keys along the changed path — exactly the
//! information the three rekeying strategies in [`crate::rekey`] need to
//! construct rekey messages.

use crate::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use kg_crypto::{KeySource, SymmetricKey};
use std::collections::{BTreeMap, VecDeque};

/// Arena index of a node.
pub(crate) type NodeId = usize;

/// Errors from key-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The user is already a member.
    AlreadyMember(UserId),
    /// The user is not a member.
    NotAMember(UserId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::AlreadyMember(u) => write!(f, "{u} is already a group member"),
            TreeError::NotAMember(u) => write!(f, "{u} is not a group member"),
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) label: KeyLabel,
    pub(crate) version: KeyVersion,
    pub(crate) key: SymmetricKey,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// `Some(u)` iff this is the individual-key leaf of user `u`.
    pub(crate) user: Option<UserId>,
    /// Number of users in this node's subtree (cached for heuristics).
    pub(crate) size: usize,
}

/// One changed k-node on the rekey path.
///
/// `old` is the key the node held *before* the operation — the key under
/// which the new key may safely be encrypted for the node's previous
/// holders. For a node freshly created by a leaf split there is no previous
/// key; the displaced user's individual key plays that role (its holders —
/// just the displaced user — are exactly the node's previous userset).
#[derive(Debug, Clone)]
pub struct PathNode {
    /// The k-node's stable label.
    pub label: KeyLabel,
    /// Reference (label + version) of the replacement key.
    pub new_ref: KeyRef,
    /// The replacement key material.
    pub new_key: SymmetricKey,
    /// Reference of the pre-operation key used to protect the new one.
    pub old_ref: KeyRef,
    /// The pre-operation key material.
    pub old_key: SymmetricKey,
}

/// A sibling subtree that survives a leave unchanged: the rekey strategies
/// encrypt the leaving path's new keys under these children's keys.
#[derive(Debug, Clone)]
pub struct SiblingChild {
    /// The child k-node's label.
    pub label: KeyLabel,
    /// Its (unchanged) key reference.
    pub key_ref: KeyRef,
    /// Its key material.
    pub key: SymmetricKey,
}

/// Result of a successful join.
///
/// # Key-cover iteration order (stable)
///
/// The event's key-cover — the set of (encrypting key, new key) pairs a
/// rekey strategy iterates — is exposed in a **stable, documented
/// order**: `path` is root-first (x_0 … x_j, the joining point last),
/// and within each path node the encrypting candidates are visited in
/// the order the fields present them (`old_ref` before `leaf_ref`).
/// No hash-ordered container is involved anywhere in the construction
/// (children are `Vec`s, the user index is a `BTreeMap`), so two equal
/// trees given the same operation yield identical event sequences on
/// every platform and run. The rekey builders consume events in this
/// order, which fixes the server's IV-stream assignment; the parallel
/// pipeline's byte-identity guarantee (`kg-par`) and the batch cover
/// ([`crate::batch::BatchEvent::key_cover`]) both build on it.
#[derive(Debug, Clone)]
pub struct JoinEvent {
    /// The joining user.
    pub user: UserId,
    /// Label of the new individual-key leaf.
    pub leaf_label: KeyLabel,
    /// Reference of the joiner's individual key.
    pub leaf_ref: KeyRef,
    /// The joiner's individual key (established by the authentication
    /// exchange; carried here so the server can encrypt the joiner's copy
    /// of the new path keys).
    pub leaf_key: SymmetricKey,
    /// Changed k-nodes ordered root-first (x_0 … x_j in Figure 6); the last
    /// entry is the joining point.
    pub path: Vec<PathNode>,
    /// For each path node x_i, the label of x_{i+1} — the child on the path
    /// (for x_j this is the joiner's leaf). Used to address
    /// "userset(K_i) − userset(K_{i+1})" rekey messages.
    pub path_child: Vec<KeyLabel>,
    /// `Some(w)` when the join split w's leaf (w gained an ancestor).
    pub displaced: Option<UserId>,
}

/// Result of a successful leave.
///
/// # Key-cover iteration order (stable)
///
/// As for [`JoinEvent`]: `path` is root-first, and `siblings[i]` lists
/// x_i's surviving children in the parent's child-slot order (the order
/// the arena stores them — insertion order, maintained across splices),
/// with the on-path child excluded. The order is fully deterministic —
/// no hash maps participate — and is a documented contract: rekey
/// builders iterate exactly this sequence, which pins the IV stream and
/// makes the parallel pipeline's deterministic merge possible.
#[derive(Debug, Clone)]
pub struct LeaveEvent {
    /// The departing user.
    pub user: UserId,
    /// Label of the removed individual-key leaf.
    pub removed_leaf: KeyLabel,
    /// Changed k-nodes ordered root-first (x_0 … x_j in Figure 8); the last
    /// entry is the leaving point. Empty iff the group became empty.
    pub path: Vec<PathNode>,
    /// For each path node x_i, its children *other than* x_{i+1} (all
    /// children, for the leaving point), with their unchanged keys.
    pub siblings: Vec<Vec<SiblingChild>>,
}

/// Where new members are attached — the paper's server "employs a
/// heuristic that attempts to build and maintain a key tree that is full
/// and balanced"; this enum lets the benchmark harness ablate that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// Shallowest interior node with room (ties to the smaller subtree);
    /// split the shallowest leaf when full. The default, and the paper's
    /// intent.
    #[default]
    Balanced,
    /// First interior node with room in depth-first order; split the first
    /// leaf found when full. Cheap to compute but lets the tree go lopsided
    /// — the ablation benchmark quantifies the height (and therefore
    /// rekey-cost) penalty.
    FirstFit,
}

/// A key tree of degree `d`.
#[derive(Debug, Clone)]
pub struct KeyTree {
    pub(crate) degree: usize,
    pub(crate) key_len: usize,
    pub(crate) policy: JoinPolicy,
    pub(crate) nodes: Vec<Option<Node>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) users: BTreeMap<UserId, NodeId>,
    pub(crate) next_label: u64,
}

impl KeyTree {
    /// Create an empty tree of the given degree with `key_len`-byte keys
    /// and the balanced join heuristic.
    ///
    /// # Panics
    /// Panics if `degree < 2` (a unary "tree" cannot host subgroups) or
    /// `key_len == 0`.
    pub fn new(degree: usize, key_len: usize, source: &mut dyn KeySource) -> Self {
        Self::with_policy(degree, key_len, JoinPolicy::Balanced, source)
    }

    /// Create a tree with an explicit join-point policy (ablations).
    pub fn with_policy(
        degree: usize,
        key_len: usize,
        policy: JoinPolicy,
        source: &mut dyn KeySource,
    ) -> Self {
        assert!(degree >= 2, "key tree degree must be at least 2");
        assert!(key_len > 0, "key length must be positive");
        let mut tree = KeyTree {
            degree,
            key_len,
            policy,
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            users: BTreeMap::new(),
            next_label: 0,
        };
        let root = tree.alloc(source, None, None);
        tree.root = root;
        tree
    }

    /// The tree's degree parameter `d`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of users (members).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// All current members.
    pub fn members(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users.keys().copied()
    }

    /// Whether `u` is a member.
    pub fn is_member(&self, u: UserId) -> bool {
        self.users.contains_key(&u)
    }

    /// Number of k-nodes in the tree.
    pub fn key_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// The current group key (root key) reference and material.
    pub fn group_key(&self) -> (KeyRef, SymmetricKey) {
        let root = self.node(self.root);
        (KeyRef::new(root.label, root.version), root.key.clone())
    }

    /// Tree height `h` — the number of edges on the longest root-to-user
    /// path, counting the user's edge to its individual-key leaf. This is
    /// the `h` of the paper's cost formulas; a user holds at most `h` keys.
    pub fn height(&self) -> usize {
        // A root-to-user path crosses every k-node from the user's leaf to
        // the root plus the final u-node edge, so the edge count equals the
        // number of k-nodes on the path (h = 2 for a star: leaf + root).
        self.users.values().map(|&leaf| self.depth_knodes(leaf)).max().unwrap_or(1)
    }

    /// Number of k-nodes on the path from `node` to the root, inclusive.
    pub(crate) fn depth_knodes(&self, node: NodeId) -> usize {
        let mut d = 1;
        let mut cur = node;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// The keys held by a member, leaf-first (individual key, …, group
    /// key). Returns `None` for non-members.
    pub fn keyset(&self, u: UserId) -> Option<Vec<(KeyRef, SymmetricKey)>> {
        let &leaf = self.users.get(&u)?;
        let mut out = Vec::new();
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            let n = self.node(id);
            out.push((KeyRef::new(n.label, n.version), n.key.clone()));
            cur = n.parent;
        }
        Some(out)
    }

    /// The users holding the key at `label` (the subtree's members).
    pub fn userset(&self, label: KeyLabel) -> Vec<UserId> {
        match self.find_label(label) {
            None => Vec::new(),
            Some(id) => self.users_below(id),
        }
    }

    /// Users holding `include`'s key but not `exclude`'s — the recipient
    /// set "userset(K_i) − userset(K_{i+1})" of the join protocols.
    pub fn userset_except(&self, include: KeyLabel, exclude: KeyLabel) -> Vec<UserId> {
        let excluded: std::collections::BTreeSet<UserId> =
            self.userset(exclude).into_iter().collect();
        self.userset(include).into_iter().filter(|u| !excluded.contains(u)).collect()
    }

    /// The root's children with their current keys — the top-level
    /// subtrees. The §7 hybrid strategy allocates one multicast address
    /// per entry and addresses all rekey traffic at this granularity.
    pub fn root_children(&self) -> Vec<SiblingChild> {
        self.node(self.root)
            .children
            .iter()
            .map(|&c| {
                let n = self.node(c);
                SiblingChild {
                    label: n.label,
                    key_ref: KeyRef::new(n.label, n.version),
                    key: n.key.clone(),
                }
            })
            .collect()
    }

    /// Snapshot of the tree as a general [`crate::keygraph::KeyGraph`]
    /// (used by multi-group merging and by tests cross-checking the (U,K,R)
    /// semantics).
    pub fn to_key_graph(&self) -> crate::keygraph::KeyGraph {
        let mut g = crate::keygraph::KeyGraph::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            g.add_key(node.label);
            if let Some(p) = node.parent {
                g.add_key_edge(node.label, self.node(p).label);
            }
            if let Some(u) = node.user {
                g.add_user_edge(u, node.label);
            }
            let _ = id;
        }
        g
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Admit `u` with the given individual key (from the authentication
    /// exchange); rekey the path from the joining point to the root.
    pub fn join(
        &mut self,
        u: UserId,
        individual_key: SymmetricKey,
        source: &mut dyn KeySource,
    ) -> Result<JoinEvent, TreeError> {
        self.join_inner(u, individual_key, source, NewKeyMode::Fresh)
    }

    /// Admit `u` deriving the changed path keys from `code` instead of
    /// drawing them from `source` — the [`crate::rekey::Strategy::Derived`]
    /// join. Each changed node's replacement is
    /// [`crate::derive::derive_key`]`(old, code, label, new_version)`, where
    /// `old` is the key the event reports as `old_key` (for a node freshly
    /// created by a leaf split, the displaced member's individual key — the
    /// one key its sole previous holder can derive from). `source` still
    /// supplies the structural leaf allocation, so shipped and derived
    /// joins consume the DRBG identically per node allocated.
    pub fn join_derived(
        &mut self,
        u: UserId,
        individual_key: SymmetricKey,
        source: &mut dyn KeySource,
        code: &[u8],
    ) -> Result<JoinEvent, TreeError> {
        self.join_inner(u, individual_key, source, NewKeyMode::Derived(code))
    }

    fn join_inner(
        &mut self,
        u: UserId,
        individual_key: SymmetricKey,
        source: &mut dyn KeySource,
        mode: NewKeyMode<'_>,
    ) -> Result<JoinEvent, TreeError> {
        if self.users.contains_key(&u) {
            return Err(TreeError::AlreadyMember(u));
        }
        // Locate the joining point, splitting a leaf if the tree is full.
        let (joining_point, fresh_old): (NodeId, Option<(KeyRef, SymmetricKey)>) =
            match self.find_join_slot() {
                JoinSlot::Interior(id) => (id, None),
                JoinSlot::SplitLeaf(leaf_id) => {
                    let displaced_ref;
                    let displaced_key;
                    {
                        let leaf = self.node(leaf_id);
                        displaced_ref = KeyRef::new(leaf.label, leaf.version);
                        displaced_key = leaf.key.clone();
                    }
                    let parent = self.node(leaf_id).parent;
                    let fresh = self.alloc(source, parent, None);
                    // Swap fresh into the displaced leaf's position.
                    if let Some(p) = parent {
                        let pos = self
                            .node(p)
                            .children
                            .iter()
                            .position(|&c| c == leaf_id)
                            .expect("child link");
                        self.node_mut(p).children[pos] = fresh;
                    } else {
                        unreachable!("a leaf always has a parent (the root is never a user leaf)");
                    }
                    self.node_mut(fresh).children.push(leaf_id);
                    self.node_mut(leaf_id).parent = Some(fresh);
                    let displaced_size = self.node(leaf_id).size;
                    self.node_mut(fresh).size = displaced_size;
                    (fresh, Some((displaced_ref, displaced_key)))
                }
            };
        let displaced = fresh_old
            .is_some()
            .then(|| self.node(self.node(joining_point).children[0]).user)
            .flatten();

        // Attach the new individual-key leaf.
        let leaf = self.alloc(source, Some(joining_point), Some(u));
        self.node_mut(leaf).key = individual_key.clone();
        self.node_mut(joining_point).children.push(leaf);
        self.users.insert(u, leaf);
        for anc in self.ancestors_inclusive(joining_point) {
            self.node_mut(anc).size += 1;
        }

        // Rekey the path joining point → root. The joining point's "old
        // key" is the displaced leaf's key when the node is fresh.
        let mut path = Vec::new();
        let mut path_child = Vec::new();
        let mut child_label = {
            let n = self.node(leaf);
            n.label
        };
        let mut cur = Some(joining_point);
        let mut fresh_old = fresh_old;
        while let Some(id) = cur {
            let (old_ref, old_key) = match (id == joining_point, fresh_old.take()) {
                (true, Some(old)) => old,
                _ => {
                    let n = self.node(id);
                    (KeyRef::new(n.label, n.version), n.key.clone())
                }
            };
            let new_key = match mode {
                NewKeyMode::Fresh => source.generate_key(self.key_len),
                NewKeyMode::Derived(code) => {
                    let n = self.node(id);
                    crate::derive::derive_key(
                        &old_key,
                        code,
                        n.label,
                        n.version.next(),
                        self.key_len,
                    )
                }
            };
            let node = self.node_mut(id);
            node.version = node.version.next();
            node.key = new_key.clone();
            path.push(PathNode {
                label: node.label,
                new_ref: KeyRef::new(node.label, node.version),
                new_key,
                old_ref,
                old_key,
            });
            path_child.push(child_label);
            child_label = self.node(id).label;
            cur = self.node(id).parent;
        }
        // We built leaf-first; the protocols index root-first.
        path.reverse();
        path_child.reverse();

        let leaf_node = self.node(leaf);
        Ok(JoinEvent {
            user: u,
            leaf_label: leaf_node.label,
            leaf_ref: KeyRef::new(leaf_node.label, leaf_node.version),
            leaf_key: individual_key,
            path,
            path_child,
            displaced,
        })
    }

    /// Remove `u`; rekey the path from the leaving point to the root.
    pub fn leave(
        &mut self,
        u: UserId,
        source: &mut dyn KeySource,
    ) -> Result<LeaveEvent, TreeError> {
        let leaf = self.users.remove(&u).ok_or(TreeError::NotAMember(u))?;
        let removed_leaf = self.node(leaf).label;
        let parent = self.node(leaf).parent.expect("user leaf has a parent");
        // Unlink and free the leaf.
        let pos = self.node(parent).children.iter().position(|&c| c == leaf).expect("child link");
        self.node_mut(parent).children.remove(pos);
        self.dealloc(leaf);
        for anc in self.ancestors_inclusive(parent) {
            self.node_mut(anc).size -= 1;
        }

        // Contract a now-unary, non-root leaving point: splice its single
        // child into the grandparent. The departing user never held the
        // child's key, so the child's subtree needs no rekey; the rekey
        // path then starts at the grandparent.
        let mut leaving_point = parent;
        if self.node(parent).children.len() == 1 && parent != self.root {
            let only_child = self.node(parent).children[0];
            let grand = self.node(parent).parent.expect("non-root");
            let pos =
                self.node(grand).children.iter().position(|&c| c == parent).expect("child link");
            self.node_mut(grand).children[pos] = only_child;
            self.node_mut(only_child).parent = Some(grand);
            self.dealloc(parent);
            leaving_point = grand;
        }

        if self.users.is_empty() {
            // Last member gone: refresh the root key (no recipients).
            let new_key = source.generate_key(self.key_len);
            let root = self.node_mut(self.root);
            root.version = root.version.next();
            root.key = new_key;
            return Ok(LeaveEvent {
                user: u,
                removed_leaf,
                path: Vec::new(),
                siblings: Vec::new(),
            });
        }

        // Rekey leaving point → root, capturing sibling children at each
        // level. Built leaf-first, then reversed to root-first. The
        // "sibling children" at x_i exclude x_{i+1}, i.e. exclude the node
        // we processed in the previous iteration.
        let mut path = Vec::new();
        let mut siblings = Vec::new();
        let mut prev: Option<NodeId> = None;
        let mut cur = Some(leaving_point);
        while let Some(id) = cur {
            let sibs: Vec<SiblingChild> = self
                .node(id)
                .children
                .iter()
                .copied()
                .filter(|&c| Some(c) != prev)
                .map(|c| {
                    let n = self.node(c);
                    SiblingChild {
                        label: n.label,
                        key_ref: KeyRef::new(n.label, n.version),
                        key: n.key.clone(),
                    }
                })
                .collect();
            let (old_ref, old_key) = {
                let n = self.node(id);
                (KeyRef::new(n.label, n.version), n.key.clone())
            };
            let new_key = source.generate_key(self.key_len);
            let node = self.node_mut(id);
            node.version = node.version.next();
            node.key = new_key.clone();
            path.push(PathNode {
                label: node.label,
                new_ref: KeyRef::new(node.label, node.version),
                new_key,
                old_ref,
                old_key,
            });
            siblings.push(sibs);
            prev = Some(id);
            cur = self.node(id).parent;
        }
        path.reverse();
        siblings.reverse();
        Ok(LeaveEvent { user: u, removed_leaf, path, siblings })
    }

    /// Replace the group key without any membership change — a
    /// key-version bump. Used for periodic rotation and to force a fresh
    /// group key after crash recovery. The returned [`PathNode`] carries
    /// the old root key (under which the new one may be encrypted for the
    /// current membership) and the new root key.
    pub fn refresh_group_key(&mut self, source: &mut dyn KeySource) -> PathNode {
        let new_key = source.generate_key(self.key_len);
        self.install_root_key(new_key)
    }

    /// Replace the group key by derivation from `code` — the
    /// [`crate::rekey::Strategy::Derived`] refresh. Every current member
    /// holds the old root key, so everyone (and only the current
    /// membership) can recompute the new one; nothing is shipped.
    pub fn refresh_group_key_derived(&mut self, code: &[u8]) -> PathNode {
        let n = self.node(self.root);
        let new_key =
            crate::derive::derive_key(&n.key, code, n.label, n.version.next(), self.key_len);
        self.install_root_key(new_key)
    }

    fn install_root_key(&mut self, new_key: SymmetricKey) -> PathNode {
        let (old_ref, old_key) = {
            let n = self.node(self.root);
            (KeyRef::new(n.label, n.version), n.key.clone())
        };
        let root = self.node_mut(self.root);
        root.version = root.version.next();
        root.key = new_key.clone();
        PathNode {
            label: root.label,
            new_ref: KeyRef::new(root.label, root.version),
            new_key,
            old_ref,
            old_key,
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    pub(crate) fn alloc(
        &mut self,
        source: &mut dyn KeySource,
        parent: Option<NodeId>,
        user: Option<UserId>,
    ) -> NodeId {
        let node = Node {
            label: KeyLabel(self.next_label),
            version: KeyVersion::default(),
            key: source.generate_key(self.key_len),
            parent,
            children: Vec::new(),
            user,
            size: user.map_or(0, |_| 1),
        };
        self.next_label += 1;
        match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(node);
                id
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) {
        self.nodes[id] = None;
        self.free.push(id);
    }

    pub(crate) fn ancestors_inclusive(&self, from: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(from);
        while let Some(id) = cur {
            out.push(id);
            cur = self.node(id).parent;
        }
        out
    }

    fn users_below(&self, id: NodeId) -> Vec<UserId> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([id]);
        while let Some(n) = queue.pop_front() {
            let node = self.node(n);
            if let Some(u) = node.user {
                out.push(u);
            }
            queue.extend(node.children.iter().copied());
        }
        out
    }

    fn find_label(&self, label: KeyLabel) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.as_ref().is_some_and(|n| n.label == label))
    }

    pub(crate) fn find_join_slot(&self) -> JoinSlot {
        match self.policy {
            JoinPolicy::Balanced => self.find_join_slot_balanced(),
            JoinPolicy::FirstFit => self.find_join_slot_first_fit(),
        }
    }

    /// Depth-first first-fit: the ablation baseline.
    fn find_join_slot_first_fit(&self) -> JoinSlot {
        let mut stack = vec![self.root];
        let mut first_leaf = None;
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.user.is_some() {
                first_leaf.get_or_insert(id);
                continue;
            }
            if node.children.len() < self.degree {
                return JoinSlot::Interior(id);
            }
            stack.extend(node.children.iter().rev().copied());
        }
        JoinSlot::SplitLeaf(first_leaf.expect("full tree has leaves"))
    }

    /// BFS for the shallowest interior node with room; if the interior of
    /// the tree is full, pick the shallowest user leaf to split.
    fn find_join_slot_balanced(&self) -> JoinSlot {
        let mut queue = VecDeque::from([self.root]);
        let mut best_interior: Option<(usize, usize, NodeId)> = None; // (depth, size, id)
        let mut best_leaf: Option<(usize, NodeId)> = None;
        let mut depths: Vec<usize> = vec![0; self.nodes.len()];
        while let Some(id) = queue.pop_front() {
            let node = self.node(id);
            let depth = depths[id];
            if node.user.is_some() {
                if best_leaf.is_none_or(|(d, _)| depth < d) {
                    best_leaf = Some((depth, id));
                }
                continue;
            }
            if node.children.len() < self.degree {
                let cand = (depth, node.size, id);
                if best_interior.is_none_or(|(d, s, _)| (depth, node.size) < (d, s)) {
                    best_interior = Some(cand);
                }
            }
            for &c in &node.children {
                depths[c] = depth + 1;
                queue.push_back(c);
            }
        }
        match best_interior {
            Some((_, _, id)) => JoinSlot::Interior(id),
            None => JoinSlot::SplitLeaf(best_leaf.expect("full tree has leaves").1),
        }
    }

    /// Structural invariants, asserted by tests after every mutation.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen_labels = std::collections::BTreeSet::new();
        let mut user_leaves = 0usize;
        for (id, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            assert!(seen_labels.insert(node.label), "duplicate label {:?}", node.label);
            assert!(node.children.len() <= self.degree, "degree bound violated");
            for &c in &node.children {
                assert_eq!(self.node(c).parent, Some(id), "parent link broken");
            }
            if let Some(u) = node.user {
                assert!(node.children.is_empty(), "user leaf with children");
                assert_eq!(self.users.get(&u), Some(&id), "user map out of sync");
                user_leaves += 1;
            }
            assert_eq!(
                node.size,
                self.users_below(id).len(),
                "size cache wrong at {:?}",
                node.label
            );
            // No unary interior nodes except the root.
            if node.user.is_none() && id != self.root {
                assert!(node.children.len() >= 2, "unary interior node {:?}", node.label);
            }
        }
        assert_eq!(user_leaves, self.users.len(), "member count mismatch");
        assert!(self.nodes[self.root].is_some(), "root freed");
        assert!(self.node(self.root).parent.is_none(), "root has a parent");
    }
}

pub(crate) enum JoinSlot {
    Interior(NodeId),
    SplitLeaf(NodeId),
}

/// How a mutation obtains replacement keys for changed path nodes:
/// drawn fresh from the DRBG (the paper's shipped strategies) or derived
/// from each node's old key and a published code (`Strategy::Derived`).
pub(crate) enum NewKeyMode<'a> {
    Fresh,
    Derived(&'a [u8]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_crypto::drbg::HmacDrbg;

    fn setup(degree: usize) -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(0xBEEF);
        let tree = KeyTree::new(degree, 8, &mut src);
        (tree, src)
    }

    fn join(tree: &mut KeyTree, src: &mut HmacDrbg, id: u64) -> JoinEvent {
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(id), ik, src).unwrap();
        tree.check_invariants();
        ev
    }

    /// The documented key-cover order is stable: two trees built by the
    /// same operation sequence yield events whose covers (path refs,
    /// sibling refs level by level) are element-for-element identical,
    /// and sibling order matches the parent's child-slot order.
    #[test]
    fn event_key_cover_order_is_stable() {
        let run = || {
            let (mut tree, mut src) = setup(3);
            let mut trace: Vec<(KeyRef, KeyRef)> = Vec::new();
            for i in 0..40 {
                let ev = join(&mut tree, &mut src, i);
                for (k, p) in ev.path.iter().enumerate() {
                    trace.push((p.old_ref, p.new_ref));
                    assert!(
                        k + 1 >= ev.path.len() || p.label != ev.path[k + 1].label,
                        "path nodes distinct"
                    );
                }
            }
            for i in (0..40).step_by(3) {
                let ev = tree.leave(UserId(i), &mut src).unwrap();
                tree.check_invariants();
                assert_eq!(ev.path.len(), ev.siblings.len());
                for (p, sibs) in ev.path.iter().zip(&ev.siblings) {
                    for s in sibs {
                        trace.push((s.key_ref, p.new_ref));
                    }
                }
            }
            trace
        };
        assert_eq!(run(), run(), "same ops must produce the same key-cover sequence");
    }

    #[test]
    fn empty_tree_shape() {
        let (tree, _) = setup(3);
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.key_count(), 1); // just the root
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn first_join_attaches_to_root() {
        let (mut tree, mut src) = setup(3);
        let ev = join(&mut tree, &mut src, 1);
        assert_eq!(tree.user_count(), 1);
        assert_eq!(ev.path.len(), 1); // only the root changed
        assert_eq!(ev.displaced, None);
        assert_eq!(tree.height(), 2); // u -> k_u -> root
        let ks = tree.keyset(UserId(1)).unwrap();
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn join_rekeys_whole_path_and_bumps_versions() {
        let (mut tree, mut src) = setup(2);
        for i in 1..=4 {
            join(&mut tree, &mut src, i);
        }
        let (root_ref_before, root_key_before) = tree.group_key();
        let ev = join(&mut tree, &mut src, 5);
        let (root_ref_after, root_key_after) = tree.group_key();
        assert_eq!(root_ref_after.label, root_ref_before.label);
        assert!(root_ref_after.version > root_ref_before.version);
        assert_ne!(root_key_after, root_key_before);
        // The path's first element is the root; old key matches pre-state.
        assert_eq!(ev.path[0].old_ref, root_ref_before);
        assert_eq!(ev.path[0].old_key, root_key_before);
        assert_eq!(ev.path[0].new_key, root_key_after);
    }

    #[test]
    fn figure5_join_shape() {
        // Degree-3 tree with 8 users grouped (3,3,2): joining u9 should
        // attach at the 2-user subgroup and change exactly that subgroup
        // key and the root (two path nodes), as in Figure 5.
        let (mut tree, mut src) = setup(3);
        for i in 1..=8 {
            join(&mut tree, &mut src, i);
        }
        assert_eq!(tree.height(), 3);
        let ev = join(&mut tree, &mut src, 9);
        assert_eq!(ev.path.len(), 2, "root + joining point");
        assert_eq!(tree.height(), 3);
        // Everyone holds 3 keys now (full balanced 3-ary tree of 9).
        for i in 1..=9 {
            assert_eq!(tree.keyset(UserId(i)).unwrap().len(), 3);
        }
    }

    #[test]
    fn join_splits_leaf_when_full() {
        // Degree 2: after 2 users the root is full; the third join splits.
        let (mut tree, mut src) = setup(2);
        join(&mut tree, &mut src, 1);
        join(&mut tree, &mut src, 2);
        let ev = join(&mut tree, &mut src, 3);
        assert!(ev.displaced.is_some());
        let w = ev.displaced.unwrap();
        assert!(w == UserId(1) || w == UserId(2));
        // The displaced user now holds 3 keys; the other old user only 2.
        let other = if w == UserId(1) { UserId(2) } else { UserId(1) };
        assert_eq!(tree.keyset(w).unwrap().len(), 3);
        assert_eq!(tree.keyset(other).unwrap().len(), 2);
        // The joining point (fresh node) old key = displaced individual key.
        let jp = ev.path.last().unwrap();
        let w_leaf = tree.keyset(w).unwrap()[0].clone();
        assert_eq!(jp.old_ref.label, w_leaf.0.label);
    }

    #[test]
    fn leave_rekeys_path_and_removes_leaf() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=9 {
            join(&mut tree, &mut src, i);
        }
        let (gk_before, _) = tree.group_key();
        let ev = tree.leave(UserId(9), &mut src).unwrap();
        tree.check_invariants();
        assert_eq!(tree.user_count(), 8);
        assert!(!tree.is_member(UserId(9)));
        let (gk_after, _) = tree.group_key();
        assert!(gk_after.version > gk_before.version);
        // Path root-first; last entry is the leaving point.
        assert!(!ev.path.is_empty());
        assert_eq!(ev.path[0].label, gk_after.label);
        // Siblings per level are nonempty (there are survivors).
        for level in &ev.siblings {
            assert!(!level.is_empty());
        }
    }

    #[test]
    fn leave_contracts_unary_interior() {
        // Degree 2, three users: u3 under a split node with u-something.
        let (mut tree, mut src) = setup(2);
        for i in 1..=3 {
            join(&mut tree, &mut src, i);
        }
        // Leaving one member of the 2-subgroup must contract the subgroup
        // node away: everyone back to 2 keys.
        let three_key_user =
            (1..=3).map(UserId).find(|&u| tree.keyset(u).unwrap().len() == 3).unwrap();
        tree.leave(three_key_user, &mut src).unwrap();
        tree.check_invariants();
        for u in (1..=3).map(UserId).filter(|&u| tree.is_member(u)) {
            assert_eq!(tree.keyset(u).unwrap().len(), 2);
        }
        assert_eq!(tree.key_count(), 3); // root + 2 leaves
    }

    #[test]
    fn last_leave_empties_tree_but_keeps_root() {
        let (mut tree, mut src) = setup(4);
        join(&mut tree, &mut src, 1);
        let (gk_before, _) = tree.group_key();
        let ev = tree.leave(UserId(1), &mut src).unwrap();
        tree.check_invariants();
        assert!(ev.path.is_empty());
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.key_count(), 1);
        let (gk_after, _) = tree.group_key();
        assert!(gk_after.version > gk_before.version, "root key must still rotate");
    }

    #[test]
    fn refresh_rotates_root_only() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=9 {
            join(&mut tree, &mut src, i);
        }
        let (gk_before, key_before) = tree.group_key();
        let keysets_before: Vec<_> = (1..=9).map(|i| tree.keyset(UserId(i)).unwrap()).collect();
        let path = tree.refresh_group_key(&mut src);
        tree.check_invariants();
        let (gk_after, key_after) = tree.group_key();
        assert_eq!(path.old_ref, gk_before);
        assert_eq!(path.old_key, key_before);
        assert_eq!(path.new_ref, gk_after);
        assert_eq!(path.new_key, key_after);
        assert_eq!(gk_after.label, gk_before.label);
        assert!(gk_after.version > gk_before.version);
        assert_ne!(key_after, key_before);
        // Every non-root key is untouched.
        for (i, before) in (1..=9).zip(keysets_before) {
            let after = tree.keyset(UserId(i)).unwrap();
            assert_eq!(before.len(), after.len());
            for (b, a) in before.iter().zip(&after).take(before.len() - 1) {
                assert_eq!(b, a);
            }
        }
    }

    #[test]
    fn duplicate_join_and_phantom_leave_rejected() {
        let (mut tree, mut src) = setup(4);
        join(&mut tree, &mut src, 1);
        let ik = src.generate_key(8);
        assert_eq!(
            tree.join(UserId(1), ik, &mut src).unwrap_err(),
            TreeError::AlreadyMember(UserId(1))
        );
        assert_eq!(
            tree.leave(UserId(99), &mut src).unwrap_err(),
            TreeError::NotAMember(UserId(99))
        );
    }

    #[test]
    fn height_tracks_log_d() {
        for d in [2usize, 4, 8] {
            let (mut tree, mut src) = setup(d);
            let n = 64;
            for i in 0..n {
                join(&mut tree, &mut src, i);
            }
            let h = tree.height();
            let ideal = 1 + (n as f64).log(d as f64).ceil() as usize;
            assert!(h <= ideal + 1, "degree {d}: height {h} too far above ideal {ideal}");
        }
    }

    #[test]
    fn key_count_close_to_paper_formula() {
        // Table 1: a full balanced tree holds about d/(d-1) * n keys.
        let d = 4usize;
        let (mut tree, mut src) = setup(d);
        let n = 256;
        for i in 0..n {
            join(&mut tree, &mut src, i);
        }
        let expected = (d as f64) / (d as f64 - 1.0) * n as f64;
        let actual = tree.key_count() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.15,
            "key count {actual} vs formula {expected}"
        );
    }

    #[test]
    fn userset_and_userset_except() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=9 {
            join(&mut tree, &mut src, i);
        }
        let (gk, _) = tree.group_key();
        let mut all = tree.userset(gk.label);
        all.sort();
        assert_eq!(all, (1..=9).map(UserId).collect::<Vec<_>>());
        // Excluding a subgroup leaves the complement.
        let u5_path = tree.keyset(UserId(5)).unwrap();
        let subgroup_label = u5_path[1].0.label; // u5's subgroup key
        let rest = tree.userset_except(gk.label, subgroup_label);
        assert!(!rest.contains(&UserId(5)));
        assert_eq!(rest.len(), 9 - tree.userset(subgroup_label).len());
    }

    #[test]
    fn to_key_graph_matches_tree_semantics() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=7 {
            join(&mut tree, &mut src, i);
        }
        let g = tree.to_key_graph();
        assert_eq!(g.user_count(), 7);
        assert_eq!(g.key_count(), tree.key_count());
        for u in tree.members().collect::<Vec<_>>() {
            let tree_ks: std::collections::BTreeSet<KeyLabel> =
                tree.keyset(u).unwrap().into_iter().map(|(r, _)| r.label).collect();
            assert_eq!(g.keyset(u), tree_ks);
        }
        let (gk, _) = tree.group_key();
        assert_eq!(g.roots(), vec![gk.label]);
    }

    #[test]
    fn join_path_child_alignment() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=8 {
            join(&mut tree, &mut src, i);
        }
        let ev = join(&mut tree, &mut src, 9);
        assert_eq!(ev.path.len(), ev.path_child.len());
        // The last path_child is the joiner's leaf.
        assert_eq!(*ev.path_child.last().unwrap(), ev.leaf_label);
        // Each path_child[i] is the label of path[i+1] for i < last.
        for i in 0..ev.path.len() - 1 {
            assert_eq!(ev.path_child[i], ev.path[i + 1].label);
        }
    }

    #[test]
    fn first_fit_policy_valid_but_less_balanced() {
        // Under heavy churn the first-fit heuristic must stay structurally
        // valid, and the balanced heuristic should never end up taller.
        let mut src = HmacDrbg::from_seed(0xAB1E);
        let mut balanced = KeyTree::new(3, 8, &mut src);
        let mut firstfit = KeyTree::with_policy(3, 8, JoinPolicy::FirstFit, &mut src);
        let mut present = Vec::new();
        for i in 0..300u64 {
            if i % 5 == 4 && present.len() > 1 {
                let u: u64 = present.remove((i as usize * 31) % present.len());
                balanced.leave(UserId(u), &mut src).unwrap();
                firstfit.leave(UserId(u), &mut src).unwrap();
            } else {
                let ik1 = src.generate_key(8);
                let ik2 = src.generate_key(8);
                balanced.join(UserId(i), ik1, &mut src).unwrap();
                firstfit.join(UserId(i), ik2, &mut src).unwrap();
                present.push(i);
            }
            balanced.check_invariants();
            firstfit.check_invariants();
        }
        assert!(
            balanced.height() <= firstfit.height(),
            "balanced {} vs first-fit {}",
            balanced.height(),
            firstfit.height()
        );
    }

    #[test]
    fn churn_preserves_invariants() {
        let (mut tree, mut src) = setup(4);
        let mut present: Vec<u64> = Vec::new();
        for i in 0..200u64 {
            if i % 3 == 2 && !present.is_empty() {
                let idx = (i as usize * 7) % present.len();
                let u = present.remove(idx);
                tree.leave(UserId(u), &mut src).unwrap();
            } else {
                let ik = src.generate_key(8);
                tree.join(UserId(i), ik, &mut src).unwrap();
                present.push(i);
            }
            tree.check_invariants();
        }
        assert_eq!(tree.user_count(), present.len());
    }

    #[test]
    fn derived_join_keys_recomputable_from_old_keys() {
        // Every changed key equals derive_key(old, code, label, new_version)
        // — exactly what a member holding `old` computes from the code.
        let (mut tree, mut src) = setup(3);
        for i in 1..=8 {
            join(&mut tree, &mut src, i);
        }
        let code = [0x5Au8; 16];
        let ik = src.generate_key(8);
        let ev = tree.join_derived(UserId(9), ik, &mut src, &code).unwrap();
        tree.check_invariants();
        for p in &ev.path {
            let want = crate::derive::derive_key(&p.old_key, &code, p.label, p.new_ref.version, 8);
            assert_eq!(p.new_key, want);
        }
        // And the tree really installed them.
        let (gk_ref, gk) = tree.group_key();
        assert_eq!(gk_ref, ev.path[0].new_ref);
        assert_eq!(gk, ev.path[0].new_key);
    }

    #[test]
    fn derived_split_join_derives_fresh_node_from_displaced_leaf() {
        let (mut tree, mut src) = setup(2);
        join(&mut tree, &mut src, 1);
        join(&mut tree, &mut src, 2);
        let code = [7u8; 16];
        let ik = src.generate_key(8);
        let ev = tree.join_derived(UserId(3), ik, &mut src, &code).unwrap();
        tree.check_invariants();
        assert!(ev.displaced.is_some());
        // The displaced member's (unchanged) individual key is the
        // derive-from source for the freshly split node.
        let jp = ev.path.last().unwrap();
        let w_leaf_key = tree.keyset(ev.displaced.unwrap()).unwrap()[0].1.clone();
        let want = crate::derive::derive_key(&w_leaf_key, &code, jp.label, jp.new_ref.version, 8);
        assert_eq!(jp.new_key, want);
    }

    #[test]
    fn derived_refresh_recomputable_from_old_root() {
        let (mut tree, mut src) = setup(3);
        for i in 1..=5 {
            join(&mut tree, &mut src, i);
        }
        let (_, old_root) = tree.group_key();
        let code = [9u8; 16];
        let p = tree.refresh_group_key_derived(&code);
        tree.check_invariants();
        let want = crate::derive::derive_key(&old_root, &code, p.label, p.new_ref.version, 8);
        assert_eq!(p.new_key, want);
        assert_eq!(tree.group_key().1, p.new_key);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn random_churn_invariants(ops in proptest::collection::vec((0u8..2, 0u64..32), 1..100), degree in 2usize..6) {
            let mut src = HmacDrbg::from_seed(1);
            let mut tree = KeyTree::new(degree, 8, &mut src);
            for (op, uid) in ops {
                let u = UserId(uid);
                if op == 0 {
                    if !tree.is_member(u) {
                        let ik = src.generate_key(8);
                        tree.join(u, ik, &mut src).unwrap();
                    }
                } else if tree.is_member(u) {
                    tree.leave(u, &mut src).unwrap();
                }
                tree.check_invariants();
            }
        }

        /// After any churn, each member's keyset ends at the group key and
        /// starts at its individual key.
        #[test]
        fn keysets_well_formed(joins in 1usize..40, leaves in 0usize..20) {
            let mut src = HmacDrbg::from_seed(2);
            let mut tree = KeyTree::new(4, 8, &mut src);
            for i in 0..joins {
                let ik = src.generate_key(8);
                tree.join(UserId(i as u64), ik, &mut src).unwrap();
            }
            for i in 0..leaves.min(joins.saturating_sub(1)) {
                tree.leave(UserId(i as u64), &mut src).unwrap();
            }
            let (gk, gkey) = tree.group_key();
            for u in tree.members().collect::<Vec<_>>() {
                let ks = tree.keyset(u).unwrap();
                let (last_ref, last_key) = ks.last().unwrap();
                proptest::prop_assert_eq!(*last_ref, gk);
                proptest::prop_assert_eq!(last_key, &gkey);
            }
        }
    }
}
