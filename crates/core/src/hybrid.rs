//! The §7 hybrid rekeying strategy (the paper's future-work proposal,
//! implemented).
//!
//! "A more practical approach, however, is to allocate just a small number
//! of multicast addresses (e.g., one for each child of the key tree's root
//! node) and use a rekeying strategy that is a hybrid of group-oriented
//! and key-oriented rekeying."
//!
//! Concretely: one rekey message per *top-level subtree* (child of the
//! root), multicast on that subtree's address. The message carries every
//! new key any member of that subtree needs — group-oriented *within* the
//! subtree — while subtrees that only need the new group key receive a
//! single small message — key-oriented *across* subtrees. The joiner still
//! gets its unicast bundle.
//!
//! Properties (verified by the tests below and `report hybrid`):
//!
//! * messages per request = (number of root children) + 1 for a join /
//!   + 0 for a leave — independent of group size, like group-oriented;
//! * off-path subtrees receive O(1)-size messages, like key-oriented —
//!   the big leave message travels only on the affected subtree's address;
//! * multicast addresses required: one per root child (≤ d), instead of
//!   one per k-node (key-oriented) or one group-wide flood of full-size
//!   messages (group-oriented).

use crate::rekey::{OpCounts, Recipients, RekeyMessage, RekeyOutput, Rekeyer};
use crate::tree::{JoinEvent, LeaveEvent, SiblingChild};

impl Rekeyer<'_> {
    /// Hybrid rekeying for a join.
    ///
    /// `root_children` must be the root's children *after* the join (from
    /// [`crate::tree::KeyTree::root_children`]); the path child among them
    /// is identified via the event.
    pub fn join_hybrid(&mut self, ev: &JoinEvent, root_children: &[SiblingChild]) -> RekeyOutput {
        let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
        let mut messages = Vec::new();
        let path = &ev.path; // root-first

        // One ciphertext per changed key, each under its old key (as in
        // key-oriented joins); built once, shared across messages.
        let singles: Vec<_> = path
            .iter()
            .map(|p| {
                let t = [(p.new_ref, &p.new_key)];
                self.bundle_for(&mut ops, p.old_ref, &p.old_key, &t)
            })
            .collect();

        // The path's top-level subtree is path[1] when the path descends
        // below the root; when the joining point *is* the root, the "path
        // child" is the joiner's own leaf and every top-level subtree is
        // off-path.
        let path_top = path.get(1).map(|p| p.label);
        for child in root_children {
            if child.label == ev.leaf_label {
                continue; // the joiner's own leaf: served by the unicast below
            }
            let bundles = if Some(child.label) == path_top {
                singles.clone() // needs every changed key on the path
            } else {
                vec![singles[0].clone()] // needs only the new group key
            };
            messages.push(RekeyMessage { recipients: Recipients::Subgroup(child.label), bundles });
        }

        // Joiner unicast with the full new path.
        let joiner_targets: Vec<_> = path.iter().map(|p| (p.new_ref, &p.new_key)).collect();
        let b = self.bundle_for(&mut ops, ev.leaf_ref, &ev.leaf_key, &joiner_targets);
        messages.push(RekeyMessage { recipients: Recipients::User(ev.user), bundles: vec![b] });
        RekeyOutput { messages, ops }
    }

    /// Hybrid rekeying for a leave.
    ///
    /// `root_children` must be the root's children *after* the leave.
    pub fn leave_hybrid(&mut self, ev: &LeaveEvent, root_children: &[SiblingChild]) -> RekeyOutput {
        let mut ops = OpCounts { keys_generated: ev.path.len() as u64, ..OpCounts::default() };
        let mut messages = Vec::new();
        if ev.path.is_empty() {
            return RekeyOutput { messages, ops };
        }
        let path = &ev.path; // root-first
        let j = path.len() - 1;

        // Group-oriented L_i levels for the path's subtree (levels ≥ 1):
        // each new key under each child key at that level, path children
        // using their fresh keys.
        let mut inner = Vec::new();
        for i in 1..=j {
            for sib in &ev.siblings[i] {
                inner.push(self.bundle_for(
                    &mut ops,
                    sib.key_ref,
                    &sib.key,
                    &[(path[i].new_ref, &path[i].new_key)],
                ));
            }
            if i < j {
                inner.push(self.bundle_for(
                    &mut ops,
                    path[i + 1].new_ref,
                    &path[i + 1].new_key,
                    &[(path[i].new_ref, &path[i].new_key)],
                ));
            }
        }

        let path_top = path.get(1).map(|p| p.label);
        for child in root_children {
            let bundles = if Some(child.label) == path_top {
                // Affected subtree: the new group key under the subtree's
                // *fresh* key, plus all inner levels.
                let mut v = vec![self.bundle_for(
                    &mut ops,
                    path[1].new_ref,
                    &path[1].new_key,
                    &[(path[0].new_ref, &path[0].new_key)],
                )];
                v.extend(inner.iter().cloned());
                v
            } else {
                // Off-path subtree: just the new group key under the
                // subtree's unchanged key.
                vec![self.bundle_for(
                    &mut ops,
                    child.key_ref,
                    &child.key,
                    &[(path[0].new_ref, &path[0].new_key)],
                )]
            };
            messages.push(RekeyMessage { recipients: Recipients::Subgroup(child.label), bundles });
        }
        RekeyOutput { messages, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use crate::rekey::KeyCipher;
    use crate::tree::KeyTree;
    use kg_crypto::drbg::HmacDrbg;
    use kg_crypto::{KeySource, SymmetricKey};
    use std::collections::BTreeMap;

    fn tree_of(n: u64, d: usize) -> (KeyTree, HmacDrbg, BTreeMap<UserId, SymmetricKey>) {
        let mut src = HmacDrbg::from_seed(0xC0FFEE);
        let mut tree = KeyTree::new(d, 8, &mut src);
        let mut iks = BTreeMap::new();
        for i in 0..n {
            let ik = src.generate_key(8);
            iks.insert(UserId(i), ik.clone());
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        (tree, src, iks)
    }

    /// Simulate a member's decryption: walk its path keys and fixed-point
    /// decrypt the bundles it can open; return the group key it ends with.
    fn recover_group_key(
        tree_keyset: &[(crate::ids::KeyRef, SymmetricKey)],
        messages: &[RekeyMessage],
        root_label: crate::ids::KeyLabel,
    ) -> Option<SymmetricKey> {
        let mut held: BTreeMap<_, _> =
            tree_keyset.iter().map(|(r, k)| (r.label, (r.version, k.clone()))).collect();
        loop {
            let mut progress = false;
            for m in messages {
                for b in m.bundles.iter() {
                    let Some((v, key)) = held.get(&b.encrypted_with.label) else { continue };
                    if *v != b.encrypted_with.version {
                        continue;
                    }
                    let key = key.clone();
                    let plain = KeyCipher::des_cbc().decrypt(&key, &b.iv, &b.ciphertext).ok()?;
                    for (i, t) in b.targets.iter().enumerate() {
                        let material = &plain[i * 8..(i + 1) * 8];
                        let newer = held.get(&t.label).is_none_or(|(v, _)| t.version > *v);
                        if newer {
                            held.insert(t.label, (t.version, SymmetricKey::from_bytes(material)));
                            progress = true;
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        held.get(&root_label).map(|(_, k)| k.clone())
    }

    #[test]
    fn hybrid_leave_message_count_is_root_fanout() {
        let (mut tree, mut src, _) = tree_of(64, 4);
        let ev = tree.leave(UserId(17), &mut src).unwrap();
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(1);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave_hybrid(&ev, &roots);
        assert_eq!(out.messages.len(), roots.len());
        // Off-path messages carry exactly one key; the path message many.
        let sizes: Vec<usize> = out.messages.iter().map(|m| m.key_count()).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), roots.len() - 1);
        assert!(sizes.iter().any(|&s| s > 1));
    }

    #[test]
    fn hybrid_join_message_count() {
        let (mut tree, mut src, _) = tree_of(64, 4);
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(1000), ik, &mut src).unwrap();
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(2);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.join_hybrid(&ev, &roots);
        // One per top-level subtree plus the joiner unicast.
        assert_eq!(out.messages.len(), roots.len() + 1);
    }

    #[test]
    fn hybrid_leave_lets_every_survivor_recover_the_group_key() {
        let (mut tree, mut src, _) = tree_of(48, 3);
        // Capture each member's keyset before the leave.
        let keysets: BTreeMap<UserId, _> =
            tree.members().map(|u| (u, tree.keyset(u).unwrap())).collect();
        let victim = UserId(20);
        let ev = tree.leave(victim, &mut src).unwrap();
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(3);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave_hybrid(&ev, &roots);
        let (gk_ref, gk) = tree.group_key();
        for (u, ks) in &keysets {
            if *u == victim {
                continue;
            }
            let got = recover_group_key(ks, &out.messages, gk_ref.label)
                .unwrap_or_else(|| panic!("{u} failed to recover"));
            assert_eq!(got, gk, "{u}");
        }
        // The victim cannot.
        let got = recover_group_key(&keysets[&victim], &out.messages, gk_ref.label);
        assert_ne!(got.as_ref(), Some(&gk), "victim recovered the new group key");
    }

    #[test]
    fn hybrid_join_lets_everyone_track_the_group_key() {
        let (mut tree, mut src, _) = tree_of(27, 3);
        let keysets: BTreeMap<UserId, _> =
            tree.members().map(|u| (u, tree.keyset(u).unwrap())).collect();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(500), ik.clone(), &mut src).unwrap();
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(4);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.join_hybrid(&ev, &roots);
        let (gk_ref, gk) = tree.group_key();
        for (u, ks) in &keysets {
            let got = recover_group_key(ks, &out.messages, gk_ref.label)
                .unwrap_or_else(|| panic!("{u} failed"));
            assert_eq!(got, gk, "{u}");
        }
        // The joiner recovers from its unicast.
        let joiner_ks = vec![(ev.leaf_ref, ik)];
        let got = recover_group_key(&joiner_ks, &out.messages, gk_ref.label).unwrap();
        assert_eq!(got, gk);
    }

    #[test]
    fn hybrid_join_at_root_attach() {
        // A join whose joining point is the root itself (small group).
        let (mut tree, mut src, _) = tree_of(2, 4);
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(99), ik, &mut src).unwrap();
        assert_eq!(ev.path.len(), 1, "only the root changed");
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(5);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.join_hybrid(&ev, &roots);
        // Every pre-existing leaf gets a one-key message; joiner unicast.
        assert_eq!(out.messages.len(), roots.len()); // (roots includes joiner leaf, skipped) + unicast
        let (gk_ref, gk) = tree.group_key();
        // Each pre-existing member can recover via its individual key.
        for m in tree.members().collect::<Vec<_>>() {
            if m == UserId(99) {
                continue;
            }
            let ks = tree.keyset(m).unwrap();
            // Use only the individual key + old knowledge: recover via msgs.
            let got = recover_group_key(&ks[..1], &out.messages, gk_ref.label);
            // ks[..1] is the individual key; for an attach-at-root join the
            // group key bundle is under the OLD root key which the member
            // held — but we only gave it the individual key, so fall back
            // to the full pre-state path below.
            let _ = got;
            let full = recover_group_key(&ks, &out.messages, gk_ref.label).unwrap();
            assert_eq!(full, gk);
        }
    }

    #[test]
    fn hybrid_empty_leave_is_empty() {
        let (mut tree, mut src, _) = tree_of(1, 4);
        let ev = tree.leave(UserId(0), &mut src).unwrap();
        let roots = tree.root_children();
        let mut ivs = HmacDrbg::from_seed(6);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave_hybrid(&ev, &roots);
        assert!(out.messages.is_empty());
    }

    #[test]
    fn hybrid_encryption_cost_between_key_and_group() {
        // Cost sanity: hybrid pays ~d(h-1) like key/group-oriented, plus at
        // most deg(root) extra root-key wrappings.
        let (mut tree, mut src, _) = tree_of(256, 4);
        let ev = tree.leave(UserId(100), &mut src).unwrap();
        let roots = tree.root_children();
        let d = tree.degree() as u64;
        let h = tree.height() as u64;
        let mut ivs = HmacDrbg::from_seed(7);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let hybrid = rk.leave_hybrid(&ev, &roots).ops.key_encryptions;
        let group = rk.leave(&ev, crate::rekey::Strategy::GroupOriented).ops.key_encryptions;
        assert!(hybrid <= group + d, "hybrid {hybrid} vs group {group} (d={d}, h={h})");
        assert!(hybrid >= group.saturating_sub(d));
    }
}
