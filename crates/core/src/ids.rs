//! Identifier newtypes shared across the key-graph machinery.

use std::fmt;

/// Identifies a user (a u-node of the key graph).
///
/// In the prototype, user ids are assigned by the server at admission time
/// and echoed in protocol messages; they are opaque to the protocol logic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A stable label for a k-node (a key position in the graph).
///
/// Labels are assigned once at node creation and never reused, so clients
/// can refer to "the key at position L" across rekeys; the *contents* of a
/// k-node change over time and are tracked by [`KeyVersion`]. This is the
/// "subgroup label" the paper says rekey messages carry alongside each
/// encrypted key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyLabel(pub u64);

impl fmt::Debug for KeyLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for KeyLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Version counter for the key held at a k-node; bumped on every rekey of
/// that node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct KeyVersion(pub u64);

impl KeyVersion {
    /// The next version.
    pub fn next(self) -> KeyVersion {
        KeyVersion(self.0 + 1)
    }
}

impl fmt::Debug for KeyVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A (label, version) pair uniquely identifying one concrete key value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyRef {
    /// Which k-node.
    pub label: KeyLabel,
    /// Which generation of that node's key.
    pub version: KeyVersion,
}

impl KeyRef {
    /// Construct a reference.
    pub fn new(label: KeyLabel, version: KeyVersion) -> Self {
        KeyRef { label, version }
    }
}

impl fmt::Debug for KeyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.label, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_increments() {
        let v = KeyVersion::default();
        assert_eq!(v.next(), KeyVersion(1));
        assert_eq!(v.next().next(), KeyVersion(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", UserId(4)), "u4");
        assert_eq!(format!("{:?}", KeyLabel(7)), "k7");
        assert_eq!(format!("{:?}", KeyRef::new(KeyLabel(7), KeyVersion(2))), "k7@v2");
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(UserId(1) < UserId(2));
        assert!(KeyLabel(3) < KeyLabel(10));
    }
}
