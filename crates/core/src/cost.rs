//! The paper's analytical cost model (Tables 1–3).
//!
//! All costs are in the paper's unit: *number of keys encrypted or
//! decrypted*. `n` is group size, `d` the key-tree degree, `h` the tree
//! height in edges (a user of a full, balanced tree holds `h` keys, and
//! `n = d^(h−1)`).
//!
//! The benchmark harness regenerates Tables 1–3 from these formulas and
//! cross-checks them against operation counts measured on live structures
//! (see `kg-bench` and the tests in [`crate::rekey`]).

/// Key-graph class, as in the tables' columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphClass {
    /// Star: individual keys + one group key.
    Star,
    /// Key tree of degree `d`.
    Tree,
    /// Complete key graph (one key per nonempty user subset).
    Complete,
}

/// Height of a full, balanced key tree for `n` users at degree `d`:
/// `h = ⌈log_d n⌉ + 1` (users hold `h` keys; `n = d^(h−1)` when exact).
pub fn tree_height(n: u64, d: u64) -> u64 {
    assert!(d >= 2, "degree must be ≥ 2");
    if n <= 1 {
        return if n == 0 { 1 } else { 2 };
    }
    let mut h = 1u64;
    let mut cap = 1u64;
    while cap < n {
        cap = cap.saturating_mul(d);
        h += 1;
    }
    h
}

/// Table 1: total number of keys held by the server.
pub fn server_total_keys(class: GraphClass, n: u64, d: u64) -> u64 {
    match class {
        GraphClass::Star => n + 1,
        GraphClass::Tree => {
            // Full balanced tree: (d^h − 1)/(d − 1) over k-node levels,
            // ≈ d/(d−1) · n. We report the exact geometric sum for
            // n = d^(h−1); callers with other n get the ≈ formula.
            let h = tree_height(n, d);
            if d.checked_pow((h - 1) as u32) == Some(n) {
                (d.pow(h as u32) - 1) / (d - 1)
            } else {
                ((d as f64) / ((d - 1) as f64) * n as f64).round() as u64
            }
        }
        GraphClass::Complete => (1u64 << n) - 1,
    }
}

/// Table 1: number of keys held by each user.
pub fn keys_per_user(class: GraphClass, n: u64, d: u64) -> u64 {
    match class {
        GraphClass::Star => 2,
        GraphClass::Tree => tree_height(n, d),
        GraphClass::Complete => 1u64 << (n - 1),
    }
}

/// Table 2(a): decryptions by the requesting user for a join.
pub fn join_cost_requester(class: GraphClass, n: u64, d: u64) -> u64 {
    match class {
        GraphClass::Star => 1,
        GraphClass::Tree => tree_height(n, d) - 1,
        GraphClass::Complete => 1u64 << n,
    }
}

/// Table 2(a): decryptions by the requesting user for a leave (always 0 —
/// the leaver receives nothing).
pub fn leave_cost_requester(_class: GraphClass, _n: u64, _d: u64) -> u64 {
    0
}

/// Table 2(b): average decryptions by a non-requesting user, per join.
pub fn join_cost_nonrequester(class: GraphClass, n: u64, d: u64) -> f64 {
    match class {
        GraphClass::Star => 1.0,
        GraphClass::Tree => d as f64 / (d as f64 - 1.0),
        GraphClass::Complete => (1u128 << (n - 1)) as f64,
    }
}

/// Table 2(b): average decryptions by a non-requesting user, per leave.
pub fn leave_cost_nonrequester(class: GraphClass, _n: u64, d: u64) -> f64 {
    match class {
        GraphClass::Star => 1.0,
        GraphClass::Tree => d as f64 / (d as f64 - 1.0),
        GraphClass::Complete => 0.0,
    }
}

/// Table 2(c): server encryptions per join (key-/group-oriented rekeying
/// for trees).
pub fn join_cost_server(class: GraphClass, n: u64, d: u64) -> u64 {
    match class {
        GraphClass::Star => 2,
        GraphClass::Tree => 2 * (tree_height(n, d) - 1),
        GraphClass::Complete => 1u64 << (n + 1),
    }
}

/// Table 2(c): server encryptions per leave.
pub fn leave_cost_server(class: GraphClass, n: u64, d: u64) -> u64 {
    match class {
        GraphClass::Star => n.saturating_sub(1),
        GraphClass::Tree => d * (tree_height(n, d) - 1),
        GraphClass::Complete => 0,
    }
}

/// Table 3: average server cost per operation (joins and leaves equally
/// likely).
pub fn avg_cost_server(class: GraphClass, n: u64, d: u64) -> f64 {
    match class {
        GraphClass::Star => n as f64 / 2.0,
        GraphClass::Tree => {
            let h = tree_height(n, d) as f64;
            (d as f64 + 2.0) * (h - 1.0) / 2.0
        }
        GraphClass::Complete => (1u128 << n) as f64,
    }
}

/// Table 3: average per-user cost per operation.
pub fn avg_cost_user(class: GraphClass, n: u64, d: u64) -> f64 {
    match class {
        GraphClass::Star => 1.0,
        GraphClass::Tree => d as f64 / (d as f64 - 1.0),
        GraphClass::Complete => (1u128 << n) as f64,
    }
}

/// Continuous-relaxation server cost `(d+2)·log_d(n)/2`, used to locate the
/// optimal degree (the paper: "the optimal key tree degree is four").
pub fn avg_cost_server_continuous(n: f64, d: f64) -> f64 {
    (d + 2.0) * n.ln() / d.ln() / 2.0
}

/// The degree minimizing the continuous server cost for group size `n`
/// among 2..=16. Independent of `n` in the continuous model (the `log n`
/// factors out); equals 4.
pub fn optimal_degree(n: u64) -> u64 {
    (2..=16u64)
        .min_by(|&a, &b| {
            avg_cost_server_continuous(n as f64, a as f64)
                .partial_cmp(&avg_cost_server_continuous(n as f64, b as f64))
                .expect("finite")
        })
        .expect("nonempty range")
}

/// Rekey message counts per operation (paper §3.3/§3.4), by strategy.
pub mod messages {
    use super::tree_height;

    /// Join, user-oriented: `h` messages (including the joiner's unicast).
    pub fn join_user_oriented(n: u64, d: u64) -> u64 {
        tree_height(n, d)
    }

    /// Join, key-oriented with combining: `h` messages.
    pub fn join_key_oriented(n: u64, d: u64) -> u64 {
        tree_height(n, d)
    }

    /// Join, group-oriented: 1 multicast + 1 unicast.
    pub fn join_group_oriented(_n: u64, _d: u64) -> u64 {
        2
    }

    /// Leave, user-oriented: `(d−1)(h−1)` messages.
    pub fn leave_user_oriented(n: u64, d: u64) -> u64 {
        (d - 1) * (tree_height(n, d) - 1)
    }

    /// Leave, key-oriented: `(d−1)(h−1)` messages.
    pub fn leave_key_oriented(n: u64, d: u64) -> u64 {
        (d - 1) * (tree_height(n, d) - 1)
    }

    /// Leave, group-oriented: one multicast.
    pub fn leave_group_oriented(_n: u64, _d: u64) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_height_matches_examples() {
        // Star is a tree of h = 2; 9 users at d = 3 give h = 3 (Figure 5).
        assert_eq!(tree_height(9, 3), 3);
        assert_eq!(tree_height(8192, 4), 1 + 7); // 4^7 = 16384 ≥ 8192 > 4^6
        assert_eq!(tree_height(1, 4), 2);
        assert_eq!(tree_height(0, 4), 1);
        assert_eq!(tree_height(4, 4), 2);
        assert_eq!(tree_height(5, 4), 3);
    }

    #[test]
    fn table1_star() {
        assert_eq!(server_total_keys(GraphClass::Star, 100, 0), 101);
        assert_eq!(keys_per_user(GraphClass::Star, 100, 0), 2);
    }

    #[test]
    fn table1_tree_exact_geometric() {
        // n = 64 = 4^3, h = 4: (4^4 − 1)/3 = 85 keys.
        assert_eq!(server_total_keys(GraphClass::Tree, 64, 4), 85);
        assert_eq!(keys_per_user(GraphClass::Tree, 64, 4), 4);
    }

    #[test]
    fn table1_complete() {
        assert_eq!(server_total_keys(GraphClass::Complete, 5, 0), 31);
        assert_eq!(keys_per_user(GraphClass::Complete, 5, 0), 16);
    }

    #[test]
    fn table2_star_column() {
        let n = 50;
        assert_eq!(join_cost_requester(GraphClass::Star, n, 0), 1);
        assert_eq!(leave_cost_requester(GraphClass::Star, n, 0), 0);
        assert_eq!(join_cost_nonrequester(GraphClass::Star, n, 0), 1.0);
        assert_eq!(join_cost_server(GraphClass::Star, n, 0), 2);
        assert_eq!(leave_cost_server(GraphClass::Star, n, 0), n - 1);
    }

    #[test]
    fn table2_tree_column() {
        let (n, d) = (9u64, 3u64);
        let h = tree_height(n, d); // 3
        assert_eq!(join_cost_requester(GraphClass::Tree, n, d), h - 1);
        assert_eq!(join_cost_server(GraphClass::Tree, n, d), 2 * (h - 1));
        assert_eq!(leave_cost_server(GraphClass::Tree, n, d), d * (h - 1));
        let f = join_cost_nonrequester(GraphClass::Tree, n, d);
        assert!((f - 1.5).abs() < 1e-9);
    }

    #[test]
    fn table2_complete_column() {
        let n = 4;
        assert_eq!(join_cost_requester(GraphClass::Complete, n, 0), 16);
        assert_eq!(join_cost_server(GraphClass::Complete, n, 0), 32);
        assert_eq!(leave_cost_server(GraphClass::Complete, n, 0), 0);
        assert_eq!(leave_cost_nonrequester(GraphClass::Complete, n, 0), 0.0);
    }

    #[test]
    fn table3_averages() {
        assert_eq!(avg_cost_server(GraphClass::Star, 100, 0), 50.0);
        assert_eq!(avg_cost_user(GraphClass::Star, 100, 0), 1.0);
        // Tree, d=4, n=8192, h=8: (4+2)(8−1)/2 = 21.
        assert_eq!(avg_cost_server(GraphClass::Tree, 8192, 4), 21.0);
        let u = avg_cost_user(GraphClass::Tree, 8192, 4);
        assert!((u - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_degree_is_four() {
        for n in [100u64, 8192, 100_000] {
            assert_eq!(optimal_degree(n), 4, "n={n}");
        }
    }

    #[test]
    fn continuous_cost_is_convex_around_four() {
        let c3 = avg_cost_server_continuous(8192.0, 3.0);
        let c4 = avg_cost_server_continuous(8192.0, 4.0);
        let c5 = avg_cost_server_continuous(8192.0, 5.0);
        let c8 = avg_cost_server_continuous(8192.0, 8.0);
        assert!(c4 < c3 && c4 < c5 && c5 < c8);
    }

    #[test]
    fn message_count_formulas() {
        let (n, d) = (8192u64, 4u64);
        let h = tree_height(n, d); // 8
        assert_eq!(messages::join_user_oriented(n, d), h);
        assert_eq!(messages::join_key_oriented(n, d), h);
        assert_eq!(messages::join_group_oriented(n, d), 2);
        assert_eq!(messages::leave_user_oriented(n, d), (d - 1) * (h - 1)); // 21
        assert_eq!(messages::leave_group_oriented(n, d), 1);
        // Paper Table 5 at d=4 reports ~19 leave messages: (d−1)(h−1) with
        // the *measured* h fluctuating around 7.3; our formula at the ideal
        // h=8 gives 21 — same order, see EXPERIMENTS.md.
    }

    #[test]
    fn average_star_cost_crosses_tree_cost() {
        // The scalability claim: for small n a star can be cheaper; for
        // large n the tree wins by orders of magnitude.
        assert!(
            avg_cost_server(GraphClass::Star, 8, 4) < avg_cost_server(GraphClass::Tree, 8, 4) * 2.0
        );
        assert!(
            avg_cost_server(GraphClass::Star, 8192, 4)
                > 100.0 * avg_cost_server(GraphClass::Tree, 8192, 4)
        );
    }
}
