//! Snapshots: a full server checkpoint in one CRC-checked file.
//!
//! ```text
//! "KGSS" | version u32 | epoch u64 | body | crc32(everything before) u32
//! ```
//!
//! The body captures everything the server needs to resume: the encoded
//! key tree (see `kg_core::serial`), both DRBG working states, the next
//! sequence number, the ACL, accumulated statistics, and the batch
//! scheduler queue. `kg-persist` stays server-agnostic by mirroring the
//! server's state in plain data types here; the server converts in both
//! directions.
//!
//! Snapshots are written atomically (temp file + rename), so a reader
//! never observes a half-written snapshot — a crash during the write
//! leaves the previous epoch's pair intact.

use crate::crc::crc32;
use crate::PersistError;
use kg_core::ids::UserId;
use kg_wire::codec::{get_u32, get_u64, get_u8};

use bytes::BufMut;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"KGSS";

/// Snapshot format version written by this crate.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Bound on any embedded blob (the encoded tree dominates; 1 GiB is far
/// beyond the millions-of-users scale and merely stops a corrupt length
/// field from allocating unbounded memory).
const MAX_BLOB_LEN: u64 = 1 << 30;

/// Bound on any collection count in a snapshot.
const MAX_SNAPSHOT_COUNT: u64 = 1 << 32;

/// Mirror of the server's access-control policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AclSnapshot {
    /// Admit anyone.
    AllowAll,
    /// Admit exactly the listed users (sorted).
    AllowList(Vec<UserId>),
}

/// Mirror of one statistics record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatRecord {
    /// Operation kind as its wire tag (join=0, leave=1, batch=2, refresh=3).
    pub kind: u8,
    /// Membership requests covered.
    pub requests: u32,
    /// Wire sizes of the rekey messages sent.
    pub msg_sizes: Vec<u32>,
    /// Processing time in nanoseconds.
    pub proc_ns: u64,
    /// Keys encrypted.
    pub encryptions: u64,
    /// Signature operations.
    pub signatures: u64,
}

/// Mirror of the batch scheduler's queue and interval clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Queued joins with their individual-key material, in arrival order.
    pub joins: Vec<(UserId, Vec<u8>)>,
    /// Queued leaves, in arrival order.
    pub leaves: Vec<UserId>,
    /// Start of the interval in progress when the snapshot was taken.
    pub last_flush_ms: u64,
    /// Intervals flushed so far.
    pub intervals_flushed: u64,
}

/// A full server checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The DRBG seed the server was created with (cross-checked against
    /// the WAL header at recovery).
    pub seed: u64,
    /// Next rekey-packet sequence number.
    pub seq: u64,
    /// Key-generation DRBG working state `(K, V)`.
    pub keygen: ([u8; 32], [u8; 32]),
    /// IV-generation DRBG working state `(K, V)`.
    pub ivs: ([u8; 32], [u8; 32]),
    /// The key tree, encoded by `kg_core::serial::encode_tree`.
    pub tree: Vec<u8>,
    /// Admission policy.
    pub acl: AclSnapshot,
    /// Accumulated per-operation statistics.
    pub stats: Vec<StatRecord>,
    /// Batch scheduler state (`None` for immediate-mode servers).
    pub scheduler: Option<SchedulerSnapshot>,
    /// SHA-256 digest of the group key at snapshot time.
    pub root_digest: [u8; 32],
}

fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.put_u64(bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_blob(buf: &mut &[u8]) -> Result<Vec<u8>, PersistError> {
    let len = get_u64(buf).map_err(|_| PersistError::Corrupt("snapshot blob length"))?;
    if len > MAX_BLOB_LEN {
        return Err(PersistError::Corrupt("snapshot blob too long"));
    }
    let len = len as usize;
    if buf.len() < len {
        return Err(PersistError::Corrupt("snapshot blob truncated"));
    }
    let (blob, rest) = buf.split_at(len);
    *buf = rest;
    Ok(blob.to_vec())
}

fn get_snapshot_count(buf: &mut &[u8]) -> Result<usize, PersistError> {
    let n = get_u64(buf).map_err(|_| PersistError::Corrupt("snapshot count"))?;
    if n > MAX_SNAPSHOT_COUNT {
        return Err(PersistError::Corrupt("snapshot count too large"));
    }
    Ok(n as usize)
}

fn get_array32(buf: &mut &[u8]) -> Result<[u8; 32], PersistError> {
    if buf.len() < 32 {
        return Err(PersistError::Corrupt("snapshot digest truncated"));
    }
    let mut out = [0u8; 32];
    out.copy_from_slice(&buf[..32]);
    *buf = &buf[32..];
    Ok(out)
}

impl Snapshot {
    /// Serialize into a complete snapshot file image for `epoch`.
    pub fn encode(&self, epoch: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.tree.len() + 256);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.put_u32(SNAPSHOT_VERSION);
        out.put_u64(epoch);
        out.put_u64(self.seed);
        out.put_u64(self.seq);
        out.extend_from_slice(&self.keygen.0);
        out.extend_from_slice(&self.keygen.1);
        out.extend_from_slice(&self.ivs.0);
        out.extend_from_slice(&self.ivs.1);
        put_blob(&mut out, &self.tree);
        match &self.acl {
            AclSnapshot::AllowAll => out.put_u8(0),
            AclSnapshot::AllowList(users) => {
                out.put_u8(1);
                out.put_u64(users.len() as u64);
                for u in users {
                    out.put_u64(u.0);
                }
            }
        }
        out.put_u64(self.stats.len() as u64);
        for rec in &self.stats {
            out.put_u8(rec.kind);
            out.put_u32(rec.requests);
            out.put_u64(rec.msg_sizes.len() as u64);
            for &s in &rec.msg_sizes {
                out.put_u32(s);
            }
            out.put_u64(rec.proc_ns);
            out.put_u64(rec.encryptions);
            out.put_u64(rec.signatures);
        }
        match &self.scheduler {
            None => out.put_u8(0),
            Some(s) => {
                out.put_u8(1);
                out.put_u64(s.joins.len() as u64);
                for (u, key) in &s.joins {
                    out.put_u64(u.0);
                    put_blob(&mut out, key);
                }
                out.put_u64(s.leaves.len() as u64);
                for u in &s.leaves {
                    out.put_u64(u.0);
                }
                out.put_u64(s.last_flush_ms);
                out.put_u64(s.intervals_flushed);
            }
        }
        out.extend_from_slice(&self.root_digest);
        let crc = crc32(&out);
        out.put_u32(crc);
        out
    }

    /// Parse and validate a snapshot file image, returning the snapshot
    /// and its epoch.
    pub fn decode(bytes: &[u8]) -> Result<(Self, u64), PersistError> {
        if bytes.len() < 4 + 4 + 8 + 4 {
            return Err(PersistError::Corrupt("snapshot truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let mut crc_buf = crc_bytes;
        let stored = get_u32(&mut crc_buf).expect("4 bytes");
        if crc32(body) != stored {
            return Err(PersistError::Corrupt("snapshot crc"));
        }
        let mut buf = body;
        let (magic, rest) = buf.split_at(4);
        buf = rest;
        if magic != SNAPSHOT_MAGIC {
            return Err(PersistError::Corrupt("snapshot magic"));
        }
        let version = get_u32(&mut buf).map_err(|_| PersistError::Corrupt("snapshot header"))?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::Corrupt("snapshot version"));
        }
        let epoch = get_u64(&mut buf).map_err(|_| PersistError::Corrupt("snapshot header"))?;
        let seed = get_u64(&mut buf).map_err(|_| PersistError::Corrupt("snapshot header"))?;
        let seq = get_u64(&mut buf).map_err(|_| PersistError::Corrupt("snapshot header"))?;
        let keygen = (get_array32(&mut buf)?, get_array32(&mut buf)?);
        let ivs = (get_array32(&mut buf)?, get_array32(&mut buf)?);
        let tree = get_blob(&mut buf)?;
        let acl = match get_u8(&mut buf).map_err(|_| PersistError::Corrupt("snapshot acl"))? {
            0 => AclSnapshot::AllowAll,
            1 => {
                let n = get_snapshot_count(&mut buf)?;
                let mut users = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    users.push(UserId(
                        get_u64(&mut buf).map_err(|_| PersistError::Corrupt("snapshot acl"))?,
                    ));
                }
                AclSnapshot::AllowList(users)
            }
            _ => return Err(PersistError::Corrupt("snapshot acl tag")),
        };
        let n_stats = get_snapshot_count(&mut buf)?;
        let mut stats = Vec::with_capacity(n_stats.min(1 << 16));
        for _ in 0..n_stats {
            let corrupt = |_| PersistError::Corrupt("snapshot stats");
            let kind = get_u8(&mut buf).map_err(corrupt)?;
            let requests = get_u32(&mut buf).map_err(corrupt)?;
            let n_sizes = get_snapshot_count(&mut buf)?;
            let mut msg_sizes = Vec::with_capacity(n_sizes.min(1 << 16));
            for _ in 0..n_sizes {
                msg_sizes.push(get_u32(&mut buf).map_err(corrupt)?);
            }
            let proc_ns = get_u64(&mut buf).map_err(corrupt)?;
            let encryptions = get_u64(&mut buf).map_err(corrupt)?;
            let signatures = get_u64(&mut buf).map_err(corrupt)?;
            stats.push(StatRecord { kind, requests, msg_sizes, proc_ns, encryptions, signatures });
        }
        let corrupt = |_| PersistError::Corrupt("snapshot scheduler");
        let scheduler = match get_u8(&mut buf).map_err(corrupt)? {
            0 => None,
            1 => {
                let n_joins = get_snapshot_count(&mut buf)?;
                let mut joins = Vec::with_capacity(n_joins.min(1 << 16));
                for _ in 0..n_joins {
                    let u = UserId(get_u64(&mut buf).map_err(corrupt)?);
                    let key = get_blob(&mut buf)?;
                    joins.push((u, key));
                }
                let n_leaves = get_snapshot_count(&mut buf)?;
                let mut leaves = Vec::with_capacity(n_leaves.min(1 << 16));
                for _ in 0..n_leaves {
                    leaves.push(UserId(get_u64(&mut buf).map_err(corrupt)?));
                }
                let last_flush_ms = get_u64(&mut buf).map_err(corrupt)?;
                let intervals_flushed = get_u64(&mut buf).map_err(corrupt)?;
                Some(SchedulerSnapshot { joins, leaves, last_flush_ms, intervals_flushed })
            }
            _ => return Err(PersistError::Corrupt("snapshot scheduler tag")),
        };
        let root_digest = get_array32(&mut buf)?;
        if !buf.is_empty() {
            return Err(PersistError::Corrupt("snapshot trailing bytes"));
        }
        let snap = Snapshot { seed, seq, keygen, ivs, tree, acl, stats, scheduler, root_digest };
        Ok((snap, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            seed: 7,
            seq: 99,
            keygen: ([1u8; 32], [2u8; 32]),
            ivs: ([3u8; 32], [4u8; 32]),
            tree: vec![0xAB; 300],
            acl: AclSnapshot::AllowList(vec![UserId(1), UserId(5), UserId(9)]),
            stats: vec![StatRecord {
                kind: 2,
                requests: 12,
                msg_sizes: vec![100, 240],
                proc_ns: 5_000,
                encryptions: 31,
                signatures: 1,
            }],
            scheduler: Some(SchedulerSnapshot {
                joins: vec![(UserId(42), vec![9u8; 8])],
                leaves: vec![UserId(3)],
                last_flush_ms: 1_234,
                intervals_flushed: 17,
            }),
            root_digest: [0xCD; 32],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let bytes = snap.encode(6);
        let (decoded, epoch) = Snapshot::decode(&bytes).unwrap();
        assert_eq!(epoch, 6);
        assert_eq!(decoded, snap);
    }

    #[test]
    fn roundtrip_minimal() {
        let snap = Snapshot {
            seed: 0,
            seq: 0,
            keygen: ([0u8; 32], [0u8; 32]),
            ivs: ([0u8; 32], [0u8; 32]),
            tree: Vec::new(),
            acl: AclSnapshot::AllowAll,
            stats: Vec::new(),
            scheduler: None,
            root_digest: [0u8; 32],
        };
        let bytes = snap.encode(0);
        let (decoded, epoch) = Snapshot::decode(&bytes).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(decoded, snap);
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let bytes = sample().encode(1);
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().encode(1);
        let original = Snapshot::decode(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x01;
            match Snapshot::decode(&copy) {
                Err(_) => {}
                Ok(decoded) => assert_eq!(decoded, original, "flip at {i} silently accepted"),
            }
        }
    }
}
