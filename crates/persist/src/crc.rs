//! CRC-32 (IEEE 802.3 polynomial, reflected) for record checksums.
//!
//! The WAL needs a cheap integrity check that distinguishes a torn final
//! record from a complete one; cryptographic strength is not required
//! (tamper resistance comes from the root-key digest verified after
//! replay), so the classic table-driven CRC-32 suffices.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (IEEE polynomial, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
