//! Write-ahead log: framing, fsync policy, and tail-tolerant reading.
//!
//! A log file is a fixed header followed by a sequence of records:
//!
//! ```text
//! header: "KGWL" | version u32 | epoch u64 | seed u64
//! record: len u32 | payload (len bytes) | crc32(payload) u32
//! payload: WalOp encoding | post-op root digest (32 bytes)
//! ```
//!
//! All integers are big-endian, reusing the `kg-wire` codec. Each record
//! carries the SHA-256 digest of the group key *after* the operation, so
//! replay can verify the recovered tree converged to the pre-crash state.
//!
//! A crash mid-`write(2)` leaves a torn final record — a short length
//! prefix, a short payload, or a CRC mismatch. [`read_records`] stops at
//! the first invalid record and reports the byte offset of the valid
//! prefix; reopening for append truncates the tear away.

use crate::crc::crc32;
use crate::PersistError;
use kg_core::ids::UserId;
use kg_wire::codec::{get_u32, get_u64, get_u8};

use bytes::BufMut;
use std::io::Read;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"KGWL";

/// WAL format version written by this crate.
pub const WAL_VERSION: u32 = 1;

/// Size of the fixed WAL header in bytes.
pub const WAL_HEADER_LEN: u64 = 4 + 4 + 8 + 8;

/// Largest record payload accepted when reading (an op plus digest is a
/// few dozen bytes; anything huge is corruption, not data).
const MAX_RECORD_LEN: usize = 4096;

/// One logged mutating operation.
///
/// The log records *requests*, not effects: replaying a `Join` re-runs
/// admission control, key generation, and tree mutation through the same
/// server code path, which — given the checkpointed DRBG state — must
/// regenerate byte-identical keys. Only operations that succeeded are
/// logged (failed requests consume no key material).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Immediate join.
    Join(UserId),
    /// Immediate leave.
    Leave(UserId),
    /// Join queued for the next batch interval.
    EnqueueJoin(UserId),
    /// Leave queued for the next batch interval.
    EnqueueLeave(UserId),
    /// A batch flush was attempted at `now_ms` (the interval clock reset
    /// even if the queue was empty, so empty flushes are logged too).
    Flush {
        /// The server clock passed to the flush.
        now_ms: u64,
    },
    /// Group-key refresh (key-version bump, no membership change).
    Refresh,
    /// Immediate join under `strategy = derived` (client-derived
    /// rekeying). Distinct from [`WalOp::Join`] because the derived path
    /// consumes the key-generation DRBG differently (individual key plus
    /// a derivation code instead of fresh path keys), so replaying under
    /// the wrong strategy would silently regenerate a different key
    /// stream — the distinct tag lets recovery fail fast on a
    /// configuration flip instead.
    DerivedJoin(UserId),
    /// Group-key refresh under `strategy = derived` (root key derived
    /// from a published code, not drawn from the DRBG).
    DerivedRefresh,
}

impl WalOp {
    /// Stable short name for this op, used as a metric label and in
    /// observability events.
    pub fn name(&self) -> &'static str {
        match self {
            WalOp::Join(_) => "join",
            WalOp::Leave(_) => "leave",
            WalOp::EnqueueJoin(_) => "enqueue_join",
            WalOp::EnqueueLeave(_) => "enqueue_leave",
            WalOp::Flush { .. } => "flush",
            WalOp::Refresh => "refresh",
            WalOp::DerivedJoin(_) => "derived_join",
            WalOp::DerivedRefresh => "derived_refresh",
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::Join(u) => {
                out.put_u8(0);
                out.put_u64(u.0);
            }
            WalOp::Leave(u) => {
                out.put_u8(1);
                out.put_u64(u.0);
            }
            WalOp::EnqueueJoin(u) => {
                out.put_u8(2);
                out.put_u64(u.0);
            }
            WalOp::EnqueueLeave(u) => {
                out.put_u8(3);
                out.put_u64(u.0);
            }
            WalOp::Flush { now_ms } => {
                out.put_u8(4);
                out.put_u64(*now_ms);
            }
            WalOp::Refresh => out.put_u8(5),
            WalOp::DerivedJoin(u) => {
                out.put_u8(6);
                out.put_u64(u.0);
            }
            WalOp::DerivedRefresh => out.put_u8(7),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, PersistError> {
        let tag = get_u8(buf).map_err(|_| PersistError::Corrupt("wal op tag"))?;
        let op = match tag {
            0..=4 => {
                let v = get_u64(buf).map_err(|_| PersistError::Corrupt("wal op body"))?;
                match tag {
                    0 => WalOp::Join(UserId(v)),
                    1 => WalOp::Leave(UserId(v)),
                    2 => WalOp::EnqueueJoin(UserId(v)),
                    3 => WalOp::EnqueueLeave(UserId(v)),
                    _ => WalOp::Flush { now_ms: v },
                }
            }
            5 => WalOp::Refresh,
            6 => {
                let v = get_u64(buf).map_err(|_| PersistError::Corrupt("wal op body"))?;
                WalOp::DerivedJoin(UserId(v))
            }
            7 => WalOp::DerivedRefresh,
            _ => return Err(PersistError::Corrupt("wal op tag")),
        };
        Ok(op)
    }
}

/// When appended records are flushed to stable storage.
///
/// The policies trade durability for throughput exactly as in any
/// journaled store: `EveryRecord` loses nothing but pays a sync per op;
/// `EveryN` bounds loss to the last N−1 ops; `IntervalMs` bounds loss in
/// wall-clock time. Recovery is correct under all three — a record that
/// never reached the disk simply replays as if the request never
/// happened, and the DRBG checkpoint keeps later keys consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record.
    EveryRecord,
    /// `fdatasync` after every N records.
    EveryN(u32),
    /// `fdatasync` when this many milliseconds elapsed since the last one.
    IntervalMs(u64),
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(32)
    }
}

/// Serialize the WAL file header.
pub(crate) fn encode_header(epoch: u64, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(WAL_MAGIC);
    out.put_u32(WAL_VERSION);
    out.put_u64(epoch);
    out.put_u64(seed);
    out
}

/// Parse and validate a WAL header, returning `(epoch, seed)`.
pub(crate) fn decode_header(buf: &mut &[u8]) -> Result<(u64, u64), PersistError> {
    if buf.len() < WAL_HEADER_LEN as usize {
        return Err(PersistError::Corrupt("wal header truncated"));
    }
    let (magic, rest) = buf.split_at(4);
    *buf = rest;
    if magic != WAL_MAGIC {
        return Err(PersistError::Corrupt("wal magic"));
    }
    let version = get_u32(buf).map_err(|_| PersistError::Corrupt("wal header"))?;
    if version != WAL_VERSION {
        return Err(PersistError::Corrupt("wal version"));
    }
    let epoch = get_u64(buf).map_err(|_| PersistError::Corrupt("wal header"))?;
    let seed = get_u64(buf).map_err(|_| PersistError::Corrupt("wal header"))?;
    Ok((epoch, seed))
}

/// Serialize one record: length-prefixed, CRC-trailed payload.
pub(crate) fn encode_record(op: &WalOp, root_digest: &[u8; 32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48);
    op.encode(&mut payload);
    payload.extend_from_slice(root_digest);
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.put_u32(crc32(&payload));
    out
}

/// Result of reading a WAL file.
#[derive(Debug)]
pub(crate) struct WalContents {
    /// Epoch from the header.
    pub epoch: u64,
    /// DRBG seed from the header.
    pub seed: u64,
    /// Every complete, CRC-valid record, in log order.
    pub ops: Vec<(WalOp, [u8; 32])>,
    /// Byte offset of the end of the last valid record (truncation point
    /// when reopening for append).
    pub valid_len: u64,
    /// Whether bytes past `valid_len` were discarded as a torn record.
    pub torn_tail: bool,
}

/// Read a whole WAL file, tolerating a torn final record.
pub(crate) fn read_wal(bytes: &[u8]) -> Result<WalContents, PersistError> {
    let mut buf = bytes;
    let (epoch, seed) = decode_header(&mut buf)?;
    let mut ops = Vec::new();
    let mut valid_len = WAL_HEADER_LEN;
    loop {
        let mut cursor = buf;
        let Ok(len) = get_u32(&mut cursor) else { break };
        let len = len as usize;
        if len > MAX_RECORD_LEN || cursor.len() < len + 4 {
            break;
        }
        let payload = &cursor[..len];
        let mut crc_buf = &cursor[len..len + 4];
        let stored = get_u32(&mut crc_buf).expect("4 bytes checked");
        if crc32(payload) != stored {
            break;
        }
        // The frame is intact; a malformed payload inside a valid CRC is
        // real corruption, not a tear.
        let mut p = payload;
        let op = WalOp::decode(&mut p)?;
        if p.len() != 32 {
            return Err(PersistError::Corrupt("wal record digest"));
        }
        let mut digest = [0u8; 32];
        digest.copy_from_slice(p);
        ops.push((op, digest));
        let consumed = 4 + len + 4;
        buf = &buf[consumed..];
        valid_len += consumed as u64;
    }
    let torn_tail = !buf.is_empty();
    Ok(WalContents { epoch, seed, ops, valid_len, torn_tail })
}

/// Read a WAL from a file path.
pub(crate) fn read_wal_file(path: &std::path::Path) -> Result<WalContents, PersistError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    read_wal(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(b: u8) -> [u8; 32] {
        [b; 32]
    }

    fn sample_log() -> Vec<u8> {
        let mut file = encode_header(3, 42);
        file.extend(encode_record(&WalOp::Join(UserId(1)), &digest(1)));
        file.extend(encode_record(&WalOp::EnqueueLeave(UserId(2)), &digest(2)));
        file.extend(encode_record(&WalOp::Flush { now_ms: 500 }, &digest(3)));
        file.extend(encode_record(&WalOp::Refresh, &digest(4)));
        file
    }

    #[test]
    fn roundtrip_all_ops() {
        let contents = read_wal(&sample_log()).unwrap();
        assert_eq!(contents.epoch, 3);
        assert_eq!(contents.seed, 42);
        assert!(!contents.torn_tail);
        assert_eq!(contents.valid_len, sample_log().len() as u64);
        let ops: Vec<WalOp> = contents.ops.iter().map(|(op, _)| *op).collect();
        assert_eq!(
            ops,
            vec![
                WalOp::Join(UserId(1)),
                WalOp::EnqueueLeave(UserId(2)),
                WalOp::Flush { now_ms: 500 },
                WalOp::Refresh,
            ]
        );
        assert_eq!(contents.ops[2].1, digest(3));
    }

    #[test]
    fn derived_ops_roundtrip() {
        let mut file = encode_header(1, 7);
        file.extend(encode_record(&WalOp::DerivedJoin(UserId(9)), &digest(5)));
        file.extend(encode_record(&WalOp::DerivedRefresh, &digest(6)));
        let contents = read_wal(&file).unwrap();
        let ops: Vec<WalOp> = contents.ops.iter().map(|(op, _)| *op).collect();
        assert_eq!(ops, vec![WalOp::DerivedJoin(UserId(9)), WalOp::DerivedRefresh]);
        assert!(!contents.torn_tail);
        assert_eq!(WalOp::DerivedJoin(UserId(9)).name(), "derived_join");
        assert_eq!(WalOp::DerivedRefresh.name(), "derived_refresh");
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let file = sample_log();
        let third_record_end = {
            let mut f = encode_header(3, 42);
            f.extend(encode_record(&WalOp::Join(UserId(1)), &digest(1)));
            f.extend(encode_record(&WalOp::EnqueueLeave(UserId(2)), &digest(2)));
            f.extend(encode_record(&WalOp::Flush { now_ms: 500 }, &digest(3)));
            f.len()
        };
        // Cut anywhere strictly inside the final record: the first three
        // records must survive and the tear must be reported.
        for cut in third_record_end + 1..file.len() {
            let contents = read_wal(&file[..cut]).unwrap();
            assert_eq!(contents.ops.len(), 3, "cut at {cut}");
            assert!(contents.torn_tail, "cut at {cut}");
            assert_eq!(contents.valid_len, third_record_end as u64);
        }
        // Cut exactly at a record boundary: clean log, no tear.
        let contents = read_wal(&file[..third_record_end]).unwrap();
        assert_eq!(contents.ops.len(), 3);
        assert!(!contents.torn_tail);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let mut file = sample_log();
        let last = file.len() - 1;
        file[last] ^= 0xFF; // flip inside the final record's CRC
        let contents = read_wal(&file).unwrap();
        assert_eq!(contents.ops.len(), 3);
        assert!(contents.torn_tail);
    }

    #[test]
    fn bad_header_is_an_error() {
        let mut file = sample_log();
        file[0] = b'X';
        assert!(matches!(read_wal(&file), Err(PersistError::Corrupt("wal magic"))));
        let short = &sample_log()[..10];
        assert!(read_wal(short).is_err());
    }

    #[test]
    fn valid_crc_with_garbage_payload_is_corruption() {
        let mut file = encode_header(0, 0);
        let payload = vec![9u8; 40]; // tag 9 is not a WalOp
        file.put_u32(payload.len() as u32);
        file.extend_from_slice(&payload);
        file.put_u32(crc32(&payload));
        assert!(matches!(read_wal(&file), Err(PersistError::Corrupt("wal op tag"))));
    }
}
