//! # kg-persist — durability for the group key server
//!
//! The paper's key server (§5) is an in-memory process: a crash loses the
//! whole key graph and forces a full group re-initialization. This crate
//! adds the standard database-style remedy, shaped to the key server's
//! unusual advantage — the server is a *deterministic* state machine
//! driven by an HMAC-DRBG, so the log can record tiny *requests* instead
//! of effects and recovery regenerates every key bit-for-bit:
//!
//! * [`wal`] — an append-only write-ahead log of mutating ops (join,
//!   leave, enqueue, batch flush, key refresh), length-prefixed and
//!   CRC-checked, reusing the `kg-wire` codec, with a configurable fsync
//!   policy ([`FsyncPolicy`]). Each record carries the post-op root-key
//!   digest so replay can prove convergence.
//! * [`snapshot`] — atomic full checkpoints (key tree, DRBG states, ACL,
//!   stats, batch queue), written temp-file-then-rename.
//! * [`store`] — the epoch-paired directory layout tying the two
//!   together: taking a snapshot rotates to a fresh WAL and truncates
//!   history; recovery loads the latest pair and tolerates a torn final
//!   record.
//!
//! The server side of the contract lives in `kg-server`
//! (`GroupKeyServer::recover`); this crate knows nothing about servers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{AclSnapshot, SchedulerSnapshot, Snapshot, StatRecord};
pub use store::{PersistConfig, Persistence, RecoveredState};
pub use wal::{FsyncPolicy, WalOp};

use std::fmt;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk data failed validation; the payload names the first
    /// structure that did.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt(what) => write!(f, "persisted state corrupt: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let io = PersistError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
        let corrupt = PersistError::Corrupt("wal magic");
        assert!(corrupt.to_string().contains("wal magic"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
