//! The on-disk store: an epoch-paired snapshot + WAL and the append path.
//!
//! A store directory holds at most one *epoch pair*:
//!
//! ```text
//! snapshot-<epoch>.kgs   checkpoint of the state at the start of the epoch
//! wal-<epoch>.kgl        every mutating op since that checkpoint
//! ```
//!
//! Epoch 0 has no snapshot — its WAL starts from the freshly constructed
//! server. Taking a snapshot rotates to the next epoch: the new snapshot
//! and an empty WAL are written and synced *before* the previous pair is
//! deleted, so a crash at any point leaves one recoverable pair on disk.

use crate::snapshot::Snapshot;
use crate::wal::{encode_header, encode_record, read_wal_file, FsyncPolicy, WalOp, WAL_HEADER_LEN};
use crate::PersistError;

use kg_obs::{Histogram, Obs, ObsEvent};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tuning for the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct PersistConfig {
    /// When appended WAL records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Suggest a snapshot after this many logged ops.
    pub snapshot_every_ops: u64,
    /// Suggest a snapshot once the WAL exceeds this many bytes.
    pub snapshot_max_bytes: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            fsync: FsyncPolicy::default(),
            snapshot_every_ops: 1024,
            snapshot_max_bytes: 4 << 20,
        }
    }
}

/// Everything read back from a store directory at recovery time.
#[derive(Debug)]
pub struct RecoveredState {
    /// The latest snapshot, if the store has rotated past epoch 0.
    pub snapshot: Option<Snapshot>,
    /// DRBG seed recorded in the WAL header.
    pub seed: u64,
    /// Epoch of the recovered pair.
    pub epoch: u64,
    /// Valid WAL records to replay, in order, each with the root-key
    /// digest observed after the op.
    pub ops: Vec<(WalOp, [u8; 32])>,
    /// Whether a torn final record was discarded.
    pub torn_tail: bool,
}

/// Handle to an open store: appends records, rotates on snapshot.
#[derive(Debug)]
pub struct Persistence {
    dir: PathBuf,
    config: PersistConfig,
    seed: u64,
    epoch: u64,
    wal: File,
    wal_len: u64,
    ops_since_snapshot: u64,
    records_since_sync: u32,
    last_sync: Instant,
    obs: Obs,
    fsync_us: Histogram,
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.kgl"))
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch}.kgs"))
}

/// Best-effort directory sync so renames/creates survive power loss.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Find the highest epoch with a WAL file in `dir`.
fn latest_epoch(dir: &Path) -> Result<Option<u64>, PersistError> {
    let mut latest = None;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("wal-") else { continue };
        let Some(num) = rest.strip_suffix(".kgl") else { continue };
        if let Ok(epoch) = num.parse::<u64>() {
            latest = Some(latest.map_or(epoch, |e: u64| e.max(epoch)));
        }
    }
    Ok(latest)
}

impl Persistence {
    /// Create a fresh store in `dir` (created if absent). Fails if the
    /// directory already contains a WAL — an existing store must go
    /// through [`Persistence::recover`] instead of being overwritten.
    pub fn create(
        dir: impl Into<PathBuf>,
        seed: u64,
        config: PersistConfig,
    ) -> Result<Self, PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if latest_epoch(&dir)?.is_some() {
            return Err(PersistError::Corrupt("store directory already contains a log"));
        }
        let mut wal = OpenOptions::new().create_new(true).write(true).open(wal_path(&dir, 0))?;
        wal.write_all(&encode_header(0, seed))?;
        wal.sync_data()?;
        sync_dir(&dir);
        Ok(Persistence {
            dir,
            config,
            seed,
            epoch: 0,
            wal,
            wal_len: WAL_HEADER_LEN,
            ops_since_snapshot: 0,
            records_since_sync: 0,
            last_sync: Instant::now(),
            obs: Obs::disabled(),
            fsync_us: Histogram::default(),
        })
    }

    /// Attach an observability handle: fsync latency lands in the
    /// `kg_fsync_us` histogram; appends, rotations, and snapshot
    /// installs are counted and put on the event timeline.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.fsync_us = obs.histogram("kg_fsync_us");
        self.obs = obs;
    }

    /// Read back the latest epoch pair and reopen the WAL for append
    /// (truncating a torn final record away). The caller replays
    /// `RecoveredState` through its own state machine, then continues
    /// appending through the returned handle.
    pub fn recover(
        dir: impl Into<PathBuf>,
        config: PersistConfig,
    ) -> Result<(Self, RecoveredState), PersistError> {
        let dir = dir.into();
        let Some(epoch) = latest_epoch(&dir)? else {
            return Err(PersistError::Corrupt("no log found in store directory"));
        };
        let contents = read_wal_file(&wal_path(&dir, epoch))?;
        if contents.epoch != epoch {
            return Err(PersistError::Corrupt("wal header epoch does not match file name"));
        }
        let snapshot = match epoch {
            0 => None,
            _ => {
                let mut bytes = Vec::new();
                File::open(snapshot_path(&dir, epoch))?.read_to_end(&mut bytes)?;
                let (snap, snap_epoch) = Snapshot::decode(&bytes)?;
                if snap_epoch != epoch {
                    return Err(PersistError::Corrupt("snapshot epoch does not match file name"));
                }
                if snap.seed != contents.seed {
                    return Err(PersistError::Corrupt("snapshot seed does not match wal header"));
                }
                Some(snap)
            }
        };
        // Append mode: every later write lands at the (truncated) tail.
        let wal = OpenOptions::new().append(true).open(wal_path(&dir, epoch))?;
        wal.set_len(contents.valid_len)?;
        wal.sync_data()?;
        let ops_since_snapshot = contents.ops.len() as u64;
        let recovered = RecoveredState {
            snapshot,
            seed: contents.seed,
            epoch,
            ops: contents.ops,
            torn_tail: contents.torn_tail,
        };
        let persistence = Persistence {
            dir,
            config,
            seed: recovered.seed,
            epoch,
            wal,
            wal_len: contents.valid_len,
            ops_since_snapshot,
            records_since_sync: 0,
            last_sync: Instant::now(),
            obs: Obs::disabled(),
            fsync_us: Histogram::default(),
        };
        Ok((persistence, recovered))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The DRBG seed recorded in the WAL header.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Ops appended since the last snapshot (or creation).
    pub fn ops_since_snapshot(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// Append one op to the WAL; syncs according to the fsync policy.
    /// The record carries the root-key digest observed *after* the op.
    pub fn append(&mut self, op: &WalOp, root_digest: &[u8; 32]) -> Result<(), PersistError> {
        let record = encode_record(op, root_digest);
        // Appends always land at the tracked tail: recovery truncated any
        // torn bytes away, so a partially synced earlier write cannot
        // leave a gap under this record.
        self.wal.write_all(&record)?;
        self.wal_len += record.len() as u64;
        self.ops_since_snapshot += 1;
        self.records_since_sync += 1;
        self.obs.counter_with("kg_wal_appends_total", "op", op.name()).inc();
        self.obs.event(ObsEvent::WalAppend { op: op.name() });
        let due = match self.config.fsync {
            FsyncPolicy::EveryRecord => true,
            FsyncPolicy::EveryN(n) => self.records_since_sync >= n.max(1),
            FsyncPolicy::IntervalMs(ms) => self.last_sync.elapsed().as_millis() as u64 >= ms,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        let started = Instant::now();
        self.wal.sync_data()?;
        self.fsync_us.record(started.elapsed().as_micros() as u64);
        self.records_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Whether the configured snapshot thresholds have been crossed.
    pub fn should_snapshot(&self) -> bool {
        self.ops_since_snapshot >= self.config.snapshot_every_ops
            || self.wal_len >= self.config.snapshot_max_bytes
    }

    /// Write `snap` as the next epoch's checkpoint and truncate the log:
    /// the snapshot and a fresh WAL are durably written first, then the
    /// previous epoch's files are removed.
    pub fn install_snapshot(&mut self, snap: &Snapshot) -> Result<(), PersistError> {
        let started = Instant::now();
        let new_epoch = self.epoch + 1;
        // 1. Atomic snapshot write: temp file, sync, rename.
        let final_path = snapshot_path(&self.dir, new_epoch);
        let tmp_path = self.dir.join(format!("snapshot-{new_epoch}.kgs.tmp"));
        let snap_bytes;
        {
            let encoded = snap.encode(new_epoch);
            snap_bytes = encoded.len() as u64;
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&encoded)?;
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // 2. Fresh WAL for the new epoch.
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(wal_path(&self.dir, new_epoch))?;
        wal.write_all(&encode_header(new_epoch, self.seed))?;
        wal.sync_data()?;
        sync_dir(&self.dir);
        // 3. Only now is the old pair redundant.
        let _ = std::fs::remove_file(wal_path(&self.dir, self.epoch));
        if self.epoch > 0 {
            let _ = std::fs::remove_file(snapshot_path(&self.dir, self.epoch));
        }
        sync_dir(&self.dir);
        self.epoch = new_epoch;
        self.wal = wal;
        self.wal_len = WAL_HEADER_LEN;
        self.ops_since_snapshot = 0;
        self.records_since_sync = 0;
        let duration_us = started.elapsed().as_micros() as u64;
        self.obs.counter("kg_snapshots_total").inc();
        self.obs.histogram("kg_snapshot_bytes").record(snap_bytes);
        self.obs.histogram("kg_snapshot_us").record(duration_us);
        self.obs.event(ObsEvent::SnapshotInstalled {
            epoch: new_epoch,
            bytes: snap_bytes,
            duration_us,
        });
        self.obs.event(ObsEvent::WalRotated { epoch: new_epoch });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::AclSnapshot;
    use kg_core::ids::UserId;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Fresh scratch directory, unique per test invocation.
    fn scratch() -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("kg-persist-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn digest(b: u8) -> [u8; 32] {
        [b; 32]
    }

    fn dummy_snapshot(seed: u64, seq: u64) -> Snapshot {
        Snapshot {
            seed,
            seq,
            keygen: ([1u8; 32], [2u8; 32]),
            ivs: ([3u8; 32], [4u8; 32]),
            tree: vec![7u8; 64],
            acl: AclSnapshot::AllowAll,
            stats: Vec::new(),
            scheduler: None,
            root_digest: digest(9),
        }
    }

    #[test]
    fn create_append_recover() {
        let dir = scratch();
        let mut p = Persistence::create(&dir, 5, PersistConfig::default()).unwrap();
        p.append(&WalOp::Join(UserId(1)), &digest(1)).unwrap();
        p.append(&WalOp::Leave(UserId(1)), &digest(2)).unwrap();
        p.sync().unwrap();
        drop(p);

        let (p, recovered) = Persistence::recover(&dir, PersistConfig::default()).unwrap();
        assert_eq!(recovered.seed, 5);
        assert_eq!(recovered.epoch, 0);
        assert!(recovered.snapshot.is_none());
        assert!(!recovered.torn_tail);
        assert_eq!(
            recovered.ops.iter().map(|(op, _)| *op).collect::<Vec<_>>(),
            vec![WalOp::Join(UserId(1)), WalOp::Leave(UserId(1))]
        );
        assert_eq!(recovered.ops[1].1, digest(2));
        drop(p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = scratch();
        let p = Persistence::create(&dir, 1, PersistConfig::default()).unwrap();
        drop(p);
        assert!(Persistence::create(&dir, 1, PersistConfig::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_truncates_torn_tail_and_appends_continue() {
        let dir = scratch();
        let mut p = Persistence::create(&dir, 3, PersistConfig::default()).unwrap();
        p.append(&WalOp::Join(UserId(1)), &digest(1)).unwrap();
        p.append(&WalOp::Join(UserId(2)), &digest(2)).unwrap();
        p.sync().unwrap();
        drop(p);

        // Tear the final record by chopping 3 bytes off the file.
        let path = wal_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut p, recovered) = Persistence::recover(&dir, PersistConfig::default()).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(recovered.ops.len(), 1);
        // Appending after recovery lands cleanly where the tear was cut.
        p.append(&WalOp::Join(UserId(3)), &digest(3)).unwrap();
        p.sync().unwrap();
        drop(p);
        let (_, recovered) = Persistence::recover(&dir, PersistConfig::default()).unwrap();
        assert!(!recovered.torn_tail);
        assert_eq!(
            recovered.ops.iter().map(|(op, _)| *op).collect::<Vec<_>>(),
            vec![WalOp::Join(UserId(1)), WalOp::Join(UserId(3))]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotates_epoch_and_removes_old_pair() {
        let dir = scratch();
        let mut p = Persistence::create(&dir, 8, PersistConfig::default()).unwrap();
        for i in 0..5 {
            p.append(&WalOp::Join(UserId(i)), &digest(i as u8)).unwrap();
        }
        p.install_snapshot(&dummy_snapshot(8, 5)).unwrap();
        assert_eq!(p.epoch(), 1);
        assert_eq!(p.ops_since_snapshot(), 0);
        p.append(&WalOp::Leave(UserId(0)), &digest(100)).unwrap();
        p.sync().unwrap();
        drop(p);

        assert!(!wal_path(&dir, 0).exists());
        let (p, recovered) = Persistence::recover(&dir, PersistConfig::default()).unwrap();
        assert_eq!(recovered.epoch, 1);
        let snap = recovered.snapshot.expect("snapshot present past epoch 0");
        assert_eq!(snap.seq, 5);
        assert_eq!(
            recovered.ops.iter().map(|(op, _)| *op).collect::<Vec<_>>(),
            vec![WalOp::Leave(UserId(0))]
        );
        drop(p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn should_snapshot_thresholds() {
        let dir = scratch();
        let cfg = PersistConfig {
            fsync: FsyncPolicy::EveryRecord,
            snapshot_every_ops: 3,
            snapshot_max_bytes: u64::MAX,
        };
        let mut p = Persistence::create(&dir, 0, cfg).unwrap();
        assert!(!p.should_snapshot());
        for i in 0..3 {
            p.append(&WalOp::Join(UserId(i)), &digest(0)).unwrap();
        }
        assert!(p.should_snapshot());
        p.install_snapshot(&dummy_snapshot(0, 3)).unwrap();
        assert!(!p.should_snapshot());
        drop(p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_every_n_counts_records() {
        let dir = scratch();
        let cfg = PersistConfig { fsync: FsyncPolicy::EveryN(2), ..PersistConfig::default() };
        let mut p = Persistence::create(&dir, 0, cfg).unwrap();
        // No crash-injection harness here — just exercise the counter path.
        for i in 0..5 {
            p.append(&WalOp::Join(UserId(i)), &digest(0)).unwrap();
        }
        drop(p);
        let (_, recovered) = Persistence::recover(&dir, PersistConfig::default()).unwrap();
        assert_eq!(recovered.ops.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_empty_dir_is_an_error() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Persistence::recover(&dir, PersistConfig::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
