//! Interval/queue-depth flush scheduling for batched rekeying.

use kg_core::ids::UserId;
use kg_crypto::SymmetricKey;
use kg_obs::{Counter, Gauge, Obs, ObsEvent};

/// When the scheduler flushes its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush at least this often (milliseconds) while requests are pending.
    pub interval_ms: u64,
    /// Flush immediately once this many requests are queued.
    pub max_pending: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { interval_ms: 1_000, max_pending: 64 }
    }
}

/// One interval's drained requests, ready for
/// [`KeyTree::apply_batch`](kg_core::tree::KeyTree::apply_batch).
#[derive(Debug, Clone)]
pub struct PendingBatch {
    /// Interval sequence number (1-based, monotonically increasing).
    pub interval: u64,
    /// Queued joins, in arrival order.
    pub joins: Vec<(UserId, SymmetricKey)>,
    /// Queued leaves, in arrival order.
    pub leaves: Vec<UserId>,
}

/// Queues join/leave requests between rekey intervals.
///
/// Flush timing is decided by [`BatchPolicy`]: the queue is drained when
/// `interval_ms` has elapsed since the last flush (and something is
/// pending), or as soon as `max_pending` requests accumulate, whichever
/// comes first. The scheduler never consults a clock itself — callers
/// pass `now_ms`, which keeps it usable under the simulated network.
///
/// Within one interval, opposing requests collapse: a leave cancels a
/// pending join for the same user (the pair is a no-op), while a join
/// after a pending leave is kept as a leave-then-rejoin (the tree
/// handles that pairing in one batch).
#[derive(Debug, Default)]
pub struct BatchScheduler {
    policy: BatchPolicy,
    joins: Vec<(UserId, SymmetricKey)>,
    leaves: Vec<UserId>,
    last_flush_ms: u64,
    intervals_flushed: u64,
    obs: Obs,
    queue_depth: Gauge,
    collapsed_joins: Counter,
    deduped_leaves: Counter,
}

impl BatchScheduler {
    /// Create a scheduler; `now_ms` starts the first interval.
    pub fn new(policy: BatchPolicy, now_ms: u64) -> Self {
        BatchScheduler {
            policy,
            joins: Vec::new(),
            leaves: Vec::new(),
            last_flush_ms: now_ms,
            intervals_flushed: 0,
            obs: Obs::disabled(),
            queue_depth: Gauge::default(),
            collapsed_joins: Counter::default(),
            deduped_leaves: Counter::default(),
        }
    }

    /// Attach an observability handle: the queue-depth gauge
    /// (`kg_batch_queue_depth`), collapse/dedup counters, and
    /// enqueue/flush timeline events flow to it.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.queue_depth = obs.gauge("kg_batch_queue_depth");
        self.collapsed_joins = obs.counter("kg_batch_collapsed_joins_total");
        self.deduped_leaves = obs.counter("kg_batch_deduped_leaves_total");
        self.queue_depth.set(self.pending() as i64);
        self.obs = obs;
    }

    /// The flush policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of queued requests.
    pub fn pending(&self) -> usize {
        self.joins.len() + self.leaves.len()
    }

    /// Number of intervals flushed so far.
    pub fn intervals_flushed(&self) -> u64 {
        self.intervals_flushed
    }

    /// Whether `user` has a queued join.
    pub fn has_pending_join(&self, user: UserId) -> bool {
        self.joins.iter().any(|(u, _)| *u == user)
    }

    /// Whether `user` has a queued leave.
    pub fn has_pending_leave(&self, user: UserId) -> bool {
        self.leaves.contains(&user)
    }

    /// Queue a join request. A repeated join for the same user replaces
    /// the queued individual key (the later request wins).
    pub fn enqueue_join(&mut self, user: UserId, individual_key: SymmetricKey) {
        if let Some(slot) = self.joins.iter_mut().find(|(u, _)| *u == user) {
            slot.1 = individual_key;
        } else {
            self.joins.push((user, individual_key));
        }
        self.obs.event(ObsEvent::EnqueueJoin { user: user.0 });
        self.queue_depth.set(self.pending() as i64);
    }

    /// Queue a leave request. Cancels a pending join for the same user
    /// (join-then-leave within one interval is a net no-op); a repeated
    /// leave is ignored.
    pub fn enqueue_leave(&mut self, user: UserId) {
        if let Some(pos) = self.joins.iter().position(|(u, _)| *u == user) {
            self.joins.remove(pos);
            self.collapsed_joins.inc();
            self.obs.event(ObsEvent::CollapsedJoin { user: user.0 });
            self.queue_depth.set(self.pending() as i64);
            return;
        }
        if self.leaves.contains(&user) {
            self.deduped_leaves.inc();
        } else {
            self.leaves.push(user);
        }
        self.obs.event(ObsEvent::EnqueueLeave { user: user.0 });
        self.queue_depth.set(self.pending() as i64);
    }

    /// Whether the queue should flush at `now_ms`.
    pub fn should_flush(&self, now_ms: u64) -> bool {
        let n = self.pending();
        n >= self.policy.max_pending
            || (n > 0 && now_ms.saturating_sub(self.last_flush_ms) >= self.policy.interval_ms)
    }

    /// Drain the queue as one interval, unconditionally. Returns `None`
    /// when nothing is pending (the empty interval is not counted).
    pub fn take(&mut self, now_ms: u64) -> Option<PendingBatch> {
        if self.pending() == 0 {
            self.last_flush_ms = now_ms;
            return None;
        }
        self.intervals_flushed += 1;
        self.last_flush_ms = now_ms;
        let batch = PendingBatch {
            interval: self.intervals_flushed,
            joins: std::mem::take(&mut self.joins),
            leaves: std::mem::take(&mut self.leaves),
        };
        self.obs.event(ObsEvent::Flush {
            interval: batch.interval,
            joins: batch.joins.len() as u64,
            leaves: batch.leaves.len() as u64,
        });
        self.queue_depth.set(0);
        Some(batch)
    }

    /// [`take`](Self::take) if [`should_flush`](Self::should_flush).
    pub fn poll(&mut self, now_ms: u64) -> Option<PendingBatch> {
        if self.should_flush(now_ms) {
            self.take(now_ms)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing (used by persistence layers)
    // ------------------------------------------------------------------

    /// The queued joins, in arrival order (checkpointing).
    pub fn pending_joins(&self) -> &[(UserId, SymmetricKey)] {
        &self.joins
    }

    /// The queued leaves, in arrival order (checkpointing).
    pub fn pending_leaves(&self) -> &[UserId] {
        &self.leaves
    }

    /// Start of the current interval (checkpointing).
    pub fn last_flush_ms(&self) -> u64 {
        self.last_flush_ms
    }

    /// Rebuild a scheduler from checkpointed state, continuing exactly
    /// where the original left off.
    pub fn restore(
        policy: BatchPolicy,
        joins: Vec<(UserId, SymmetricKey)>,
        leaves: Vec<UserId>,
        last_flush_ms: u64,
        intervals_flushed: u64,
    ) -> Self {
        BatchScheduler {
            policy,
            joins,
            leaves,
            last_flush_ms,
            intervals_flushed,
            ..BatchScheduler::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymmetricKey {
        SymmetricKey::new(vec![b; 8])
    }

    #[test]
    fn flushes_on_interval_elapse() {
        let mut s = BatchScheduler::new(BatchPolicy { interval_ms: 100, max_pending: 10 }, 0);
        s.enqueue_join(UserId(1), key(1));
        assert!(s.poll(50).is_none());
        let batch = s.poll(100).expect("interval elapsed");
        assert_eq!(batch.interval, 1);
        assert_eq!(batch.joins.len(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn flushes_early_on_queue_depth() {
        let mut s = BatchScheduler::new(BatchPolicy { interval_ms: 1_000, max_pending: 3 }, 0);
        s.enqueue_join(UserId(1), key(1));
        s.enqueue_leave(UserId(9));
        assert!(s.poll(1).is_none());
        s.enqueue_join(UserId(2), key(2));
        let batch = s.poll(1).expect("depth threshold hit");
        assert_eq!(batch.joins.len(), 2);
        assert_eq!(batch.leaves, vec![UserId(9)]);
    }

    #[test]
    fn empty_queue_never_flushes() {
        let mut s = BatchScheduler::new(BatchPolicy { interval_ms: 10, max_pending: 1 }, 0);
        assert!(!s.should_flush(1_000_000));
        assert!(s.poll(1_000_000).is_none());
        assert_eq!(s.intervals_flushed(), 0);
    }

    #[test]
    fn leave_cancels_pending_join() {
        let mut s = BatchScheduler::new(BatchPolicy::default(), 0);
        s.enqueue_join(UserId(7), key(7));
        s.enqueue_leave(UserId(7));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn join_after_leave_is_kept_as_rejoin() {
        let mut s = BatchScheduler::new(BatchPolicy::default(), 0);
        s.enqueue_leave(UserId(7));
        s.enqueue_join(UserId(7), key(7));
        assert_eq!(s.pending(), 2);
        let batch = s.take(1).unwrap();
        assert_eq!(batch.joins.len(), 1);
        assert_eq!(batch.leaves.len(), 1);
    }

    #[test]
    fn repeated_join_replaces_key_and_repeated_leave_is_deduped() {
        let mut s = BatchScheduler::new(BatchPolicy::default(), 0);
        s.enqueue_join(UserId(1), key(1));
        s.enqueue_join(UserId(1), key(2));
        s.enqueue_leave(UserId(5));
        s.enqueue_leave(UserId(5));
        assert_eq!(s.pending(), 2);
        let batch = s.take(1).unwrap();
        assert_eq!(batch.joins, vec![(UserId(1), key(2))]);
        assert_eq!(batch.leaves, vec![UserId(5)]);
    }

    #[test]
    fn interval_counter_is_monotonic_and_skips_empty_flushes() {
        let mut s = BatchScheduler::new(BatchPolicy { interval_ms: 10, max_pending: 100 }, 0);
        s.enqueue_leave(UserId(1));
        assert_eq!(s.take(10).unwrap().interval, 1);
        assert!(s.take(20).is_none());
        s.enqueue_leave(UserId(2));
        assert_eq!(s.take(30).unwrap().interval, 2);
    }

    #[test]
    fn restore_continues_where_snapshot_left_off() {
        let policy = BatchPolicy { interval_ms: 100, max_pending: 10 };
        let mut original = BatchScheduler::new(policy, 0);
        original.enqueue_leave(UserId(1));
        original.take(40);
        original.enqueue_join(UserId(2), key(2));
        original.enqueue_leave(UserId(3));

        let mut restored = BatchScheduler::restore(
            original.policy(),
            original.pending_joins().to_vec(),
            original.pending_leaves().to_vec(),
            original.last_flush_ms(),
            original.intervals_flushed(),
        );
        assert_eq!(restored.pending(), original.pending());
        assert!(!restored.should_flush(100));
        let batch = restored.poll(140).expect("interval elapsed from restored clock");
        assert_eq!(batch.interval, 2);
        assert_eq!(batch.joins, vec![(UserId(2), key(2))]);
        assert_eq!(batch.leaves, vec![UserId(3)]);
    }

    #[test]
    fn take_resets_the_interval_clock() {
        let mut s = BatchScheduler::new(BatchPolicy { interval_ms: 100, max_pending: 10 }, 0);
        s.enqueue_leave(UserId(1));
        s.take(150);
        s.enqueue_leave(UserId(2));
        assert!(!s.should_flush(200));
        assert!(s.should_flush(250));
    }
}
