//! Consolidated rekey-message construction for one batch interval.

use kg_core::batch::BatchEvent;
use kg_core::ids::{KeyLabel, KeyRef};
use kg_core::rekey::{
    BundleSink, KeyCipher, OpCounts, Recipients, RekeyMessage, RekeyOutput, SealingSink, Strategy,
};
use kg_crypto::{KeySource, SymmetricKey};
use std::collections::BTreeMap;

/// Construct one interval's rekey messages from a [`BatchEvent`],
/// drawing every ciphertext from `sink`.
///
/// Every current member learns exactly the new keys on its path;
/// departed members can decrypt none of them (each ciphertext is keyed
/// by a surviving child's key); joiners learn only post-batch keys, via
/// their unicast.
///
/// Bundle-request order follows [`BatchEvent::key_cover`]: marked nodes
/// root-first (BFS), children in the recorded child order. For the
/// key-oriented strategy the marked-child chain ciphertexts are sealed
/// first in that cover order (fixing their IVs once, as the
/// stored-ciphertext optimization requires); the per-subgroup messages
/// then re-request them as cache hits. Joiner unicasts come last, in
/// event order. This total order is what lets a deferred/parallel sink
/// reproduce the sequential byte stream exactly.
pub fn build_batch(sink: &mut dyn BundleSink, ev: &BatchEvent, strategy: Strategy) -> RekeyOutput {
    let mut ops = OpCounts { keys_generated: ev.marked.len() as u64, ..OpCounts::default() };
    let mut messages = Vec::new();
    if ev.marked.is_empty() {
        // Group emptied (or nothing happened): nothing to distribute.
        return RekeyOutput { messages, ops };
    }

    // Parent links among marked nodes, from the children lists:
    // `parent_of[y] = x` iff marked y is a child of marked x. Walking
    // parent_of from any marked node reaches the root (index 0).
    let by_label: BTreeMap<KeyLabel, usize> =
        ev.marked.iter().enumerate().map(|(i, m)| (m.label, i)).collect();
    let mut parent_of: BTreeMap<KeyLabel, KeyLabel> = BTreeMap::new();
    for m in &ev.marked {
        for c in &m.children {
            if c.marked {
                parent_of.insert(c.label, m.label);
            }
        }
    }

    match strategy {
        Strategy::GroupOriented => {
            // One multicast carrying {K'_x}_{K_y} for every marked x
            // and every non-joiner child y (new K_y when y is marked).
            let mut bundles = Vec::new();
            for (m, c) in ev.key_cover() {
                if c.joiner.is_none() {
                    bundles.push(sink.bundle(
                        &mut ops,
                        c.key_ref,
                        &c.key,
                        &[(m.new_ref, &m.new_key)],
                    ));
                }
            }
            messages.push(RekeyMessage { recipients: Recipients::Group, bundles });
        }
        Strategy::KeyOriented => {
            // Seal the chain ciphertexts {K'_x}_{K'_y} (marked child y
            // of marked x) first, in cover order; the per-subgroup
            // messages below re-request them as cache hits, so each is
            // encrypted (and counted) exactly once — the batched
            // analogue of Figure 8's stored-ciphertext optimization.
            // `chain_src[y]` remembers the request triple so the walk
            // re-issues it identically.
            let mut chain_src: BTreeMap<KeyLabel, (KeyRef, &SymmetricKey)> = BTreeMap::new();
            for (m, c) in ev.key_cover() {
                if c.marked {
                    let _ = sink.bundle(&mut ops, c.key_ref, &c.key, &[(m.new_ref, &m.new_key)]);
                    chain_src.insert(c.label, (c.key_ref, &c.key));
                }
            }
            // For each unmarked, non-joiner child y of marked x:
            // M = {K'_x}_{K_y}, {K'_p(x)}_{K'_x}, … up to the root.
            for (m, c) in ev.key_cover() {
                if c.marked || c.joiner.is_some() {
                    continue;
                }
                let head = sink.bundle(&mut ops, c.key_ref, &c.key, &[(m.new_ref, &m.new_key)]);
                let mut bundles = vec![head];
                let mut cur = m.label;
                while let Some(&(link_ref, link_key)) = chain_src.get(&cur) {
                    let parent = &ev.marked[by_label[&parent_of[&cur]]];
                    bundles.push(sink.bundle(
                        &mut ops,
                        link_ref,
                        link_key,
                        &[(parent.new_ref, &parent.new_key)],
                    ));
                    cur = parent.label;
                }
                messages.push(RekeyMessage { recipients: Recipients::Subgroup(c.label), bundles });
            }
        }
        Strategy::Derived => {
            // Client-derived interval: the event must come from
            // `KeyTree::apply_batch_derived` (pure joins), whose marked
            // keys every current member recomputes locally from the
            // published derivation code. Nothing is shipped to them —
            // the server's keys came from the KDF, not the generator —
            // so only the joiner unicasts below are sealed. Intervals
            // containing leaves use `Strategy::shipped_fallback()`
            // instead (forward secrecy: departed members could run the
            // public derivation too).
            ops.keys_generated = 0;
        }
        Strategy::UserOriented => {
            // For each unmarked, non-joiner child y of marked x: one
            // tailored message carrying every new key on x's path to
            // the root in a single bundle under K_y — smallest
            // per-client payload, most server encryptions.
            for (m, c) in ev.key_cover() {
                if c.marked || c.joiner.is_some() {
                    continue;
                }
                let mut targets: Vec<(KeyRef, &SymmetricKey)> = Vec::new();
                let mut cur = Some(m.label);
                while let Some(label) = cur {
                    let node = &ev.marked[by_label[&label]];
                    targets.push((node.new_ref, &node.new_key));
                    cur = parent_of.get(&label).copied();
                }
                let b = sink.bundle(&mut ops, c.key_ref, &c.key, &targets);
                messages.push(RekeyMessage {
                    recipients: Recipients::Subgroup(c.label),
                    bundles: vec![b],
                });
            }
        }
    }

    // All strategies: each joiner gets its full new path in one
    // unicast under its individual key.
    for j in &ev.joins {
        let targets: Vec<(KeyRef, &SymmetricKey)> = j.path.iter().map(|(r, k)| (*r, k)).collect();
        let b = sink.bundle(&mut ops, j.leaf_ref, &j.leaf_key, &targets);
        messages.push(RekeyMessage { recipients: Recipients::User(j.user), bundles: vec![b] });
    }

    RekeyOutput { messages, ops }
}

/// Builds the interval's rekey messages from a [`BatchEvent`].
///
/// Mirrors [`kg_core::rekey::Rekeyer`] (same cipher enum, same IV source,
/// same cost accounting) but consumes a whole interval's marked set at
/// once instead of a single operation's path. Thin wrapper over
/// [`build_batch`] with an inline [`SealingSink`] (fresh cache per
/// interval).
pub struct BatchRekeyer<'a> {
    cipher: KeyCipher,
    ivs: &'a mut dyn KeySource,
}

impl<'a> BatchRekeyer<'a> {
    /// Create a batch rekeyer.
    pub fn new(cipher: KeyCipher, ivs: &'a mut dyn KeySource) -> Self {
        BatchRekeyer { cipher, ivs }
    }

    /// The cipher in use.
    pub fn cipher(&self) -> KeyCipher {
        self.cipher
    }

    /// Construct the interval's rekey messages under `strategy`.
    pub fn rekey(&mut self, ev: &BatchEvent, strategy: Strategy) -> RekeyOutput {
        let mut sink = SealingSink::new(self.cipher, &mut *self.ivs);
        build_batch(&mut sink, ev, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::ids::{KeyLabel, KeyVersion, UserId};
    use kg_core::rekey::Rekeyer;
    use kg_core::tree::KeyTree;
    use kg_crypto::drbg::HmacDrbg;
    use std::collections::BTreeMap as Map;

    fn setup(degree: usize, n: u64) -> (KeyTree, HmacDrbg) {
        let mut src = HmacDrbg::from_seed(0xBEE5);
        let mut tree = KeyTree::new(degree, 8, &mut src);
        for i in 0..n {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        (tree, src)
    }

    /// A minimal client model: a key store driven to fixed point over the
    /// interval's messages, mirroring what `kg-client` does on the wire.
    struct MiniClient {
        keys: Map<KeyLabel, (KeyVersion, SymmetricKey)>,
    }

    impl MiniClient {
        fn from_keyset(ks: Vec<(KeyRef, SymmetricKey)>) -> Self {
            MiniClient { keys: ks.into_iter().map(|(r, k)| (r.label, (r.version, k))).collect() }
        }

        fn holds(&self, r: KeyRef) -> Option<&SymmetricKey> {
            self.keys.get(&r.label).and_then(|(v, k)| (*v == r.version).then_some(k))
        }

        /// Decrypt every reachable bundle until no progress.
        fn absorb(&mut self, cipher: KeyCipher, messages: &[&RekeyMessage]) {
            loop {
                let mut progressed = false;
                for msg in messages {
                    for b in &msg.bundles {
                        let Some(key) = self.holds(b.encrypted_with) else { continue };
                        let plain = cipher.decrypt(key, &b.iv, &b.ciphertext).unwrap();
                        for (i, t) in b.targets.iter().enumerate() {
                            let material = plain[i * 8..(i + 1) * 8].to_vec();
                            let cur = self.keys.get(&t.label);
                            if cur.is_none_or(|(v, _)| *v < t.version) {
                                self.keys.insert(t.label, (t.version, SymmetricKey::new(material)));
                                progressed = true;
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
    }

    /// Deliverability check for one batch under one strategy: survivors
    /// recover exactly their new keysets, departed users recover none of
    /// the new keys, joiners recover exactly their unicast path.
    fn check_batch(
        tree: &KeyTree,
        degree_note: &str,
        joins: &[(UserId, SymmetricKey)],
        leaves: &[UserId],
        strategy: Strategy,
        src: &mut HmacDrbg,
    ) {
        let mut tree = tree.clone();
        let pre_keysets: Map<UserId, Vec<(KeyRef, SymmetricKey)>> =
            tree.members().map(|u| (u, tree.keyset(u).unwrap())).collect();
        let ev = tree.apply_batch(joins, leaves, src).unwrap();
        let mut ivs = HmacDrbg::from_seed(0x1117);
        let mut rk = BatchRekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.rekey(&ev, strategy);
        let joiner_set: std::collections::BTreeSet<UserId> =
            joins.iter().map(|&(u, _)| u).collect();

        // Map each user to the messages addressed to it (post-batch tree).
        let deliverable = |u: UserId, include_multicast: bool| -> Vec<&RekeyMessage> {
            out.messages
                .iter()
                .filter(|m| match &m.recipients {
                    Recipients::User(t) => *t == u,
                    Recipients::Subgroup(l) => include_multicast && tree.userset(*l).contains(&u),
                    Recipients::SubgroupExcept { include, exclude } => {
                        include_multicast
                            && tree.userset(*include).contains(&u)
                            && !tree.userset(*exclude).contains(&u)
                    }
                    Recipients::Group => include_multicast,
                })
                .collect()
        };

        // Survivors (and joiners) end up with exactly their new keysets.
        for u in tree.members().collect::<Vec<_>>() {
            let mut client = if joiner_set.contains(&u) {
                MiniClient { keys: Map::new() }
            } else {
                MiniClient::from_keyset(pre_keysets[&u].clone())
            };
            if let Some((_, ik)) = joins.iter().find(|&&(ju, _)| ju == u) {
                let leaf = tree.keyset(u).unwrap()[0].clone();
                client.keys.insert(leaf.0.label, (leaf.0.version, ik.clone()));
            }
            client.absorb(KeyCipher::des_cbc(), &deliverable(u, true));
            for (r, k) in tree.keyset(u).unwrap() {
                assert_eq!(
                    client.holds(r),
                    Some(&k),
                    "{degree_note} {strategy:?}: member {u:?} missing {r:?}"
                );
            }
        }

        // Departed users, replaying *all* multicast traffic with their old
        // keys, must recover no marked key.
        for &u in leaves {
            if tree.is_member(u) {
                continue; // left and rejoined in the same interval
            }
            let mut ghost = MiniClient::from_keyset(pre_keysets[&u].clone());
            let all: Vec<&RekeyMessage> = out.messages.iter().collect();
            ghost.absorb(KeyCipher::des_cbc(), &all);
            for m in &ev.marked {
                assert!(
                    ghost.holds(m.new_ref).is_none(),
                    "{degree_note} {strategy:?}: departed {u:?} decrypted {:?}",
                    m.new_ref
                );
            }
        }
    }

    #[test]
    fn pure_join_batches_deliver_for_all_strategies() {
        for degree in [2usize, 3, 4] {
            let (tree, mut src) = setup(degree, 14);
            let joins: Vec<(UserId, SymmetricKey)> =
                (100..106).map(|i| (UserId(i), src.generate_key(8))).collect();
            for strategy in Strategy::ALL {
                check_batch(&tree, "pure-join", &joins, &[], strategy, &mut src);
            }
        }
    }

    #[test]
    fn pure_leave_batches_deliver_for_all_strategies() {
        for degree in [2usize, 3, 4] {
            let (tree, mut src) = setup(degree, 27);
            let leaves: Vec<UserId> = [1u64, 7, 13, 25].map(UserId).to_vec();
            for strategy in Strategy::ALL {
                check_batch(&tree, "pure-leave", &[], &leaves, strategy, &mut src);
            }
        }
    }

    #[test]
    fn mixed_batches_deliver_for_all_strategies() {
        for degree in [2usize, 3, 4] {
            let (tree, mut src) = setup(degree, 20);
            let joins: Vec<(UserId, SymmetricKey)> =
                (200..205).map(|i| (UserId(i), src.generate_key(8))).collect();
            let leaves: Vec<UserId> = [0u64, 4, 9, 19].map(UserId).to_vec();
            for strategy in Strategy::ALL {
                check_batch(&tree, "mixed", &joins, &leaves, strategy, &mut src);
            }
        }
    }

    #[test]
    fn rejoin_within_interval_delivers() {
        let (tree, mut src) = setup(3, 9);
        let joins = vec![(UserId(4), src.generate_key(8))];
        let leaves = vec![UserId(4)];
        for strategy in Strategy::ALL {
            check_batch(&tree, "rejoin", &joins, &leaves, strategy, &mut src);
        }
    }

    #[test]
    fn empty_event_produces_no_messages() {
        let (mut tree, mut src) = setup(3, 4);
        let leaves: Vec<UserId> = (0..4).map(UserId).collect();
        let ev = tree.apply_batch(&[], &leaves, &mut src).unwrap();
        for strategy in Strategy::ALL {
            let mut ivs = HmacDrbg::from_seed(1);
            let mut rk = BatchRekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.rekey(&ev, strategy);
            assert!(out.messages.is_empty());
            assert_eq!(out.ops.key_encryptions, 0);
        }
    }

    #[test]
    fn group_oriented_sends_exactly_one_multicast() {
        let (tree, mut src) = setup(4, 64);
        let mut t = tree.clone();
        let joins: Vec<(UserId, SymmetricKey)> =
            (100..104).map(|i| (UserId(i), src.generate_key(8))).collect();
        let leaves: Vec<UserId> = [3u64, 30, 60].map(UserId).to_vec();
        let ev = t.apply_batch(&joins, &leaves, &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(2);
        let mut rk = BatchRekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.rekey(&ev, Strategy::GroupOriented);
        let multicasts =
            out.messages.iter().filter(|m| !matches!(m.recipients, Recipients::User(_))).count();
        assert_eq!(multicasts, 1);
        let unicasts = out.messages.len() - multicasts;
        assert_eq!(unicasts, joins.len());
    }

    #[test]
    fn batched_costs_less_than_per_op_for_mixed_interval() {
        // The headline claim: one batched interval beats replaying the
        // same requests one at a time, in both encryptions and multicasts.
        let (tree, mut src) = setup(4, 256);
        let joins: Vec<(UserId, SymmetricKey)> =
            (1000..1016).map(|i| (UserId(i), src.generate_key(8))).collect();
        let leaves: Vec<UserId> = (0..16).map(|i| UserId(i * 13)).collect();
        for strategy in Strategy::ALL {
            let mut per_op_tree = tree.clone();
            let mut per_op_enc = 0u64;
            let mut per_op_multi = 0usize;
            let mut ivs = HmacDrbg::from_seed(3);
            for &u in &leaves {
                let ev = per_op_tree.leave(u, &mut src).unwrap();
                let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
                let out = rk.leave(&ev, strategy);
                per_op_enc += out.ops.key_encryptions;
                per_op_multi += out
                    .messages
                    .iter()
                    .filter(|m| !matches!(m.recipients, Recipients::User(_)))
                    .count();
            }
            for (u, ik) in &joins {
                let ev = per_op_tree.join(*u, ik.clone(), &mut src).unwrap();
                let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
                let out = rk.join(&ev, strategy);
                per_op_enc += out.ops.key_encryptions;
                per_op_multi += out
                    .messages
                    .iter()
                    .filter(|m| !matches!(m.recipients, Recipients::User(_)))
                    .count();
            }

            let mut batch_tree = tree.clone();
            let ev = batch_tree.apply_batch(&joins, &leaves, &mut src).unwrap();
            let mut ivs = HmacDrbg::from_seed(4);
            let mut rk = BatchRekeyer::new(KeyCipher::des_cbc(), &mut ivs);
            let out = rk.rekey(&ev, strategy);
            let batch_multi = out
                .messages
                .iter()
                .filter(|m| !matches!(m.recipients, Recipients::User(_)))
                .count();
            assert!(
                out.ops.key_encryptions < per_op_enc,
                "{strategy:?}: batched {} vs per-op {per_op_enc} encryptions",
                out.ops.key_encryptions
            );
            assert!(
                batch_multi < per_op_multi,
                "{strategy:?}: batched {batch_multi} vs per-op {per_op_multi} multicasts"
            );
        }
    }
}
