//! # kg-batch — batched (periodic) rekeying
//!
//! The paper's protocols (Sections 3 and 5) rekey once per join or leave,
//! so a group under heavy churn pays O(churn × log n) multicasts — the
//! known scalability ceiling of LKH. The standard fix from the follow-on
//! literature (CKCS; Chan et al.) aggregates every membership change in a
//! *rekey interval* into one batched tree update, replacing each key on
//! the union of the changed paths exactly once.
//!
//! This crate builds on [`kg_core::batch`]'s marking algorithm
//! ([`kg_core::tree::KeyTree::apply_batch`]) and provides:
//!
//! * [`BatchRekeyer`] — turns one interval's [`BatchEvent`] into a
//!   consolidated rekey message set under each of the paper's three
//!   strategies (user-, key-, group-oriented), with real ciphertexts and
//!   the same [`OpCounts`] cost accounting as the per-operation
//!   [`kg_core::rekey::Rekeyer`].
//! * [`BatchScheduler`] — queues join/leave requests and decides when to
//!   flush: on a configurable interval or when the queue reaches a depth
//!   threshold, whichever comes first.
//!
//! The message construction is the natural batched generalization of the
//! paper's leave protocol: for every marked node `x` and every child `y`
//! that is not a freshly joined leaf, the new key `K'_x` is distributed
//! encrypted under `y`'s post-batch key (`y`'s *new* key when `y` is
//! itself marked — clients resolve the resulting decryption order with
//! their usual fixed-point pass). Joiners receive their entire new key
//! path in one unicast under their individual key, exactly as in the
//! per-operation join.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rekeyer;
pub mod scheduler;

pub use rekeyer::{build_batch, BatchRekeyer};
pub use scheduler::{BatchPolicy, BatchScheduler, PendingBatch};

// Re-export the core batch event types so server code can depend on
// kg-batch alone for the batched path.
pub use kg_core::batch::{BatchChild, BatchEvent, BatchJoin, MarkedNode};
