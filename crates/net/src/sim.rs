//! The simulated datagram network.
//!
//! A single-threaded, event-driven model of the paper's testbed: endpoints
//! exchange datagrams via unicast or multicast groups; a virtual clock in
//! microseconds orders deliveries; a seeded RNG drives latency jitter,
//! loss, and duplication so that every run is exactly reproducible.

use bytes::Bytes;
use kg_obs::{ManualClock, Obs, ObsEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Identifies an endpoint ("socket") on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

/// A multicast group address. The paper assumes subgroup multicast is
/// available (one address per subtree, or the routing-label scheme of
/// [13]); here groups are cheap and the server allocates them per k-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MulticastAddr(pub u32);

/// Network behaviour knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum one-way latency in microseconds.
    pub latency_min_us: u64,
    /// Maximum one-way latency (uniform jitter between min and max; jitter
    /// produces reordering, as UDP permits).
    pub latency_max_us: u64,
    /// Probability a datagram copy is silently dropped.
    pub loss_probability: f64,
    /// Probability a datagram copy is delivered twice.
    pub duplicate_probability: f64,
    /// RNG seed for all of the above.
    pub seed: u64,
}

impl Default for NetConfig {
    /// A benign LAN: 50–200 µs latency, no loss, no duplication —
    /// equivalent to the paper's lightly loaded 100 Mbps Ethernet.
    fn default() -> Self {
        NetConfig {
            latency_min_us: 50,
            latency_max_us: 200,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0,
        }
    }
}

impl NetConfig {
    /// A lossy configuration for failure-injection tests.
    pub fn lossy(loss: f64, seed: u64) -> Self {
        NetConfig { loss_probability: loss, seed, ..NetConfig::default() }
    }
}

/// A received datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sending endpoint.
    pub from: EndpointId,
    /// Destination the sender used (unicast or a multicast group).
    pub to: Destination,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Datagram destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// A single endpoint.
    Unicast(EndpointId),
    /// All members of a multicast group.
    Multicast(MulticastAddr),
}

/// Per-endpoint traffic counters (Tables 5/6 raw material).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Datagrams handed to the network by this endpoint. A multicast send
    /// counts once (the paper counts rekey *messages*, not copies).
    pub datagrams_sent: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Datagrams delivered to this endpoint's inbox.
    pub datagrams_received: u64,
    /// Payload bytes delivered.
    pub bytes_received: u64,
}

#[derive(Debug)]
struct Endpoint {
    inbox: VecDeque<Datagram>,
    stats: TrafficStats,
}

/// Pre-resolved metric handles so the per-datagram path never touches
/// the registry lock. All handles are no-ops until [`SimNetwork::attach_obs`].
#[derive(Debug, Clone, Default)]
struct NetMetrics {
    delivered: kg_obs::Counter,
    dropped_loss: kg_obs::Counter,
    dropped_down: kg_obs::Counter,
    dropped_closed: kg_obs::Counter,
    duplicated: kg_obs::Counter,
}

impl NetMetrics {
    fn resolve(obs: &Obs) -> Self {
        NetMetrics {
            delivered: obs.counter("kg_net_delivered_total"),
            dropped_loss: obs.counter_with("kg_net_dropped_total", "mode", "loss"),
            dropped_down: obs.counter_with("kg_net_dropped_total", "mode", "down"),
            dropped_closed: obs.counter_with("kg_net_dropped_total", "mode", "closed"),
            duplicated: obs.counter("kg_net_duplicated_total"),
        }
    }
}

/// An in-flight datagram copy, ordered by delivery time then sequence so
/// the heap pops deterministically.
#[derive(Debug)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    dest: EndpointId,
    datagram: Datagram,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetConfig,
    rng: StdRng,
    clock_us: u64,
    next_endpoint: u32,
    next_mcast: u32,
    next_seq: u64,
    endpoints: BTreeMap<EndpointId, Endpoint>,
    groups: BTreeMap<MulticastAddr, BTreeSet<EndpointId>>,
    in_flight: BinaryHeap<InFlight>,
    /// Crashed endpoints (fault injection): they keep their id and group
    /// memberships, but cannot send, and traffic addressed to them while
    /// down is silently dropped — like a host that lost power.
    down: BTreeSet<EndpointId>,
    obs: Obs,
    metrics: NetMetrics,
    /// An observability clock driven from the virtual clock, so
    /// timeline entries carry simulated (deterministic) timestamps.
    obs_clock: Option<ManualClock>,
}

impl SimNetwork {
    /// Create a network with the given behaviour.
    pub fn new(config: NetConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SimNetwork {
            config,
            rng,
            clock_us: 0,
            next_endpoint: 0,
            next_mcast: 0,
            next_seq: 0,
            endpoints: BTreeMap::new(),
            groups: BTreeMap::new(),
            in_flight: BinaryHeap::new(),
            down: BTreeSet::new(),
            obs: Obs::disabled(),
            metrics: NetMetrics::default(),
            obs_clock: None,
        }
    }

    /// Attach an observability handle: delivery/drop/duplication
    /// counters (per fault mode) and crash/restart/drop timeline
    /// events flow to it from now on.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.metrics = NetMetrics::resolve(&obs);
        self.obs = obs;
    }

    /// Drive `clock` from the virtual clock: every [`advance`] moves it
    /// to the network's `now_us`, making obs timestamps deterministic.
    /// Keep a clone of the same clock inside the attached [`Obs`].
    ///
    /// [`advance`]: SimNetwork::advance
    pub fn drive_obs_clock(&mut self, clock: ManualClock) {
        clock.set_us(self.clock_us);
        self.obs_clock = Some(clock);
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Allocate a new endpoint.
    pub fn endpoint(&mut self) -> EndpointId {
        let id = EndpointId(self.next_endpoint);
        self.next_endpoint += 1;
        self.endpoints
            .insert(id, Endpoint { inbox: VecDeque::new(), stats: TrafficStats::default() });
        id
    }

    /// Remove an endpoint; undelivered traffic to it is dropped.
    pub fn close(&mut self, ep: EndpointId) {
        self.endpoints.remove(&ep);
        self.down.remove(&ep);
        for members in self.groups.values_mut() {
            members.remove(&ep);
        }
    }

    /// Crash `ep`: its inbox is lost, in-flight and future traffic to it
    /// is dropped, and sends from it are discarded until [`restart`].
    /// Group memberships persist (the routers don't know the host died).
    ///
    /// [`restart`]: SimNetwork::restart
    pub fn crash(&mut self, ep: EndpointId) {
        if let Some(e) = self.endpoints.get_mut(&ep) {
            e.inbox.clear();
            self.down.insert(ep);
            self.obs.event(ObsEvent::Crash { endpoint: ep.0 as u64 });
        }
    }

    /// Bring a crashed endpoint back. Nothing sent while it was down is
    /// recovered — the process must resynchronise at a higher layer.
    pub fn restart(&mut self, ep: EndpointId) {
        if self.down.remove(&ep) {
            self.obs.event(ObsEvent::Restart { endpoint: ep.0 as u64 });
        }
    }

    /// Whether `ep` is currently crashed.
    pub fn is_down(&self, ep: EndpointId) -> bool {
        self.down.contains(&ep)
    }

    /// Allocate a multicast group address.
    pub fn multicast_group(&mut self) -> MulticastAddr {
        let addr = MulticastAddr(self.next_mcast);
        self.next_mcast += 1;
        self.groups.insert(addr, BTreeSet::new());
        addr
    }

    /// Subscribe `ep` to `group`.
    pub fn join_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        self.groups.entry(group).or_default().insert(ep);
    }

    /// Unsubscribe `ep` from `group`.
    pub fn leave_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&ep);
        }
    }

    /// Current membership of a group.
    pub fn group_members(&self, group: MulticastAddr) -> Vec<EndpointId> {
        self.groups.get(&group).map(|m| m.iter().copied().collect()).unwrap_or_default()
    }

    /// Send a unicast datagram. Counted once in the sender's stats.
    pub fn send_unicast(&mut self, from: EndpointId, to: EndpointId, payload: Bytes) {
        self.record_send(from, payload.len());
        let dg = Datagram { from, to: Destination::Unicast(to), payload };
        self.enqueue_copy(to, dg);
    }

    /// Send to every member of a multicast group (the sender is not
    /// excluded; the server never subscribes to its own groups). Counted
    /// once in the sender's stats regardless of fan-out, matching how the
    /// paper counts rekey messages.
    pub fn send_multicast(&mut self, from: EndpointId, group: MulticastAddr, payload: Bytes) {
        self.record_send(from, payload.len());
        let members: Vec<EndpointId> = self.group_members(group);
        for dest in members {
            let dg = Datagram { from, to: Destination::Multicast(group), payload: payload.clone() };
            self.enqueue_copy(dest, dg);
        }
    }

    /// Deliver a payload to an explicit set of endpoints as one logical
    /// message (the "subgroup multicast via unicast" fallback of §7 —
    /// recorded as one send, `targets.len()` physical copies).
    pub fn send_to_set(&mut self, from: EndpointId, targets: &[EndpointId], payload: Bytes) {
        self.record_send(from, payload.len());
        for &dest in targets {
            let dg = Datagram { from, to: Destination::Unicast(dest), payload: payload.clone() };
            self.enqueue_copy(dest, dg);
        }
    }

    fn record_send(&mut self, from: EndpointId, len: usize) {
        if self.down.contains(&from) {
            return;
        }
        if let Some(e) = self.endpoints.get_mut(&from) {
            e.stats.datagrams_sent += 1;
            e.stats.bytes_sent += len as u64;
        }
    }

    fn enqueue_copy(&mut self, dest: EndpointId, datagram: Datagram) {
        if self.down.contains(&datagram.from) {
            self.metrics.dropped_down.inc();
            self.obs.event(ObsEvent::PacketDropped {
                from: datagram.from.0 as u64,
                to: dest.0 as u64,
                mode: "down",
            });
            return;
        }
        if self.rng.gen_bool(self.config.loss_probability) {
            self.metrics.dropped_loss.inc();
            self.obs.event(ObsEvent::PacketDropped {
                from: datagram.from.0 as u64,
                to: dest.0 as u64,
                mode: "loss",
            });
            return;
        }
        let copies = if self.rng.gen_bool(self.config.duplicate_probability) { 2 } else { 1 };
        if copies == 2 {
            self.metrics.duplicated.inc();
            self.obs.event(ObsEvent::PacketDuplicated {
                from: datagram.from.0 as u64,
                to: dest.0 as u64,
            });
        }
        for _ in 0..copies {
            let jitter = if self.config.latency_max_us > self.config.latency_min_us {
                self.rng.gen_range(self.config.latency_min_us..=self.config.latency_max_us)
            } else {
                self.config.latency_min_us
            };
            self.in_flight.push(InFlight {
                deliver_at: self.clock_us + jitter,
                seq: self.next_seq,
                dest,
                datagram: datagram.clone(),
            });
            self.next_seq += 1;
        }
    }

    /// Advance the clock by `us` microseconds, delivering everything due.
    pub fn advance(&mut self, us: u64) {
        self.clock_us += us;
        if let Some(c) = &self.obs_clock {
            c.set_us(self.clock_us);
        }
        while let Some(top) = self.in_flight.peek() {
            if top.deliver_at > self.clock_us {
                break;
            }
            let item = self.in_flight.pop().expect("peeked");
            if self.down.contains(&item.dest) {
                self.metrics.dropped_down.inc();
                self.obs.event(ObsEvent::PacketDropped {
                    from: item.datagram.from.0 as u64,
                    to: item.dest.0 as u64,
                    mode: "down",
                });
                continue;
            }
            match self.endpoints.get_mut(&item.dest) {
                Some(ep) => {
                    ep.stats.datagrams_received += 1;
                    ep.stats.bytes_received += item.datagram.payload.len() as u64;
                    ep.inbox.push_back(item.datagram);
                    self.metrics.delivered.inc();
                }
                None => {
                    self.metrics.dropped_closed.inc();
                    self.obs.event(ObsEvent::PacketDropped {
                        from: item.datagram.from.0 as u64,
                        to: item.dest.0 as u64,
                        mode: "closed",
                    });
                }
            }
        }
    }

    /// Advance until no datagrams are in flight (delivers everything that
    /// loss didn't eat). Returns the final virtual time.
    pub fn run_until_quiet(&mut self) -> u64 {
        while let Some(top) = self.in_flight.peek() {
            let t = top.deliver_at - self.clock_us;
            self.advance(t.max(1));
        }
        self.clock_us
    }

    /// Pop the next datagram from `ep`'s inbox.
    pub fn recv(&mut self, ep: EndpointId) -> Option<Datagram> {
        self.endpoints.get_mut(&ep)?.inbox.pop_front()
    }

    /// Number of datagrams waiting at `ep`.
    pub fn pending(&self, ep: EndpointId) -> usize {
        self.endpoints.get(&ep).map_or(0, |e| e.inbox.len())
    }

    /// Total datagrams waiting across all inboxes plus in flight.
    pub fn pending_total(&self) -> usize {
        self.endpoints.values().map(|e| e.inbox.len()).sum::<usize>() + self.in_flight.len()
    }

    /// Traffic counters for `ep`.
    pub fn stats(&self, ep: EndpointId) -> TrafficStats {
        self.endpoints.get(&ep).map(|e| e.stats).unwrap_or_default()
    }

    /// Reset all endpoints' traffic counters (used between experiment
    /// phases: the paper excludes the initial n joins from its tables).
    pub fn reset_stats(&mut self) {
        for e in self.endpoints.values_mut() {
            e.stats = TrafficStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_net() -> SimNetwork {
        SimNetwork::new(NetConfig::default())
    }

    #[test]
    fn unicast_delivery() {
        let mut net = quiet_net();
        let a = net.endpoint();
        let b = net.endpoint();
        net.send_unicast(a, b, Bytes::from_static(b"hello"));
        assert_eq!(net.pending(b), 0, "nothing delivered before time passes");
        net.run_until_quiet();
        let dg = net.recv(b).unwrap();
        assert_eq!(dg.from, a);
        assert_eq!(&dg.payload[..], b"hello");
        assert!(net.recv(b).is_none());
        assert!(net.recv(a).is_none(), "sender gets nothing");
    }

    #[test]
    fn multicast_reaches_all_members_only() {
        let mut net = quiet_net();
        let server = net.endpoint();
        let members: Vec<EndpointId> = (0..5).map(|_| net.endpoint()).collect();
        let outsider = net.endpoint();
        let g = net.multicast_group();
        for &m in &members {
            net.join_group(g, m);
        }
        net.send_multicast(server, g, Bytes::from_static(b"rekey"));
        net.run_until_quiet();
        for &m in &members {
            assert_eq!(net.pending(m), 1);
        }
        assert_eq!(net.pending(outsider), 0);
        // One logical send regardless of fan-out.
        assert_eq!(net.stats(server).datagrams_sent, 1);
        assert_eq!(net.stats(server).bytes_sent, 5);
    }

    #[test]
    fn leave_group_stops_delivery() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let m = net.endpoint();
        let g = net.multicast_group();
        net.join_group(g, m);
        net.leave_group(g, m);
        net.send_multicast(s, g, Bytes::from_static(b"x"));
        net.run_until_quiet();
        assert_eq!(net.pending(m), 0);
    }

    #[test]
    fn send_to_set_counts_once() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let a = net.endpoint();
        let b = net.endpoint();
        net.send_to_set(s, &[a, b], Bytes::from_static(b"subgroup"));
        net.run_until_quiet();
        assert_eq!(net.pending(a), 1);
        assert_eq!(net.pending(b), 1);
        assert_eq!(net.stats(s).datagrams_sent, 1);
    }

    #[test]
    fn receiver_stats_track_bytes() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let r = net.endpoint();
        net.send_unicast(s, r, Bytes::from_static(b"12345678"));
        net.send_unicast(s, r, Bytes::from_static(b"abc"));
        net.run_until_quiet();
        let st = net.stats(r);
        assert_eq!(st.datagrams_received, 2);
        assert_eq!(st.bytes_received, 11);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = SimNetwork::new(NetConfig {
                loss_probability: 0.3,
                duplicate_probability: 0.1,
                seed,
                ..NetConfig::default()
            });
            let s = net.endpoint();
            let r = net.endpoint();
            for i in 0..100u8 {
                net.send_unicast(s, r, Bytes::copy_from_slice(&[i]));
            }
            net.run_until_quiet();
            let mut got = Vec::new();
            while let Some(d) = net.recv(r) {
                got.push(d.payload[0]);
            }
            got
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let mut net = SimNetwork::new(NetConfig::lossy(0.5, 42));
        let s = net.endpoint();
        let r = net.endpoint();
        for _ in 0..1000 {
            net.send_unicast(s, r, Bytes::from_static(b"x"));
        }
        net.run_until_quiet();
        let got = net.stats(r).datagrams_received;
        assert!((350..=650).contains(&got), "got {got} of 1000 at 50% loss");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut net =
            SimNetwork::new(NetConfig { duplicate_probability: 1.0, ..NetConfig::default() });
        let s = net.endpoint();
        let r = net.endpoint();
        net.send_unicast(s, r, Bytes::from_static(b"x"));
        net.run_until_quiet();
        assert_eq!(net.pending(r), 2);
    }

    #[test]
    fn latency_jitter_reorders() {
        let mut net = SimNetwork::new(NetConfig {
            latency_min_us: 1,
            latency_max_us: 10_000,
            seed: 3,
            ..NetConfig::default()
        });
        let s = net.endpoint();
        let r = net.endpoint();
        for i in 0..50u8 {
            net.send_unicast(s, r, Bytes::copy_from_slice(&[i]));
        }
        net.run_until_quiet();
        let mut got = Vec::new();
        while let Some(d) = net.recv(r) {
            got.push(d.payload[0]);
        }
        assert_eq!(got.len(), 50);
        let mut sorted = got.clone();
        sorted.sort();
        assert_ne!(got, sorted, "jitter should reorder at least one pair");
    }

    #[test]
    fn closed_endpoint_discards_traffic() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let r = net.endpoint();
        net.send_unicast(s, r, Bytes::from_static(b"x"));
        net.close(r);
        net.run_until_quiet();
        assert_eq!(net.pending(r), 0);
        assert!(net.recv(r).is_none());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut net = quiet_net();
        assert_eq!(net.now_us(), 0);
        net.advance(100);
        assert_eq!(net.now_us(), 100);
        net.advance(0);
        assert_eq!(net.now_us(), 100);
    }

    #[test]
    fn crashed_endpoint_loses_inbox_and_inflight_traffic() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let r = net.endpoint();
        // One delivered, one in flight at crash time: both must be lost.
        net.send_unicast(s, r, Bytes::from_static(b"delivered"));
        net.run_until_quiet();
        net.send_unicast(s, r, Bytes::from_static(b"in-flight"));
        net.crash(r);
        assert!(net.is_down(r));
        net.run_until_quiet();
        assert_eq!(net.pending(r), 0);
        // Traffic sent while down is dropped too.
        net.send_unicast(s, r, Bytes::from_static(b"while-down"));
        net.run_until_quiet();
        assert_eq!(net.pending(r), 0);
        // After restart, delivery resumes.
        net.restart(r);
        assert!(!net.is_down(r));
        net.send_unicast(s, r, Bytes::from_static(b"after"));
        net.run_until_quiet();
        let dg = net.recv(r).unwrap();
        assert_eq!(&dg.payload[..], b"after");
    }

    #[test]
    fn crashed_endpoint_cannot_send() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let r = net.endpoint();
        net.crash(s);
        net.send_unicast(s, r, Bytes::from_static(b"ghost"));
        net.run_until_quiet();
        assert_eq!(net.pending(r), 0);
        assert_eq!(net.stats(s).datagrams_sent, 0, "a dead host sends nothing");
    }

    #[test]
    fn crash_keeps_group_membership() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let m = net.endpoint();
        let g = net.multicast_group();
        net.join_group(g, m);
        net.crash(m);
        // Multicast while down: dropped for this member.
        net.send_multicast(s, g, Bytes::from_static(b"missed"));
        net.run_until_quiet();
        assert_eq!(net.pending(m), 0);
        // The subscription itself survived the crash.
        net.restart(m);
        assert_eq!(net.group_members(g), vec![m]);
        net.send_multicast(s, g, Bytes::from_static(b"caught"));
        net.run_until_quiet();
        assert_eq!(net.pending(m), 1);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut net = quiet_net();
        let s = net.endpoint();
        let r = net.endpoint();
        net.send_unicast(s, r, Bytes::from_static(b"x"));
        net.run_until_quiet();
        net.reset_stats();
        assert_eq!(net.stats(s), TrafficStats::default());
        assert_eq!(net.stats(r), TrafficStats::default());
    }
}
