//! Reliable delivery over the lossy datagram service.
//!
//! Section 3 of the paper: "A reliable message delivery system, for both
//! unicast and multicast, is assumed." This module supplies that assumption
//! as an actual protocol layer — positive acknowledgements, timeout-driven
//! retransmission, and duplicate suppression — so the experiments can run
//! over a perfect network *and* the failure-injection tests can prove the
//! key-management protocols survive a lossy one.
//!
//! The frame format is minimal: one tag byte (DATA/ACK), a 64-bit sender
//! sequence number, then the payload. Reliability is per (sender,
//! receiver) pair; reliable multicast is modelled the way the paper's
//! prototype would have had to implement it — per-member tracking of acks
//! with unicast retransmission to the members that missed the datagram.

use crate::sim::{EndpointId, SimNetwork};
use crate::transport::Transport;
use bytes::{BufMut, Bytes};
use kg_obs::{Obs, ObsEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;

/// Why an inbound frame was rejected. The datagram layer can hand a
/// mailbox anything — stray traffic, corruption the CRC-less UDP model
/// lets through — so rejection is an expected event, recorded rather than
/// silently discarded (and never a panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than the 9-byte tag + sequence header.
    Truncated {
        /// Actual frame length.
        len: usize,
    },
    /// The tag byte is neither DATA nor ACK.
    BadTag(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { len } => {
                write!(f, "frame of {len} bytes is shorter than the 9-byte header")
            }
            FrameError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Retransmission timeout in microseconds of virtual time.
pub const RTO_US: u64 = 5_000;

/// Give-up threshold: after this many retransmissions the message is
/// reported as failed (dead peer).
pub const MAX_RETRIES: u32 = 50;

/// A message awaiting acknowledgement.
#[derive(Debug)]
struct Pending {
    seq: u64,
    payload: Bytes,
    /// Receivers that have not acked yet.
    outstanding: BTreeSet<EndpointId>,
    last_sent_us: u64,
    retries: u32,
}

/// Reliable send/receive state for one endpoint.
#[derive(Debug)]
pub struct ReliableMailbox {
    ep: EndpointId,
    next_seq: u64,
    pending: Vec<Pending>,
    /// Per-sender set of already-delivered sequence numbers (duplicate
    /// suppression). Compacted via a moving low-water mark.
    seen: BTreeMap<EndpointId, (u64, BTreeSet<u64>)>,
    delivered: VecDeque<(EndpointId, Bytes)>,
    /// Messages that exhausted [`MAX_RETRIES`].
    failed: Vec<u64>,
    /// Malformed inbound frames, with their claimed sender.
    rejected: Vec<(EndpointId, FrameError)>,
    obs: Obs,
    retransmits: kg_obs::Counter,
}

impl ReliableMailbox {
    /// Create a mailbox for `ep`.
    pub fn new(ep: EndpointId) -> Self {
        ReliableMailbox {
            ep,
            next_seq: 0,
            pending: Vec::new(),
            seen: BTreeMap::new(),
            delivered: VecDeque::new(),
            failed: Vec::new(),
            rejected: Vec::new(),
            obs: Obs::disabled(),
            retransmits: kg_obs::Counter::default(),
        }
    }

    /// Attach an observability handle: retransmissions and rejected
    /// frames are counted and put on the event timeline.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.retransmits = obs.counter("kg_net_retransmits_total");
        self.obs = obs;
    }

    /// The endpoint this mailbox serves.
    pub fn endpoint(&self) -> EndpointId {
        self.ep
    }

    /// Reliably send `payload` to every endpoint in `targets`. Returns the
    /// message's sequence number.
    pub fn send<T: Transport>(
        &mut self,
        net: &mut T,
        targets: &[EndpointId],
        payload: Bytes,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = encode_data(seq, &payload);
        net.send_to_set(self.ep, targets, frame);
        self.pending.push(Pending {
            seq,
            payload,
            outstanding: targets.iter().copied().collect(),
            last_sent_us: net.now_us(),
            retries: 0,
        });
        seq
    }

    /// Process inbound frames and timeouts. Call after
    /// [`SimNetwork::advance`] (or [`Transport::poll_io`] on a real
    /// transport).
    pub fn poll<T: Transport>(&mut self, net: &mut T) {
        // Inbound.
        while let Some(dg) = net.recv(self.ep) {
            let (tag, seq, body) = match decode(&dg.payload) {
                Ok(frame) => frame,
                Err(e) => {
                    self.obs.event(ObsEvent::BadDatagram {
                        from: dg.from.0 as u64,
                        error: e.to_string(),
                    });
                    self.rejected.push((dg.from, e));
                    continue;
                }
            };
            if tag == TAG_DATA {
                let entry = self.seen.entry(dg.from).or_insert_with(|| (0, BTreeSet::new()));
                let fresh = seq >= entry.0 && entry.1.insert(seq);
                // Compact: advance the low-water mark over a dense prefix.
                while entry.1.remove(&entry.0) {
                    entry.0 += 1;
                }
                // Always ack, even duplicates (the ack may have been lost).
                let ack = encode_ack(seq);
                net.send_unicast(self.ep, dg.from, ack);
                if fresh {
                    self.delivered.push_back((dg.from, body));
                }
            } else {
                // TAG_ACK — `decode` rejected every other tag.
                for p in &mut self.pending {
                    if p.seq == seq {
                        p.outstanding.remove(&dg.from);
                    }
                }
                self.pending.retain(|p| !p.outstanding.is_empty());
            }
        }
        // Timeouts.
        let now = net.now_us();
        let mut gave_up = Vec::new();
        for p in &mut self.pending {
            if now.saturating_sub(p.last_sent_us) >= RTO_US {
                if p.retries >= MAX_RETRIES {
                    gave_up.push(p.seq);
                    continue;
                }
                p.retries += 1;
                self.retransmits.inc();
                self.obs.event(ObsEvent::Retransmit {
                    from: self.ep.0 as u64,
                    attempt: p.retries as u64,
                });
                p.last_sent_us = now;
                let frame = encode_data(p.seq, &p.payload);
                let targets: Vec<EndpointId> = p.outstanding.iter().copied().collect();
                net.send_to_set(self.ep, &targets, frame);
            }
        }
        if !gave_up.is_empty() {
            self.pending.retain(|p| !gave_up.contains(&p.seq));
            self.failed.extend(gave_up);
        }
    }

    /// Pop the next reliably delivered message.
    pub fn recv(&mut self) -> Option<(EndpointId, Bytes)> {
        self.delivered.pop_front()
    }

    /// Sends still awaiting acknowledgement.
    pub fn unacked(&self) -> usize {
        self.pending.len()
    }

    /// Sequence numbers of messages that exhausted retries.
    pub fn failed(&self) -> &[u64] {
        &self.failed
    }

    /// Malformed frames received so far, with their claimed senders.
    pub fn rejected(&self) -> &[(EndpointId, FrameError)] {
        &self.rejected
    }
}

fn encode_data(seq: u64, payload: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(9 + payload.len());
    out.put_u8(TAG_DATA);
    out.put_u64(seq);
    out.put_slice(payload);
    Bytes::from(out)
}

fn encode_ack(seq: u64) -> Bytes {
    let mut out = Vec::with_capacity(9);
    out.put_u8(TAG_ACK);
    out.put_u64(seq);
    Bytes::from(out)
}

fn decode(frame: &[u8]) -> Result<(u8, u64, Bytes), FrameError> {
    let (Some(&tag), Some(seq_bytes)) = (frame.first(), frame.get(1..9)) else {
        return Err(FrameError::Truncated { len: frame.len() });
    };
    if tag != TAG_DATA && tag != TAG_ACK {
        return Err(FrameError::BadTag(tag));
    }
    let mut seq = [0u8; 8];
    seq.copy_from_slice(seq_bytes);
    Ok((tag, u64::from_be_bytes(seq), Bytes::copy_from_slice(&frame[9..])))
}

/// Drive a set of mailboxes until all sends are acked or abandoned.
/// Convenience for tests and the fleet simulator.
pub fn settle(net: &mut SimNetwork, mailboxes: &mut [&mut ReliableMailbox], max_rounds: usize) {
    for _ in 0..max_rounds {
        net.advance(RTO_US);
        let mut all_clear = true;
        for mb in mailboxes.iter_mut() {
            mb.poll(net);
            all_clear &= mb.unacked() == 0;
        }
        if all_clear && net.pending_total() == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetConfig;

    fn pair(cfg: NetConfig) -> (SimNetwork, ReliableMailbox, ReliableMailbox) {
        let mut net = SimNetwork::new(cfg);
        let a = net.endpoint();
        let b = net.endpoint();
        (net, ReliableMailbox::new(a), ReliableMailbox::new(b))
    }

    fn pump(net: &mut SimNetwork, mbs: &mut [&mut ReliableMailbox], rounds: usize) {
        for _ in 0..rounds {
            net.advance(RTO_US);
            for mb in mbs.iter_mut() {
                mb.poll(net);
            }
        }
    }

    #[test]
    fn basic_delivery_and_ack() {
        let (mut net, mut a, mut b) = pair(NetConfig::default());
        a.send(&mut net, &[b.endpoint()], Bytes::from_static(b"hello"));
        pump(&mut net, &mut [&mut a, &mut b], 3);
        let (from, msg) = b.recv().unwrap();
        assert_eq!(from, a.endpoint());
        assert_eq!(&msg[..], b"hello");
        assert_eq!(a.unacked(), 0);
    }

    #[test]
    fn survives_heavy_loss() {
        let (mut net, mut a, mut b) = pair(NetConfig::lossy(0.6, 1));
        for i in 0..20u8 {
            a.send(&mut net, &[b.endpoint()], Bytes::copy_from_slice(&[i]));
        }
        pump(&mut net, &mut [&mut a, &mut b], 60);
        let mut got = Vec::new();
        while let Some((_, m)) = b.recv() {
            got.push(m[0]);
        }
        got.sort();
        assert_eq!(got, (0..20u8).collect::<Vec<_>>(), "all 20 delivered exactly once");
        assert_eq!(a.unacked(), 0);
        assert!(a.failed().is_empty());
    }

    #[test]
    fn duplicates_suppressed() {
        let (mut net, mut a, mut b) =
            pair(NetConfig { duplicate_probability: 1.0, ..NetConfig::default() });
        a.send(&mut net, &[b.endpoint()], Bytes::from_static(b"once"));
        pump(&mut net, &mut [&mut a, &mut b], 5);
        assert!(b.recv().is_some());
        assert!(b.recv().is_none(), "duplicate copies must be suppressed");
    }

    #[test]
    fn multi_target_tracks_each_receiver() {
        let mut net = SimNetwork::new(NetConfig::lossy(0.4, 9));
        let s = net.endpoint();
        let r1 = net.endpoint();
        let r2 = net.endpoint();
        let r3 = net.endpoint();
        let mut ms = ReliableMailbox::new(s);
        let mut m1 = ReliableMailbox::new(r1);
        let mut m2 = ReliableMailbox::new(r2);
        let mut m3 = ReliableMailbox::new(r3);
        ms.send(&mut net, &[r1, r2, r3], Bytes::from_static(b"rekey"));
        pump(&mut net, &mut [&mut ms, &mut m1, &mut m2, &mut m3], 60);
        for m in [&mut m1, &mut m2, &mut m3] {
            let (_, msg) = m.recv().expect("delivered");
            assert_eq!(&msg[..], b"rekey");
        }
        assert_eq!(ms.unacked(), 0);
    }

    #[test]
    fn gives_up_on_dead_peer() {
        let mut net = SimNetwork::new(NetConfig::default());
        let s = net.endpoint();
        let dead = net.endpoint();
        net.close(dead);
        let mut ms = ReliableMailbox::new(s);
        let seq = ms.send(&mut net, &[dead], Bytes::from_static(b"void"));
        pump(&mut net, &mut [&mut ms], (MAX_RETRIES + 3) as usize);
        assert_eq!(ms.unacked(), 0);
        assert_eq!(ms.failed(), &[seq]);
    }

    #[test]
    fn interleaved_bidirectional_traffic() {
        let (mut net, mut a, mut b) = pair(NetConfig::lossy(0.3, 17));
        for i in 0..10u8 {
            a.send(&mut net, &[b.endpoint()], Bytes::copy_from_slice(&[i]));
            b.send(&mut net, &[a.endpoint()], Bytes::copy_from_slice(&[100 + i]));
        }
        pump(&mut net, &mut [&mut a, &mut b], 60);
        let mut at_b = Vec::new();
        while let Some((_, m)) = b.recv() {
            at_b.push(m[0]);
        }
        let mut at_a = Vec::new();
        while let Some((_, m)) = a.recv() {
            at_a.push(m[0]);
        }
        at_b.sort();
        at_a.sort();
        assert_eq!(at_b, (0..10u8).collect::<Vec<_>>());
        assert_eq!(at_a, (100..110u8).collect::<Vec<_>>());
    }

    #[test]
    fn malformed_frames_are_rejected_with_typed_errors() {
        let mut net = SimNetwork::new(NetConfig::default());
        let s = net.endpoint();
        let r = net.endpoint();
        let mut mr = ReliableMailbox::new(r);
        // Too short for the tag + sequence header.
        net.send_unicast(s, r, Bytes::from_static(b"tiny"));
        // Long enough, but an unknown tag byte.
        net.send_unicast(s, r, Bytes::from_static(&[7, 0, 0, 0, 0, 0, 0, 0, 0, 1]));
        net.run_until_quiet();
        mr.poll(&mut net);
        assert!(mr.recv().is_none());
        assert_eq!(
            mr.rejected(),
            &[(s, FrameError::Truncated { len: 4 }), (s, FrameError::BadTag(7))]
        );
    }
}
