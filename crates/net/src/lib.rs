//! # kg-net — deterministic in-process network substrate
//!
//! The paper's experiments ran a group key server on one SGI Origin 200 and
//! a client-simulator (up to 8192 clients) on another, exchanging UDP
//! datagrams over 100 Mbps Ethernet, with subgroup multicast assumed
//! available. None of the reported quantities (server processing time,
//! rekey message counts/sizes) depend on physical wire behaviour, so this
//! crate substitutes a **deterministic simulated network**:
//!
//! * [`sim::SimNetwork`] — endpoints, unicast and multicast datagrams, a
//!   virtual clock, and configurable latency jitter / loss / duplication
//!   driven by a seeded RNG (same seed → identical run).
//! * [`reliable::ReliableMailbox`] — the paper *assumes* "a reliable
//!   message delivery system, for both unicast and multicast"; this layer
//!   provides it over the lossy datagram service via sequence numbers,
//!   acks, retransmission and duplicate suppression, so failure-injection
//!   tests can turn losses on while the protocols above stay oblivious.
//! * Per-endpoint traffic counters — the raw material for the paper's
//!   Tables 5 and 6.
//! * [`transport::Transport`] — the datagram service extracted as a trait,
//!   so the layers above (mailbox, `NetServer`, the cluster router) run
//!   unchanged over the simulator or a real network.
//! * [`udp::UdpTransport`] — the real thing: one non-blocking
//!   `std::net::UdpSocket` per process with a versioned frame header,
//!   used by the `kg-cluster` node/router/admin binaries.
//!
//! The design is event-driven and single-threaded (in the spirit of
//! smoltcp): time advances only through [`sim::SimNetwork::advance`], and
//! everything is reproducible.
//!
//! ```
//! use kg_net::{SimNetwork, NetConfig};
//! use bytes::Bytes;
//!
//! let mut net = SimNetwork::new(NetConfig::default());
//! let server = net.endpoint();
//! let member = net.endpoint();
//! let group = net.multicast_group();
//! net.join_group(group, member);
//! net.send_multicast(server, group, Bytes::from_static(b"rekey"));
//! net.run_until_quiet();
//! assert_eq!(&net.recv(member).unwrap().payload[..], b"rekey");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reliable;
pub mod sim;
pub mod transport;
pub mod udp;

pub use reliable::{FrameError, ReliableMailbox};
pub use sim::{Datagram, Destination, EndpointId, MulticastAddr, NetConfig, SimNetwork};
pub use transport::Transport;
pub use udp::{UdpFrameError, UdpTransport, MAX_UDP_PAYLOAD, UDP_WIRE_VERSION};
