//! The pluggable datagram transport abstraction.
//!
//! Everything above the datagram layer — [`ReliableMailbox`], `NetServer`,
//! the client fleet, the cluster router — was written against
//! [`SimNetwork`]'s inherent API. This trait extracts that API so the same
//! protocol code runs over the deterministic simulator in tests and over a
//! real [`UdpTransport`] in the multi-process cluster deployment.
//!
//! The contract mirrors what the paper's prototype assumed of its testbed:
//! unreliable unicast/multicast datagram delivery with explicit endpoint
//! and group addressing. Reliability stays a layer above (the mailbox);
//! simulation-only affordances (virtual-clock `advance`, fault injection,
//! per-endpoint traffic stats) stay inherent on [`SimNetwork`] and are
//! deliberately *not* part of the trait.
//!
//! [`ReliableMailbox`]: crate::reliable::ReliableMailbox
//! [`SimNetwork`]: crate::sim::SimNetwork
//! [`UdpTransport`]: crate::udp::UdpTransport

use crate::sim::{Datagram, EndpointId, MulticastAddr};
use bytes::Bytes;

/// An unreliable datagram service with unicast and multicast addressing.
///
/// Implementations must deliver (or drop) datagrams without panicking and
/// must treat [`send_multicast`](Transport::send_multicast) as one logical
/// send regardless of fan-out, matching how the paper counts rekey
/// messages.
pub trait Transport {
    /// Allocate a new endpoint ("socket") on this transport.
    fn endpoint(&mut self) -> EndpointId;

    /// Remove an endpoint; undelivered traffic to it is dropped.
    fn close(&mut self, ep: EndpointId);

    /// Allocate a multicast group address.
    fn multicast_group(&mut self) -> MulticastAddr;

    /// Subscribe `ep` to `group`.
    fn join_group(&mut self, group: MulticastAddr, ep: EndpointId);

    /// Unsubscribe `ep` from `group`.
    fn leave_group(&mut self, group: MulticastAddr, ep: EndpointId);

    /// Send a unicast datagram.
    fn send_unicast(&mut self, from: EndpointId, to: EndpointId, payload: Bytes);

    /// Send to every member of a multicast group.
    fn send_multicast(&mut self, from: EndpointId, group: MulticastAddr, payload: Bytes);

    /// Deliver a payload to an explicit set of endpoints as one logical
    /// message (the "subgroup multicast via unicast" fallback of §7).
    fn send_to_set(&mut self, from: EndpointId, targets: &[EndpointId], payload: Bytes);

    /// Pop the next datagram from `ep`'s inbox.
    fn recv(&mut self, ep: EndpointId) -> Option<Datagram>;

    /// Current transport time in microseconds (virtual for the simulator,
    /// monotonic wall-clock for real transports).
    fn now_us(&self) -> u64;

    /// Pump underlying I/O: drain OS sockets into per-endpoint inboxes.
    /// A no-op for the simulator, where [`SimNetwork::advance`] plays this
    /// role.
    ///
    /// [`SimNetwork::advance`]: crate::sim::SimNetwork::advance
    fn poll_io(&mut self) {}
}

impl Transport for crate::sim::SimNetwork {
    fn endpoint(&mut self) -> EndpointId {
        crate::sim::SimNetwork::endpoint(self)
    }

    fn close(&mut self, ep: EndpointId) {
        crate::sim::SimNetwork::close(self, ep)
    }

    fn multicast_group(&mut self) -> MulticastAddr {
        crate::sim::SimNetwork::multicast_group(self)
    }

    fn join_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        crate::sim::SimNetwork::join_group(self, group, ep)
    }

    fn leave_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        crate::sim::SimNetwork::leave_group(self, group, ep)
    }

    fn send_unicast(&mut self, from: EndpointId, to: EndpointId, payload: Bytes) {
        crate::sim::SimNetwork::send_unicast(self, from, to, payload)
    }

    fn send_multicast(&mut self, from: EndpointId, group: MulticastAddr, payload: Bytes) {
        crate::sim::SimNetwork::send_multicast(self, from, group, payload)
    }

    fn send_to_set(&mut self, from: EndpointId, targets: &[EndpointId], payload: Bytes) {
        crate::sim::SimNetwork::send_to_set(self, from, targets, payload)
    }

    fn recv(&mut self, ep: EndpointId) -> Option<Datagram> {
        crate::sim::SimNetwork::recv(self, ep)
    }

    fn now_us(&self) -> u64 {
        crate::sim::SimNetwork::now_us(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{NetConfig, SimNetwork};

    /// Protocol code written against the trait must behave identically to
    /// code written against SimNetwork's inherent API.
    fn echo_once<T: Transport>(t: &mut T) -> (EndpointId, EndpointId) {
        let a = t.endpoint();
        let b = t.endpoint();
        t.send_unicast(a, b, Bytes::from_static(b"via-trait"));
        (a, b)
    }

    #[test]
    fn sim_network_implements_transport() {
        let mut net = SimNetwork::new(NetConfig::default());
        let (a, b) = echo_once(&mut net);
        net.run_until_quiet();
        let dg = Transport::recv(&mut net, b).unwrap();
        assert_eq!(dg.from, a);
        assert_eq!(&dg.payload[..], b"via-trait");
    }

    fn multicast_via<T: Transport>(t: &mut T) -> (EndpointId, MulticastAddr) {
        let s = t.endpoint();
        let m = t.endpoint();
        let g = t.multicast_group();
        t.join_group(g, m);
        t.send_multicast(s, g, Bytes::from_static(b"rekey"));
        (m, g)
    }

    #[test]
    fn multicast_through_the_trait() {
        let mut net = SimNetwork::new(NetConfig::default());
        let (m, g) = multicast_via(&mut net);
        net.run_until_quiet();
        assert_eq!(net.pending(m), 1);
        let dg = net.recv(m).unwrap();
        assert_eq!(dg.to, crate::sim::Destination::Multicast(g));
    }
}
