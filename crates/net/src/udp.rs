//! A real UDP transport for multi-process deployments.
//!
//! [`UdpTransport`] implements [`Transport`] over one non-blocking
//! [`std::net::UdpSocket`] per process. Logical endpoints are multiplexed
//! onto the socket by a small frame header, so a process can host several
//! endpoints (a shard node's request port, a router's relay port) exactly
//! as it would on the simulator:
//!
//! ```text
//! | magic 0xD6 | version | from: u32 | to: u32 | payload ... |
//! ```
//!
//! The header carries the protocol **version** so heterogeneous cluster
//! nodes fail closed (a frame with an unknown version is rejected with a
//! typed error, never a panic) and the logical endpoint ids that stand in
//! for the simulator's [`EndpointId`] addressing. Peer processes are found
//! through a static directory ([`register_peer`]) seeded from the command
//! line, plus passive learning: the source address of a valid inbound
//! frame is recorded for its `from` endpoint, which is how servers route
//! replies to clients on ephemeral ports.
//!
//! IP multicast is *emulated*: group membership is tracked locally and
//! [`send_multicast`] fans out unicast frames, the same §7 fallback the
//! simulator models with `send_to_set`. True IGMP multicast would slot in
//! behind the same trait method.
//!
//! [`register_peer`]: UdpTransport::register_peer
//! [`send_multicast`]: Transport::send_multicast

use crate::sim::{Datagram, Destination, EndpointId, MulticastAddr, TrafficStats};
use crate::transport::Transport;
use bytes::{BufMut, Bytes};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Instant;

/// First byte of every frame; chosen to collide with no kg-wire leading
/// byte (control tags are ≤ 5, the batch magic is 0xB5).
pub const UDP_MAGIC: u8 = 0xD6;

/// Frame format version. Bumped on any header or addressing change;
/// receivers reject other versions rather than guessing.
pub const UDP_WIRE_VERSION: u8 = 1;

/// Frame header length: magic + version + from + to.
const HEADER_LEN: usize = 1 + 1 + 4 + 4;

/// Largest payload a single frame will carry (conservative UDP datagram
/// budget minus our header).
pub const MAX_UDP_PAYLOAD: usize = 65_000;

/// Why an inbound (or outbound) frame was rejected. Mirrors the mailbox's
/// [`FrameError`](crate::reliable::FrameError) philosophy: anything can
/// arrive on a socket, so rejection is recorded, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpFrameError {
    /// Frame shorter than the fixed header.
    Truncated {
        /// Actual frame length.
        len: usize,
    },
    /// Leading byte was not [`UDP_MAGIC`].
    BadMagic(u8),
    /// Header version is not [`UDP_WIRE_VERSION`].
    BadVersion(u8),
    /// Outbound payload exceeded [`MAX_UDP_PAYLOAD`].
    Oversized {
        /// Attempted payload length.
        len: usize,
    },
}

impl std::fmt::Display for UdpFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpFrameError::Truncated { len } => {
                write!(f, "frame of {len} bytes is shorter than the {HEADER_LEN}-byte header")
            }
            UdpFrameError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            UdpFrameError::BadVersion(v) => {
                write!(f, "unsupported frame version {v} (speak {UDP_WIRE_VERSION})")
            }
            UdpFrameError::Oversized { len } => {
                write!(f, "payload of {len} bytes exceeds the {MAX_UDP_PAYLOAD}-byte frame budget")
            }
        }
    }
}

impl std::error::Error for UdpFrameError {}

fn encode_frame(from: EndpointId, to: EndpointId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_u8(UDP_MAGIC);
    out.put_u8(UDP_WIRE_VERSION);
    out.put_u32(from.0);
    out.put_u32(to.0);
    out.put_slice(payload);
    out
}

fn decode_frame(buf: &[u8]) -> Result<(EndpointId, EndpointId, Bytes), UdpFrameError> {
    if buf.len() < HEADER_LEN {
        return Err(UdpFrameError::Truncated { len: buf.len() });
    }
    if buf[0] != UDP_MAGIC {
        return Err(UdpFrameError::BadMagic(buf[0]));
    }
    if buf[1] != UDP_WIRE_VERSION {
        return Err(UdpFrameError::BadVersion(buf[1]));
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&buf[2..6]);
    let from = EndpointId(u32::from_be_bytes(word));
    word.copy_from_slice(&buf[6..10]);
    let to = EndpointId(u32::from_be_bytes(word));
    Ok((from, to, Bytes::copy_from_slice(&buf[HEADER_LEN..])))
}

#[derive(Debug, Default)]
struct LocalEndpoint {
    inbox: VecDeque<Datagram>,
    stats: TrafficStats,
}

/// [`Transport`] over a real UDP socket. See the module docs for the
/// frame format and addressing model.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    start: Instant,
    /// Locally hosted endpoints, allocated from `next_local`.
    locals: BTreeMap<EndpointId, LocalEndpoint>,
    next_local: u32,
    /// Remote endpoint directory: static registrations plus learned
    /// source addresses.
    peers: BTreeMap<EndpointId, SocketAddr>,
    /// Emulated multicast membership (local bookkeeping only).
    groups: BTreeMap<MulticastAddr, BTreeSet<EndpointId>>,
    next_mcast: u32,
    /// Frames that could not be decoded, with the socket address they
    /// came from, and oversized/unroutable sends.
    rejected: Vec<(SocketAddr, UdpFrameError)>,
    /// Sends to endpoints with no known address.
    unroutable: u64,
    recv_buf: Vec<u8>,
}

impl UdpTransport {
    /// Bind a socket on `addr` (e.g. `"127.0.0.1:0"`) and host endpoints
    /// with ids starting at `endpoint_base`. Each process in a cluster
    /// must use a disjoint id range — the convention in the binaries is
    /// router = 1, shard `n` = `1000 + n`, clients/admin from 9000.
    pub fn bind(addr: impl ToSocketAddrs, endpoint_base: u32) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            socket,
            start: Instant::now(),
            locals: BTreeMap::new(),
            next_local: endpoint_base,
            peers: BTreeMap::new(),
            groups: BTreeMap::new(),
            next_mcast: 0,
            rejected: Vec::new(),
            unroutable: 0,
            recv_buf: vec![0u8; MAX_UDP_PAYLOAD + HEADER_LEN + 64],
        })
    }

    /// The socket's bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Add or update a static directory entry for a remote endpoint.
    pub fn register_peer(&mut self, ep: EndpointId, addr: SocketAddr) {
        self.peers.insert(ep, addr);
    }

    /// The known address of a remote endpoint, if any.
    pub fn peer_addr(&self, ep: EndpointId) -> Option<SocketAddr> {
        self.peers.get(&ep).copied()
    }

    /// Frames rejected so far (bad magic/version/truncation/oversize).
    pub fn rejected(&self) -> &[(SocketAddr, UdpFrameError)] {
        &self.rejected
    }

    /// Sends dropped because the destination endpoint had no known
    /// address and was not hosted locally.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Traffic counters for a local endpoint.
    pub fn stats(&self, ep: EndpointId) -> TrafficStats {
        self.locals.get(&ep).map(|e| e.stats).unwrap_or_default()
    }

    /// Number of datagrams waiting at a local endpoint.
    pub fn pending(&self, ep: EndpointId) -> usize {
        self.locals.get(&ep).map_or(0, |e| e.inbox.len())
    }

    fn deliver_or_send(&mut self, from: EndpointId, to: EndpointId, payload: &Bytes) {
        if payload.len() > MAX_UDP_PAYLOAD {
            if let Ok(addr) = self.socket.local_addr() {
                self.rejected.push((addr, UdpFrameError::Oversized { len: payload.len() }));
            }
            return;
        }
        if let Some(local) = self.locals.get_mut(&to) {
            // Same-process endpoint: loop back without touching the wire.
            local.stats.datagrams_received += 1;
            local.stats.bytes_received += payload.len() as u64;
            local.inbox.push_back(Datagram {
                from,
                to: Destination::Unicast(to),
                payload: payload.clone(),
            });
            return;
        }
        match self.peers.get(&to) {
            Some(&addr) => {
                let frame = encode_frame(from, to, payload);
                // A full socket buffer or transient ICMP error is packet
                // loss — exactly what the reliability layer exists for.
                let _ = self.socket.send_to(&frame, addr);
            }
            None => self.unroutable += 1,
        }
    }

    fn record_send(&mut self, from: EndpointId, len: usize) {
        if let Some(e) = self.locals.get_mut(&from) {
            e.stats.datagrams_sent += 1;
            e.stats.bytes_sent += len as u64;
        }
    }
}

impl Transport for UdpTransport {
    fn endpoint(&mut self) -> EndpointId {
        let id = EndpointId(self.next_local);
        self.next_local += 1;
        self.locals.insert(id, LocalEndpoint::default());
        id
    }

    fn close(&mut self, ep: EndpointId) {
        self.locals.remove(&ep);
        for members in self.groups.values_mut() {
            members.remove(&ep);
        }
    }

    fn multicast_group(&mut self) -> MulticastAddr {
        let addr = MulticastAddr(self.next_mcast);
        self.next_mcast += 1;
        self.groups.insert(addr, BTreeSet::new());
        addr
    }

    fn join_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        self.groups.entry(group).or_default().insert(ep);
    }

    fn leave_group(&mut self, group: MulticastAddr, ep: EndpointId) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&ep);
        }
    }

    fn send_unicast(&mut self, from: EndpointId, to: EndpointId, payload: Bytes) {
        self.record_send(from, payload.len());
        self.deliver_or_send(from, to, &payload);
    }

    fn send_multicast(&mut self, from: EndpointId, group: MulticastAddr, payload: Bytes) {
        self.record_send(from, payload.len());
        let members: Vec<EndpointId> =
            self.groups.get(&group).map(|m| m.iter().copied().collect()).unwrap_or_default();
        for dest in members {
            self.deliver_or_send(from, dest, &payload);
        }
    }

    fn send_to_set(&mut self, from: EndpointId, targets: &[EndpointId], payload: Bytes) {
        self.record_send(from, payload.len());
        for &dest in targets {
            self.deliver_or_send(from, dest, &payload);
        }
    }

    fn recv(&mut self, ep: EndpointId) -> Option<Datagram> {
        self.locals.get_mut(&ep)?.inbox.pop_front()
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn poll_io(&mut self) {
        loop {
            let (len, src) = match self.socket.recv_from(&mut self.recv_buf) {
                Ok(x) => x,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient errors (e.g. ECONNREFUSED surfaced from a
                // previous send on some platforms) are treated as loss.
                Err(_) => continue,
            };
            let buf = self.recv_buf[..len].to_vec();
            match decode_frame(&buf) {
                Ok((from, to, payload)) => {
                    // Learn the sender's address for replies.
                    self.peers.insert(from, src);
                    if let Some(local) = self.locals.get_mut(&to) {
                        local.stats.datagrams_received += 1;
                        local.stats.bytes_received += payload.len() as u64;
                        local.inbox.push_back(Datagram {
                            from,
                            to: Destination::Unicast(to),
                            payload,
                        });
                    }
                    // Frames for endpoints we don't host are dropped, as a
                    // misdelivered datagram would be.
                }
                Err(e) => self.rejected.push((src, e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(base: u32) -> UdpTransport {
        UdpTransport::bind("127.0.0.1:0", base).expect("bind loopback")
    }

    /// Spin on poll_io until `ep` has a datagram or ~2s elapse. Real
    /// sockets are not deterministic; the bound is generous.
    fn wait_for(t: &mut UdpTransport, ep: EndpointId) -> Option<Datagram> {
        for _ in 0..2000 {
            t.poll_io();
            if let Some(dg) = t.recv(ep) {
                return Some(dg);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn cross_process_unicast_roundtrip() {
        let mut a = bound(100);
        let mut b = bound(200);
        let ep_a = a.endpoint();
        let ep_b = b.endpoint();
        a.register_peer(ep_b, b.local_addr().unwrap());
        a.send_unicast(ep_a, ep_b, Bytes::from_static(b"over the wire"));
        let dg = wait_for(&mut b, ep_b).expect("delivered");
        assert_eq!(dg.from, ep_a);
        assert_eq!(&dg.payload[..], b"over the wire");
        // b learned a's address from the inbound frame: replies route
        // without static registration.
        assert_eq!(b.peer_addr(ep_a), Some(a.local_addr().unwrap()));
        b.send_unicast(ep_b, ep_a, Bytes::from_static(b"ack"));
        let dg = wait_for(&mut a, ep_a).expect("reply delivered");
        assert_eq!(&dg.payload[..], b"ack");
    }

    #[test]
    fn local_endpoints_loop_back_without_the_wire() {
        let mut t = bound(0);
        let a = t.endpoint();
        let b = t.endpoint();
        t.send_unicast(a, b, Bytes::from_static(b"loopback"));
        // No poll_io needed: same-process delivery is immediate.
        let dg = t.recv(b).expect("looped back");
        assert_eq!(dg.from, a);
        assert_eq!(t.stats(a).datagrams_sent, 1);
        assert_eq!(t.stats(b).datagrams_received, 1);
    }

    #[test]
    fn emulated_multicast_fans_out() {
        let mut t = bound(0);
        let s = t.endpoint();
        let m1 = t.endpoint();
        let m2 = t.endpoint();
        let g = t.multicast_group();
        t.join_group(g, m1);
        t.join_group(g, m2);
        t.send_multicast(s, g, Bytes::from_static(b"rekey"));
        assert!(t.recv(m1).is_some());
        assert!(t.recv(m2).is_some());
        // One logical send regardless of fan-out.
        assert_eq!(t.stats(s).datagrams_sent, 1);
        t.leave_group(g, m2);
        t.send_multicast(s, g, Bytes::from_static(b"again"));
        assert!(t.recv(m1).is_some());
        assert!(t.recv(m2).is_none());
    }

    #[test]
    fn malformed_frames_rejected_with_typed_errors() {
        let mut rx = bound(0);
        let ep = rx.endpoint();
        let addr = rx.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(&[UDP_MAGIC], addr).unwrap(); // truncated
        raw.send_to(&[0x00; 16], addr).unwrap(); // bad magic
        let mut bad_version = encode_frame(EndpointId(1), ep, b"x");
        bad_version[1] = 99;
        raw.send_to(&bad_version, addr).unwrap();
        for _ in 0..2000 {
            rx.poll_io();
            if rx.rejected().len() >= 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let errs: Vec<UdpFrameError> = rx.rejected().iter().map(|(_, e)| *e).collect();
        assert!(errs.contains(&UdpFrameError::Truncated { len: 1 }));
        assert!(errs.contains(&UdpFrameError::BadMagic(0x00)));
        assert!(errs.contains(&UdpFrameError::BadVersion(99)));
        assert!(rx.recv(ep).is_none(), "rejected frames deliver nothing");
    }

    #[test]
    fn unroutable_sends_are_counted_not_fatal() {
        let mut t = bound(0);
        let a = t.endpoint();
        t.send_unicast(a, EndpointId(4242), Bytes::from_static(b"void"));
        assert_eq!(t.unroutable(), 1);
    }

    #[test]
    fn oversized_payloads_rejected() {
        let mut t = bound(0);
        let a = t.endpoint();
        let huge = Bytes::from(vec![0u8; MAX_UDP_PAYLOAD + 1]);
        t.send_unicast(a, EndpointId(7), huge);
        assert!(matches!(t.rejected()[0].1, UdpFrameError::Oversized { .. }));
    }
}
