//! A fleet of networked clients — the paper's "client-simulator".
//!
//! §5: "A client-simulator runs on the other SGI simulating a large number
//! of clients. Actual rekey messages, as well as join, join-ack, leave,
//! leave-ack messages, are sent between individual clients and the server."
//! [`ClientFleet`] is that simulator: it owns one endpoint + [`Client`]
//! state machine per member, issues join/leave requests, applies the
//! out-of-band join grants (the authentication exchange), and pumps every
//! inbox, processing rekey packets as they arrive.

use crate::{Client, ClientError, ProcessSummary, VerifyPolicy};
use bytes::Bytes;
use kg_core::ids::{KeyLabel, UserId};
use kg_core::rekey::KeyCipher;
use kg_crypto::hmac::hmac;
use kg_crypto::md5::Md5;
use kg_crypto::SymmetricKey;
use kg_net::{EndpointId, Transport};
use kg_wire::ControlMessage;
use std::collections::BTreeMap;

/// Events a fleet observes while pumping inboxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// The server granted this member's join (ack received).
    JoinAcked(UserId),
    /// The server denied a join.
    JoinDenied(UserId),
    /// The server granted a leave.
    LeaveAcked(UserId),
    /// The server denied a leave.
    LeaveDenied(UserId),
    /// A rekey packet was processed.
    Rekeyed(UserId, ProcessSummary),
    /// A rekey packet failed to process.
    RekeyFailed(UserId, ClientError),
}

struct Member {
    client: Client,
    endpoint: EndpointId,
}

/// The client-simulator.
pub struct ClientFleet {
    cipher: KeyCipher,
    verify: VerifyPolicy,
    members: BTreeMap<UserId, Member>,
    obs: kg_obs::Obs,
}

impl ClientFleet {
    /// Create an empty fleet whose clients use `cipher` and `verify`.
    pub fn new(cipher: KeyCipher, verify: VerifyPolicy) -> Self {
        ClientFleet { cipher, verify, members: BTreeMap::new(), obs: kg_obs::Obs::disabled() }
    }

    /// Attach an observability handle to the fleet: every current and
    /// future member records into the shared `kg_client_*` metrics (see
    /// [`Client::attach_obs`]).
    pub fn attach_obs(&mut self, obs: kg_obs::Obs) {
        for m in self.members.values_mut() {
            m.client.attach_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Number of members being simulated.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Access a member's client state.
    pub fn client(&self, user: UserId) -> Option<&Client> {
        self.members.get(&user).map(|m| &m.client)
    }

    /// Iterate over member clients.
    pub fn clients(&self) -> impl Iterator<Item = &Client> {
        self.members.values().map(|m| &m.client)
    }

    /// A member's network endpoint.
    pub fn endpoint(&self, user: UserId) -> Option<EndpointId> {
        self.members.get(&user).map(|m| m.endpoint)
    }

    /// Create the member's endpoint and send its join request.
    pub fn send_join_request<T: Transport>(
        &mut self,
        net: &mut T,
        server: EndpointId,
        user: UserId,
    ) -> EndpointId {
        let endpoint = net.endpoint();
        let mut client = Client::new(user, self.cipher, self.verify.clone());
        client.attach_obs(self.obs.clone());
        self.members.insert(user, Member { client, endpoint });
        let req = ControlMessage::JoinRequest { user }.encode();
        net.send_unicast(endpoint, server, Bytes::from(req));
        endpoint
    }

    /// Apply a join grant (the individual key arrives via the simulated
    /// authentication exchange, not the datagram network).
    pub fn apply_grant(
        &mut self,
        user: UserId,
        individual_key: SymmetricKey,
        leaf_label: KeyLabel,
        path_labels: &[KeyLabel],
    ) {
        if let Some(m) = self.members.get_mut(&user) {
            m.client.install_grant(individual_key, leaf_label, path_labels);
        }
    }

    /// Send a leave request authenticated under the member's individual
    /// key (`{leave-request}_{k_u}`).
    pub fn send_leave_request<T: Transport>(
        &mut self,
        net: &mut T,
        server: EndpointId,
        user: UserId,
    ) {
        let Some(m) = self.members.get(&user) else { return };
        let Some(ik) = m.client.individual_key() else { return };
        let auth = hmac::<Md5>(ik.material(), &user.0.to_be_bytes());
        let req = ControlMessage::LeaveRequest { user, auth }.encode();
        net.send_unicast(m.endpoint, server, Bytes::from(req));
    }

    /// Drop a departed member and close its endpoint.
    pub fn remove<T: Transport>(&mut self, net: &mut T, user: UserId) -> Option<Client> {
        let m = self.members.remove(&user)?;
        net.close(m.endpoint);
        Some(m.client)
    }

    /// Drain every member's inbox, processing control acks and rekey
    /// packets. Returns the observed events.
    pub fn pump<T: Transport>(&mut self, net: &mut T) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        for (&user, m) in self.members.iter_mut() {
            while let Some(dg) = net.recv(m.endpoint) {
                if kg_wire::BatchRekeyPacket::sniff(&dg.payload)
                    || kg_wire::DerivedRekeyPacket::sniff(&dg.payload)
                {
                    match m.client.process_packet(&dg.payload) {
                        Ok(s) => events.push(FleetEvent::Rekeyed(user, s)),
                        Err(e) => events.push(FleetEvent::RekeyFailed(user, e)),
                    }
                    continue;
                }
                if let Ok(ctrl) = ControlMessage::decode(&dg.payload) {
                    match ctrl {
                        ControlMessage::JoinGranted { user: u, .. } => {
                            events.push(FleetEvent::JoinAcked(u))
                        }
                        ControlMessage::JoinDenied { user: u } => {
                            events.push(FleetEvent::JoinDenied(u))
                        }
                        ControlMessage::LeaveGranted { user: u } => {
                            events.push(FleetEvent::LeaveAcked(u))
                        }
                        ControlMessage::LeaveDenied { user: u } => {
                            events.push(FleetEvent::LeaveDenied(u))
                        }
                        _ => {}
                    }
                    continue;
                }
                match m.client.process_rekey(&dg.payload) {
                    Ok(s) => events.push(FleetEvent::Rekeyed(user, s)),
                    Err(e) => events.push(FleetEvent::RekeyFailed(user, e)),
                }
            }
        }
        events
    }

    /// Check that every member agrees on one group key; returns it.
    /// `None` if the fleet is empty or members disagree (a protocol bug or
    /// in-flight rekey).
    pub fn group_key_consensus(&self) -> Option<SymmetricKey> {
        let mut iter = self.members.values();
        let first = iter.next()?.client.group_key()?.1;
        for m in iter {
            if m.client.group_key()?.1 != first {
                return None;
            }
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_net::{NetConfig, SimNetwork};
    use kg_server::net::{NetServer, ServerEvent};
    use kg_server::{AccessControl, GroupKeyServer, ServerConfig};

    /// Full end-to-end pump: fleet requests → server poll → grants → fleet
    /// pump, until quiescent.
    fn settle(
        net: &mut SimNetwork,
        ns: &mut NetServer,
        fleet: &mut ClientFleet,
    ) -> Vec<FleetEvent> {
        let mut all = Vec::new();
        for _ in 0..10 {
            net.run_until_quiet();
            let server_events = ns.poll(net);
            for ev in server_events {
                if let ServerEvent::Joined(grant) = ev {
                    fleet.apply_grant(
                        grant.user,
                        grant.individual_key.clone(),
                        grant.leaf_label,
                        &grant.path_labels,
                    );
                }
            }
            net.run_until_quiet();
            let evs = fleet.pump(net);
            let quiet = evs.is_empty() && net.pending_total() == 0;
            all.extend(evs);
            if quiet {
                break;
            }
        }
        all
    }

    #[test]
    fn end_to_end_joins_and_leaves() {
        let mut net = SimNetwork::new(NetConfig::default());
        let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
        let mut ns = NetServer::new(server, &mut net);
        let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);

        for i in 0..12 {
            fleet.send_join_request(&mut net, ns.endpoint(), UserId(i));
            settle(&mut net, &mut ns, &mut fleet);
        }
        assert_eq!(ns.inner().group_size(), 12);
        let (_, server_gk) = ns.inner().tree().group_key();
        assert_eq!(fleet.group_key_consensus().unwrap(), server_gk);

        // Three members leave.
        for i in [2u64, 7, 11] {
            fleet.send_leave_request(&mut net, ns.endpoint(), UserId(i));
            settle(&mut net, &mut ns, &mut fleet);
            fleet.remove(&mut net, UserId(i));
        }
        assert_eq!(ns.inner().group_size(), 9);
        let (_, server_gk) = ns.inner().tree().group_key();
        assert_eq!(fleet.group_key_consensus().unwrap(), server_gk);
    }

    #[test]
    fn interleaved_churn_keeps_consensus() {
        let mut net = SimNetwork::new(NetConfig::default());
        let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
        let mut ns = NetServer::new(server, &mut net);
        let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);

        let mut present: Vec<u64> = Vec::new();
        for step in 0..60u64 {
            if step % 3 == 2 && present.len() > 1 {
                let u = present.remove((step as usize * 13) % present.len());
                fleet.send_leave_request(&mut net, ns.endpoint(), UserId(u));
                settle(&mut net, &mut ns, &mut fleet);
                fleet.remove(&mut net, UserId(u));
            } else {
                fleet.send_join_request(&mut net, ns.endpoint(), UserId(step));
                settle(&mut net, &mut ns, &mut fleet);
                present.push(step);
            }
            let (_, server_gk) = ns.inner().tree().group_key();
            assert_eq!(
                fleet.group_key_consensus().unwrap(),
                server_gk,
                "divergence at step {step}"
            );
        }
    }

    /// Batched-mode analogue of `settle`: requests queue server-side and
    /// only take effect when the clock reaches a rekey interval.
    fn tick_settle(
        net: &mut SimNetwork,
        ns: &mut NetServer,
        fleet: &mut ClientFleet,
        now_ms: u64,
    ) -> Vec<FleetEvent> {
        let mut all = Vec::new();
        for _ in 0..10 {
            net.run_until_quiet();
            let server_events = ns.tick(net, now_ms);
            for ev in server_events {
                if let ServerEvent::Joined(grant) = ev {
                    fleet.apply_grant(
                        grant.user,
                        grant.individual_key.clone(),
                        grant.leaf_label,
                        &grant.path_labels,
                    );
                }
            }
            net.run_until_quiet();
            let evs = fleet.pump(net);
            let quiet = evs.is_empty() && net.pending_total() == 0;
            all.extend(evs);
            if quiet {
                break;
            }
        }
        all
    }

    #[test]
    fn batched_churn_converges_at_each_interval() {
        let mut net = SimNetwork::new(NetConfig::default());
        let config = ServerConfig {
            rekey: kg_server::RekeyPolicy::Batched { interval_ms: 100, max_pending: 1000 },
            ..ServerConfig::default()
        };
        let server = GroupKeyServer::new(config, AccessControl::AllowAll);
        let mut ns = NetServer::new(server, &mut net);
        let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);

        // Interval 1: twelve joins accumulate, nothing happens mid-interval.
        for i in 0..12 {
            fleet.send_join_request(&mut net, ns.endpoint(), UserId(i));
        }
        net.run_until_quiet();
        ns.tick(&mut net, 50);
        assert_eq!(ns.inner().group_size(), 0);
        assert_eq!(ns.inner().pending_requests(), 12);
        let evs = tick_settle(&mut net, &mut ns, &mut fleet, 100);
        assert!(evs.iter().any(|e| matches!(e, FleetEvent::JoinAcked(_))));
        assert_eq!(ns.inner().group_size(), 12);
        let (_, server_gk) = ns.inner().tree().group_key();
        assert_eq!(fleet.group_key_consensus().unwrap(), server_gk);

        // Interval 2: mixed churn — three leaves and two joins collapse
        // into one flush.
        for u in [2u64, 7, 11] {
            fleet.send_leave_request(&mut net, ns.endpoint(), UserId(u));
        }
        for u in [20u64, 21] {
            fleet.send_join_request(&mut net, ns.endpoint(), UserId(u));
        }
        let evs = tick_settle(&mut net, &mut ns, &mut fleet, 200);
        for u in [2u64, 7, 11] {
            assert!(evs.contains(&FleetEvent::LeaveAcked(UserId(u))));
            fleet.remove(&mut net, UserId(u));
        }
        assert_eq!(ns.inner().group_size(), 11);
        let (_, server_gk) = ns.inner().tree().group_key();
        assert_eq!(fleet.group_key_consensus().unwrap(), server_gk);
        for c in fleet.clients() {
            assert_eq!(c.last_interval(), 2, "user {:?}", c.user());
        }

        // Departed members never learned the post-eviction group key.
        for u in [2u64, 7, 11] {
            assert!(fleet.client(UserId(u)).is_none());
        }
    }

    #[test]
    fn fleet_accessors() {
        let mut net = SimNetwork::new(NetConfig::default());
        let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        assert!(fleet.is_empty());
        let server_ep = net.endpoint();
        let ep = fleet.send_join_request(&mut net, server_ep, UserId(3));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.endpoint(UserId(3)), Some(ep));
        assert!(fleet.client(UserId(3)).is_some());
        assert!(fleet.client(UserId(9)).is_none());
        assert!(fleet.remove(&mut net, UserId(3)).is_some());
        assert!(fleet.is_empty());
    }
}
