//! # kg-client — the client layer
//!
//! Each group member runs this state machine: it holds the member's keyset
//! (individual key, subgroup keys, group key — the keys on its key-tree
//! path), processes rekey packets from the server under any of the three
//! strategies, verifies digests / signatures / Merkle authentication paths,
//! and counts the client-side quantities of the paper's evaluation
//! (Table 6 message sizes, Figure 12 key changes per request).
//!
//! A client doesn't know the tree shape — only labels. Rekey bundles name
//! the (label, version) they are encrypted under and the (label, version)s
//! they deliver; the client decrypts what it can, looping to a fixed point
//! because group-oriented leave messages chain new keys under newer keys.
//!
//! ```
//! use kg_client::{Client, VerifyPolicy};
//! use kg_server::{GroupKeyServer, ServerConfig, AccessControl};
//! use kg_core::ids::UserId;
//!
//! let mut server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
//! let op = server.handle_join(UserId(1)).unwrap();
//! let grant = op.join_grant.unwrap();
//!
//! let mut client = Client::new(UserId(1), server.config().cipher, VerifyPolicy::Opportunistic);
//! client.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);
//! for bytes in &op.encoded {
//!     client.process_rekey(bytes).unwrap();
//! }
//! assert_eq!(client.group_key().unwrap().1, server.tree().group_key().1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;

use kg_core::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use kg_core::merkle;
use kg_core::rekey::KeyCipher;
use kg_crypto::rsa::{HashAlg, RsaPublicKey};
use kg_crypto::SymmetricKey;
use kg_obs::{Counter, Histogram, Obs, ObsEvent};
use kg_wire::{AuthTag, BatchRekeyPacket, DerivedRekeyPacket, RekeyPacket, WireError};
use std::collections::BTreeMap;
use std::time::Instant;

/// How strictly the client checks rekey message authenticity.
#[derive(Debug, Clone)]
pub enum VerifyPolicy {
    /// Verify whatever tag is present, require none (experiment mode
    /// matching the paper's "encryption only" runs).
    Opportunistic,
    /// Require at least a digest.
    RequireDigest(HashAlg),
    /// Require a signature (per-message or Merkle) from this server key —
    /// "if users cannot be trusted, then each rekey message should be
    /// digitally signed by the server" (§4).
    RequireSignature {
        /// Digest algorithm used by the server.
        alg: HashAlg,
        /// The server's public key.
        key: RsaPublicKey,
    },
}

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The packet failed to decode.
    Wire(WireError),
    /// The packet's authenticity tag was missing or invalid.
    AuthFailed,
    /// A bundle addressed to us failed to decrypt (stale keyset — should
    /// not happen under reliable delivery).
    DecryptFailed(KeyRef),
    /// A batch or derived rekey packet from an interval older than one
    /// already applied; applying it would roll keys back.
    StaleInterval {
        /// The interval the packet carries.
        packet: u64,
        /// The newest interval this client has applied.
        current: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::AuthFailed => write!(f, "rekey message failed authenticity check"),
            ClientError::DecryptFailed(r) => write!(f, "could not decrypt bundle under {r:?}"),
            ClientError::StaleInterval { packet, current } => {
                write!(f, "stale batch interval {packet} (already at {current})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// What one rekey packet did to this client's keyset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessSummary {
    /// Keys installed or replaced (Figure 12's "key changes").
    pub keys_installed: u64,
    /// Bundles this client decrypted.
    pub bundles_decrypted: u64,
    /// Bundles not addressed to this client (normal in group-oriented
    /// rekeying, where one packet carries every subgroup's keys).
    pub bundles_skipped: u64,
}

/// Lifetime counters for Table 6 / Figure 12.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Rekey packets processed.
    pub rekey_msgs: u64,
    /// Total bytes of those packets.
    pub rekey_bytes: u64,
    /// Total keys installed (= keys decrypted).
    pub key_changes: u64,
    /// Signature / Merkle-path verifications performed.
    pub verifications: u64,
}

/// A group member's key state machine.
#[derive(Debug, Clone)]
pub struct Client {
    user: UserId,
    cipher: KeyCipher,
    verify: VerifyPolicy,
    /// label → (version, key); the member's current keyset.
    keys: BTreeMap<KeyLabel, (KeyVersion, SymmetricKey)>,
    /// The root (group key) label, learned from the join grant.
    root_label: Option<KeyLabel>,
    /// Our individual-key leaf label.
    leaf_label: Option<KeyLabel>,
    /// Newest batch rekey interval applied (0 = none yet).
    last_interval: u64,
    stats: ClientStats,
    /// Observability (disabled by default): apply-latency histogram,
    /// stale-interval counter, timeline events. Shared across every
    /// client attached to the same handle — fleet-wide distributions.
    obs: Obs,
    apply_us: Histogram,
    stale_rejections: Counter,
}

impl Client {
    /// Create a client for `user`.
    pub fn new(user: UserId, cipher: KeyCipher, verify: VerifyPolicy) -> Self {
        Client {
            user,
            cipher,
            verify,
            keys: BTreeMap::new(),
            root_label: None,
            leaf_label: None,
            last_interval: 0,
            stats: ClientStats::default(),
            obs: Obs::disabled(),
            apply_us: Histogram::default(),
            stale_rejections: Counter::default(),
        }
    }

    /// Attach an observability handle: rekey-apply latency flows to the
    /// `kg_client_apply_us` histogram, stale-interval rejections to
    /// `kg_client_stale_total` and the timeline. Handles are shared, so
    /// attaching one `Obs` to a whole fleet yields fleet-wide metrics.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.apply_us = obs.histogram("kg_client_apply_us");
        self.stale_rejections = obs.counter("kg_client_stale_total");
        self.obs = obs;
    }

    /// This client's user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Install the outcome of the (simulated) authentication exchange plus
    /// the join-ack: our individual key, our leaf label, and the root
    /// label.
    pub fn install_grant(
        &mut self,
        individual_key: SymmetricKey,
        leaf_label: KeyLabel,
        path_labels: &[KeyLabel],
    ) {
        self.keys.insert(leaf_label, (KeyVersion::default(), individual_key));
        self.leaf_label = Some(leaf_label);
        self.root_label = path_labels.first().copied();
    }

    /// The current group key, if known.
    pub fn group_key(&self) -> Option<(KeyRef, SymmetricKey)> {
        let root = self.root_label?;
        let (v, k) = self.keys.get(&root)?;
        Some((KeyRef::new(root, *v), k.clone()))
    }

    /// The member's individual key.
    pub fn individual_key(&self) -> Option<SymmetricKey> {
        let leaf = self.leaf_label?;
        self.keys.get(&leaf).map(|(_, k)| k.clone())
    }

    /// Number of keys currently held (≈ tree height, Table 1's `h`).
    pub fn keys_held(&self) -> usize {
        self.keys.len()
    }

    /// A snapshot of the full keyset (secrecy audits in tests).
    pub fn keyset(&self) -> Vec<(KeyRef, SymmetricKey)> {
        self.keys.iter().map(|(&l, (v, k))| (KeyRef::new(l, *v), k.clone())).collect()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Process one encoded rekey packet.
    pub fn process_rekey(&mut self, bytes: &[u8]) -> Result<ProcessSummary, ClientError> {
        let t0 = self.obs.is_enabled().then(Instant::now);
        let (packet, body_len) = RekeyPacket::decode(bytes)?;
        self.verify_auth(&packet.auth, &bytes[..body_len])?;
        self.stats.rekey_msgs += 1;
        self.stats.rekey_bytes += bytes.len() as u64;

        let mut summary = ProcessSummary::default();
        let mut done = vec![false; packet.message.bundles.len()];
        // Fixed point: a bundle may be decryptable only after another
        // installs the key it is encrypted under (group-oriented leave).
        loop {
            let mut progress = false;
            for (i, bundle) in packet.message.bundles.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let Some((version, key)) = self.keys.get(&bundle.encrypted_with.label) else {
                    continue;
                };
                if *version != bundle.encrypted_with.version {
                    continue;
                }
                let key = key.clone();
                let plain = self
                    .cipher
                    .decrypt(&key, &bundle.iv, &bundle.ciphertext)
                    .map_err(|_| ClientError::DecryptFailed(bundle.encrypted_with))?;
                let key_len = self.cipher.key_len();
                if plain.len() != bundle.targets.len() * key_len {
                    return Err(ClientError::DecryptFailed(bundle.encrypted_with));
                }
                for (j, target) in bundle.targets.iter().enumerate() {
                    let material = &plain[j * key_len..(j + 1) * key_len];
                    let newer =
                        self.keys.get(&target.label).is_none_or(|(v, _)| target.version > *v);
                    if newer {
                        self.keys.insert(
                            target.label,
                            (target.version, SymmetricKey::from_bytes(material)),
                        );
                        summary.keys_installed += 1;
                    }
                }
                summary.bundles_decrypted += 1;
                done[i] = true;
                progress = true;
            }
            if !progress {
                break;
            }
        }
        summary.bundles_skipped = done.iter().filter(|&&d| !d).count() as u64;
        self.stats.key_changes += summary.keys_installed;
        if let Some(t0) = t0 {
            self.apply_us.record(t0.elapsed().as_micros() as u64);
        }
        Ok(summary)
    }

    /// Newest batch rekey interval applied (0 before any batch).
    pub fn last_interval(&self) -> u64 {
        self.last_interval
    }

    /// Process one encoded **batch** rekey packet, atomically.
    ///
    /// The whole packet is applied all-or-nothing: new keys are staged in
    /// a side map while decrypting to a fixed point, and only merged into
    /// the key store once every reachable bundle decrypted cleanly. A
    /// decryption failure (or bad authenticity tag, or a stale interval —
    /// older than one already applied) leaves the client's keyset and
    /// rekey counters untouched. Bundles not addressed to this client are
    /// skipped, as in [`Self::process_rekey`].
    pub fn process_batch_rekey(&mut self, bytes: &[u8]) -> Result<ProcessSummary, ClientError> {
        let t0 = self.obs.is_enabled().then(Instant::now);
        let (packet, body_len) = BatchRekeyPacket::decode(bytes)?;
        self.verify_auth(&packet.auth, &bytes[..body_len])?;
        if packet.interval < self.last_interval {
            self.stale_rejections.inc();
            self.obs.event(ObsEvent::StaleInterval {
                packet: packet.interval,
                current: self.last_interval,
            });
            return Err(ClientError::StaleInterval {
                packet: packet.interval,
                current: self.last_interval,
            });
        }

        let mut staged: BTreeMap<KeyLabel, (KeyVersion, SymmetricKey)> = BTreeMap::new();
        let mut summary = ProcessSummary::default();
        let mut done = vec![false; packet.message.bundles.len()];
        // Fixed point over the staged view: a bundle may be decryptable
        // only under a key another bundle of this interval delivers.
        loop {
            let mut progress = false;
            for (i, bundle) in packet.message.bundles.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let holder = staged
                    .get(&bundle.encrypted_with.label)
                    .or_else(|| self.keys.get(&bundle.encrypted_with.label));
                let Some((version, key)) = holder else { continue };
                if *version != bundle.encrypted_with.version {
                    continue;
                }
                let plain = self
                    .cipher
                    .decrypt(key, &bundle.iv, &bundle.ciphertext)
                    .map_err(|_| ClientError::DecryptFailed(bundle.encrypted_with))?;
                let key_len = self.cipher.key_len();
                if plain.len() != bundle.targets.len() * key_len {
                    return Err(ClientError::DecryptFailed(bundle.encrypted_with));
                }
                for (j, target) in bundle.targets.iter().enumerate() {
                    let material = &plain[j * key_len..(j + 1) * key_len];
                    let newer = staged
                        .get(&target.label)
                        .or_else(|| self.keys.get(&target.label))
                        .is_none_or(|(v, _)| target.version > *v);
                    if newer {
                        staged.insert(
                            target.label,
                            (target.version, SymmetricKey::from_bytes(material)),
                        );
                        summary.keys_installed += 1;
                    }
                }
                summary.bundles_decrypted += 1;
                done[i] = true;
                progress = true;
            }
            if !progress {
                break;
            }
        }

        // Commit: every bundle we could reach decrypted cleanly.
        for (label, entry) in staged {
            self.keys.insert(label, entry);
        }
        self.last_interval = packet.interval;
        summary.bundles_skipped = done.iter().filter(|&&d| !d).count() as u64;
        self.stats.rekey_msgs += 1;
        self.stats.rekey_bytes += bytes.len() as u64;
        self.stats.key_changes += summary.keys_installed;
        if let Some(t0) = t0 {
            self.apply_us.record(t0.elapsed().as_micros() as u64);
        }
        Ok(summary)
    }

    /// Process one encoded **derived** rekey packet, atomically.
    ///
    /// A `Strategy::Derived` server ships no ciphertext to current members
    /// on joins and refreshes; instead the packet carries a derivation
    /// code and a work list of `(new_ref, from)` links. For every link
    /// whose `from` key this client holds (exact label *and* version —
    /// the derivation chains from the committed pre-interval keyset, never
    /// from a key staged this interval), the replacement is recomputed
    /// locally via [`kg_core::derive::derive_key`]. Any shipped bundles —
    /// the joiner's own path, or the group-oriented fallback of a leave —
    /// are then decrypted to a fixed point against the staged view, as in
    /// [`Self::process_batch_rekey`].
    ///
    /// Application is all-or-nothing with the same staleness rule as
    /// batches: a packet older than `last_interval` is refused untouched,
    /// an equal interval is an idempotent no-op redelivery.
    pub fn apply_derived(&mut self, bytes: &[u8]) -> Result<ProcessSummary, ClientError> {
        let t0 = self.obs.is_enabled().then(Instant::now);
        let (packet, body_len) = DerivedRekeyPacket::decode(bytes)?;
        self.verify_auth(&packet.auth, &bytes[..body_len])?;
        if packet.interval < self.last_interval {
            self.stale_rejections.inc();
            self.obs.event(ObsEvent::StaleInterval {
                packet: packet.interval,
                current: self.last_interval,
            });
            return Err(ClientError::StaleInterval {
                packet: packet.interval,
                current: self.last_interval,
            });
        }

        let mut staged: BTreeMap<KeyLabel, (KeyVersion, SymmetricKey)> = BTreeMap::new();
        let mut summary = ProcessSummary::default();

        // Pass 1 — derivation. Links only ever chain from pre-interval
        // keys (a split-created node derives from the displaced member's
        // individual key, not from anything new), so the lookup goes to
        // the committed keyset, not the staged view.
        for link in &packet.changed {
            let Some((version, key)) = self.keys.get(&link.from.label) else {
                continue;
            };
            if *version != link.from.version {
                continue;
            }
            let newer = staged
                .get(&link.new_ref.label)
                .or_else(|| self.keys.get(&link.new_ref.label))
                .is_none_or(|(v, _)| link.new_ref.version > *v);
            if newer {
                let new_key = kg_core::derive::derive_key(
                    key,
                    &packet.code,
                    link.new_ref.label,
                    link.new_ref.version,
                    self.cipher.key_len(),
                );
                staged.insert(link.new_ref.label, (link.new_ref.version, new_key));
                summary.keys_installed += 1;
            }
        }

        // Pass 2 — shipped bundles, decrypted to a fixed point against
        // staged ∪ committed (a joiner's path bundle may sit alongside
        // leave-fallback bundles chaining under this interval's keys).
        let bundles: Vec<&kg_core::rekey::KeyBundle> =
            packet.messages.iter().flat_map(|m| m.bundles.iter()).collect();
        let mut done = vec![false; bundles.len()];
        loop {
            let mut progress = false;
            for (i, bundle) in bundles.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let holder = staged
                    .get(&bundle.encrypted_with.label)
                    .or_else(|| self.keys.get(&bundle.encrypted_with.label));
                let Some((version, key)) = holder else { continue };
                if *version != bundle.encrypted_with.version {
                    continue;
                }
                let plain = self
                    .cipher
                    .decrypt(key, &bundle.iv, &bundle.ciphertext)
                    .map_err(|_| ClientError::DecryptFailed(bundle.encrypted_with))?;
                let key_len = self.cipher.key_len();
                if plain.len() != bundle.targets.len() * key_len {
                    return Err(ClientError::DecryptFailed(bundle.encrypted_with));
                }
                for (j, target) in bundle.targets.iter().enumerate() {
                    let material = &plain[j * key_len..(j + 1) * key_len];
                    let newer = staged
                        .get(&target.label)
                        .or_else(|| self.keys.get(&target.label))
                        .is_none_or(|(v, _)| target.version > *v);
                    if newer {
                        staged.insert(
                            target.label,
                            (target.version, SymmetricKey::from_bytes(material)),
                        );
                        summary.keys_installed += 1;
                    }
                }
                summary.bundles_decrypted += 1;
                done[i] = true;
                progress = true;
            }
            if !progress {
                break;
            }
        }

        // Commit.
        for (label, entry) in staged {
            self.keys.insert(label, entry);
        }
        self.last_interval = packet.interval;
        summary.bundles_skipped = done.iter().filter(|&&d| !d).count() as u64;
        self.stats.rekey_msgs += 1;
        self.stats.rekey_bytes += bytes.len() as u64;
        self.stats.key_changes += summary.keys_installed;
        if let Some(t0) = t0 {
            self.apply_us.record(t0.elapsed().as_micros() as u64);
        }
        Ok(summary)
    }

    /// Process any rekey packet, dispatching on its leading magic byte:
    /// derived (`0xD6`) → [`Self::apply_derived`], batch (`0xB5`) →
    /// [`Self::process_batch_rekey`], anything else → the legacy
    /// per-operation [`Self::process_rekey`].
    pub fn process_packet(&mut self, bytes: &[u8]) -> Result<ProcessSummary, ClientError> {
        if DerivedRekeyPacket::sniff(bytes) {
            self.apply_derived(bytes)
        } else if BatchRekeyPacket::sniff(bytes) {
            self.process_batch_rekey(bytes)
        } else {
            self.process_rekey(bytes)
        }
    }

    fn verify_auth(&mut self, auth: &AuthTag, body: &[u8]) -> Result<(), ClientError> {
        match (&self.verify, auth) {
            (VerifyPolicy::Opportunistic, AuthTag::None) => Ok(()),
            (VerifyPolicy::Opportunistic | VerifyPolicy::RequireDigest(_), AuthTag::Digest(d)) => {
                // The digest algorithm is inferred from its length.
                let alg = match d.len() {
                    16 => HashAlg::Md5,
                    20 => HashAlg::Sha1,
                    32 => HashAlg::Sha256,
                    _ => return Err(ClientError::AuthFailed),
                };
                if alg.hash(body) == *d {
                    Ok(())
                } else {
                    Err(ClientError::AuthFailed)
                }
            }
            (VerifyPolicy::RequireDigest(_), AuthTag::None) => Err(ClientError::AuthFailed),
            (VerifyPolicy::RequireSignature { alg, key }, AuthTag::Signed { signature }) => {
                self.stats.verifications += 1;
                key.verify(*alg, body, signature).map_err(|_| ClientError::AuthFailed)
            }
            (
                VerifyPolicy::RequireSignature { alg, key },
                AuthTag::MerkleSigned { root_signature, path },
            ) => {
                self.stats.verifications += 1;
                merkle::verify_message(key, *alg, body, path, root_signature)
                    .map_err(|_| ClientError::AuthFailed)
            }
            (VerifyPolicy::RequireSignature { .. }, _) => Err(ClientError::AuthFailed),
            // Opportunistic accepts signed packets it cannot check (no key).
            (VerifyPolicy::Opportunistic, _) => Ok(()),
            (VerifyPolicy::RequireDigest(_), _) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::rekey::Strategy;
    use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

    /// Build a server + synchronized clients, delivering every packet to
    /// every client (group-oriented style over-delivery is harmless: a
    /// client skips bundles it cannot open).
    fn build(strategy: Strategy, auth: AuthPolicy, n: u64) -> (GroupKeyServer, Vec<Client>) {
        let config = ServerConfig { strategy, auth, ..ServerConfig::default() };
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        let mut clients = Vec::new();
        for i in 0..n {
            join_one(&mut server, &mut clients, UserId(i));
        }
        (server, clients)
    }

    fn verify_policy(server: &GroupKeyServer) -> VerifyPolicy {
        match server.public_key() {
            Some(pk) => {
                VerifyPolicy::RequireSignature { alg: server.config().digest, key: pk.clone() }
            }
            None => VerifyPolicy::Opportunistic,
        }
    }

    fn join_one(server: &mut GroupKeyServer, clients: &mut Vec<Client>, user: UserId) {
        let op = server.handle_join(user).unwrap();
        let grant = op.join_grant.clone().unwrap();
        let mut c = Client::new(user, server.config().cipher, verify_policy(server));
        c.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);
        clients.push(c);
        deliver_all(server, clients, &op.encoded);
    }

    fn deliver_all(server: &GroupKeyServer, clients: &mut [Client], encoded: &[Vec<u8>]) -> u64 {
        let _ = server;
        let mut installed = 0;
        for bytes in encoded {
            for c in clients.iter_mut() {
                installed += c.process_rekey(bytes).unwrap().keys_installed;
            }
        }
        installed
    }

    #[test]
    fn all_members_track_the_group_key() {
        for strategy in Strategy::ALL {
            let (server, clients) = build(strategy, AuthPolicy::None, 17);
            let (gk_ref, gk) = server.tree().group_key();
            for c in &clients {
                let (r, k) = c.group_key().expect("client knows group key");
                assert_eq!(r, gk_ref, "strategy {strategy:?} user {:?}", c.user());
                assert_eq!(k, gk);
            }
        }
    }

    #[test]
    fn leave_rotates_key_for_survivors_only() {
        for strategy in Strategy::ALL {
            let (mut server, mut clients) = build(strategy, AuthPolicy::None, 9);
            let op = server.handle_leave(UserId(4)).unwrap();
            let leaver = clients.remove(4);
            deliver_all(&server, &mut clients, &op.encoded);
            let (gk_ref, gk) = server.tree().group_key();
            for c in &clients {
                let (r, k) = c.group_key().unwrap();
                assert_eq!(r, gk_ref, "strategy {strategy:?}");
                assert_eq!(k, gk);
            }
            // The leaver's stale keyset must not contain the new group key.
            for (_, k) in leaver.keyset() {
                assert_ne!(k, gk, "strategy {strategy:?}: leaver holds new group key");
            }
        }
    }

    #[test]
    fn leaver_cannot_decrypt_rekey_traffic() {
        for strategy in Strategy::ALL {
            let (mut server, mut clients) = build(strategy, AuthPolicy::None, 9);
            let op = server.handle_leave(UserId(4)).unwrap();
            let mut leaver = clients.remove(4);
            // Even if the leaver intercepts every packet, it installs no
            // new keys: every bundle is under a key it lacks or a replaced
            // version.
            for bytes in &op.encoded {
                let s = leaver.process_rekey(bytes).unwrap();
                assert_eq!(s.keys_installed, 0, "strategy {strategy:?}");
            }
        }
    }

    #[test]
    fn joiner_cannot_read_pre_join_traffic() {
        let (mut server, mut clients) = build(Strategy::GroupOriented, AuthPolicy::None, 8);
        // Capture pre-join rekey traffic (from user 7's leave).
        let old_op = server.handle_leave(UserId(7)).unwrap();
        clients.remove(7);
        deliver_all(&server, &mut clients, &old_op.encoded);
        let (_, old_gk) = server.tree().group_key();
        // New member joins.
        join_one(&mut server, &mut clients, UserId(100));
        let newcomer = clients.last().unwrap().clone();
        // The newcomer holds the *new* group key, not the old one, and
        // replaying old packets installs nothing.
        let (_, new_gk) = server.tree().group_key();
        assert_eq!(newcomer.group_key().unwrap().1, new_gk);
        for (_, k) in newcomer.keyset() {
            assert_ne!(k, old_gk);
        }
        let mut replayer = newcomer.clone();
        for bytes in &old_op.encoded {
            let s = replayer.process_rekey(bytes).unwrap();
            assert_eq!(s.keys_installed, 0);
        }
    }

    #[test]
    fn key_changes_match_paper_average() {
        // Figure 12: average key changes per request ≈ d/(d−1) for
        // non-requesting users.
        let (mut server, mut clients) = build(Strategy::GroupOriented, AuthPolicy::None, 64);
        let requests = 40u64;
        let mut installed = 0u64;
        for i in 0..requests {
            let op = server.handle_leave(UserId(i)).unwrap();
            clients.retain(|c| c.user() != UserId(i));
            installed += deliver_all(&server, &mut clients, &op.encoded);
            // Count the join's rekey installs too (join_one delivers
            // internally, so replicate its steps here to capture the tally).
            let op = server.handle_join(UserId(1000 + i)).unwrap();
            let grant = op.join_grant.clone().unwrap();
            let mut c =
                Client::new(UserId(1000 + i), server.config().cipher, verify_policy(&server));
            c.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);
            clients.push(c);
            installed += deliver_all(&server, &mut clients, &op.encoded);
        }
        // 2 requests per iteration; ~64 clients.
        let per_client_per_request =
            installed as f64 / (2.0 * requests as f64) / clients.len() as f64;
        let expected = 4.0 / 3.0; // d/(d−1) at d=4
        assert!(
            (per_client_per_request - expected).abs() < 0.5,
            "measured {per_client_per_request}, expected ≈ {expected}"
        );
    }

    #[test]
    fn signed_packets_verify_and_tampering_detected() {
        let (mut server, mut clients) = build(Strategy::KeyOriented, AuthPolicy::SignBatch, 16);
        let op = server.handle_leave(UserId(3)).unwrap();
        clients.remove(3);
        // Valid packets process fine.
        for bytes in &op.encoded {
            for c in clients.iter_mut() {
                c.process_rekey(bytes).unwrap();
            }
        }
        // A tampered body fails verification.
        let mut bad = op.encoded[0].clone();
        bad[10] ^= 1;
        assert_eq!(clients[0].process_rekey(&bad).unwrap_err(), ClientError::AuthFailed);
    }

    #[test]
    fn require_signature_rejects_unsigned() {
        let (server, _) = build(Strategy::GroupOriented, AuthPolicy::SignBatch, 2);
        let mut strict = Client::new(
            UserId(50),
            server.config().cipher,
            VerifyPolicy::RequireSignature {
                alg: server.config().digest,
                key: server.public_key().unwrap().clone(),
            },
        );
        // Forge an unsigned packet.
        let pkt = kg_wire::RekeyPacket {
            seq: 0,
            op: kg_wire::OpKind::Join,
            timestamp_ms: 0,
            message: kg_core::rekey::RekeyMessage {
                recipients: kg_core::rekey::Recipients::Group,
                bundles: vec![],
            },
            auth: AuthTag::None,
        };
        assert_eq!(strict.process_rekey(&pkt.encode()).unwrap_err(), ClientError::AuthFailed);
    }

    #[test]
    fn digest_mismatch_detected() {
        let (mut server, mut clients) = build(Strategy::GroupOriented, AuthPolicy::Digest, 4);
        let op = server.handle_join(UserId(99)).unwrap();
        let mut bytes = op.encoded[0].clone();
        bytes[9] ^= 0x80; // flip a body bit; digest no longer matches
        assert_eq!(clients[0].process_rekey(&bytes).unwrap_err(), ClientError::AuthFailed);
    }

    #[test]
    fn stats_accumulate() {
        let (mut server, mut clients) = build(Strategy::GroupOriented, AuthPolicy::None, 8);
        let op = server.handle_join(UserId(50)).unwrap();
        deliver_all(&server, &mut clients, &op.encoded[..1]); // group packet only
        let st = clients[0].stats();
        assert!(st.rekey_msgs >= 1);
        assert!(st.rekey_bytes > 0);
        assert!(st.key_changes >= 1);
    }

    #[test]
    fn garbage_packet_is_wire_error() {
        let mut c = Client::new(UserId(1), KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        assert!(matches!(c.process_rekey(&[1, 2, 3]), Err(ClientError::Wire(_))));
        assert!(matches!(c.process_batch_rekey(&[0xB5, 0, 1]), Err(ClientError::Wire(_))));
    }

    /// Build a *batched* server with `n` members admitted in one seed
    /// interval, all clients synchronized through batch packets.
    fn build_batched(
        strategy: Strategy,
        auth: AuthPolicy,
        n: u64,
    ) -> (GroupKeyServer, Vec<Client>, Vec<Vec<u8>>) {
        let config = ServerConfig {
            strategy,
            auth,
            rekey: kg_server::RekeyPolicy::Batched { interval_ms: 10, max_pending: 100_000 },
            ..ServerConfig::default()
        };
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..n {
            server.enqueue_join(UserId(i)).unwrap();
        }
        let batch = server.flush(0).unwrap().unwrap();
        let mut clients = Vec::new();
        for g in &batch.grants {
            let mut c = Client::new(g.user, server.config().cipher, verify_policy(&server));
            c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
            clients.push(c);
        }
        for bytes in &batch.encoded {
            for c in clients.iter_mut() {
                c.process_batch_rekey(bytes).unwrap();
            }
        }
        (server, clients, batch.encoded)
    }

    #[test]
    fn batched_interval_synchronizes_all_strategies() {
        for strategy in Strategy::ALL {
            let (mut server, mut clients, _) = build_batched(strategy, AuthPolicy::None, 20);
            for u in [1u64, 5, 9] {
                server.enqueue_leave(UserId(u)).unwrap();
            }
            for u in 100..104u64 {
                server.enqueue_join(UserId(u)).unwrap();
            }
            let batch = server.tick(10).unwrap().expect("interval elapsed");
            assert_eq!(batch.interval, 2);
            // Separate the departed; admit the joiners.
            let mut departed: Vec<Client> = Vec::new();
            clients.retain_mut(|c| {
                if batch.departed.contains(&c.user()) {
                    departed.push(c.clone());
                    false
                } else {
                    true
                }
            });
            for g in &batch.grants {
                let mut c = Client::new(g.user, server.config().cipher, verify_policy(&server));
                c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
                clients.push(c);
            }
            // Over-deliver every packet to every member (clients skip what
            // they cannot open).
            for bytes in &batch.encoded {
                for c in clients.iter_mut() {
                    c.process_batch_rekey(bytes).unwrap();
                }
            }
            let (gk_ref, gk) = server.tree().group_key();
            for c in &clients {
                let (r, k) = c.group_key().expect("member has group key");
                assert_eq!(r, gk_ref, "{strategy:?} user {:?}", c.user());
                assert_eq!(k, gk);
                assert_eq!(c.last_interval(), 2);
            }
            // Departed members, replaying the whole interval, install
            // nothing and never learn the new group key.
            for d in departed.iter_mut() {
                for bytes in &batch.encoded {
                    let s = d.process_batch_rekey(bytes).unwrap();
                    assert_eq!(s.keys_installed, 0, "{strategy:?}");
                }
                for (_, k) in d.keyset() {
                    assert_ne!(k, gk, "{strategy:?}: departed holds new group key");
                }
            }
        }
    }

    #[test]
    fn stale_batch_interval_rejected() {
        let (mut server, mut clients, seed_encoded) =
            build_batched(Strategy::GroupOriented, AuthPolicy::None, 8);
        server.enqueue_leave(UserId(0)).unwrap();
        let batch = server.flush(10).unwrap().unwrap();
        clients.retain(|c| c.user() != UserId(0));
        for bytes in &batch.encoded {
            for c in clients.iter_mut() {
                c.process_batch_rekey(bytes).unwrap();
            }
        }
        assert_eq!(clients[0].last_interval(), 2);
        let before = clients[0].keyset();
        // Replaying the seed interval (1 < 2) must be refused untouched.
        let err = clients[0].process_batch_rekey(&seed_encoded[0]).unwrap_err();
        assert_eq!(err, ClientError::StaleInterval { packet: 1, current: 2 });
        assert_eq!(clients[0].keyset(), before);
        // Re-delivery of the *current* interval is an idempotent no-op.
        let s = clients[0].process_batch_rekey(&batch.encoded[0]).unwrap();
        assert_eq!(s.keys_installed, 0);
    }

    #[test]
    fn corrupt_batch_packet_rejected_atomically() {
        let (mut server, mut clients, _) =
            build_batched(Strategy::GroupOriented, AuthPolicy::None, 9);
        server.enqueue_leave(UserId(4)).unwrap();
        let batch = server.flush(10).unwrap().unwrap();
        clients.retain(|c| c.user() != UserId(4));
        // Corrupt a bundle some survivor can open directly (bundles under
        // other *new* keys would just be skipped) so its ciphertext is no
        // longer a whole number of cipher blocks: decryption fails
        // mid-interval.
        let (mut pkt, _) = kg_wire::BatchRekeyPacket::decode(&batch.encoded[0]).unwrap();
        let (bundle_idx, victim_idx) = pkt
            .message
            .bundles
            .iter()
            .enumerate()
            .find_map(|(bi, b)| {
                clients
                    .iter()
                    .position(|c| c.keyset().iter().any(|(r, _)| *r == b.encrypted_with))
                    .map(|ci| (bi, ci))
            })
            .expect("some survivor holds some encrypting key");
        pkt.message.bundles[bundle_idx].ciphertext.push(0xEE);
        let bad = pkt.encode();
        let victim = &mut clients[victim_idx];
        let before_keys = victim.keyset();
        let before_stats = victim.stats();
        let err = victim.process_batch_rekey(&bad).unwrap_err();
        assert!(matches!(err, ClientError::DecryptFailed(_)));
        // All-or-nothing: nothing was committed, counters unchanged.
        assert_eq!(victim.keyset(), before_keys);
        assert_eq!(victim.stats(), before_stats);
        assert_eq!(victim.last_interval(), 1);
        // The intact packet still applies cleanly afterwards.
        victim.process_batch_rekey(&batch.encoded[0]).unwrap();
        assert_eq!(victim.last_interval(), 2);
    }

    /// A client holding only its individual key (leaf label 5), as after
    /// `install_grant` but before any rekey traffic.
    fn derived_fixture() -> (Client, SymmetricKey) {
        let ik = SymmetricKey::from_bytes(&[0x11; 8]);
        let mut c = Client::new(UserId(1), KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        c.install_grant(ik.clone(), KeyLabel(5), &[KeyLabel(0), KeyLabel(5)]);
        (c, ik)
    }

    fn derived_packet(
        interval: u64,
        code: &[u8],
        changed: Vec<kg_core::derive::DerivedLink>,
        messages: Vec<kg_core::rekey::RekeyMessage>,
    ) -> Vec<u8> {
        kg_wire::DerivedRekeyPacket {
            seq: interval,
            interval,
            op: kg_wire::OpKind::Join,
            timestamp_ms: 0,
            code: code.to_vec(),
            changed,
            messages,
            auth: AuthTag::None,
        }
        .encode()
    }

    #[test]
    fn derived_links_recompute_exactly_the_kdf() {
        let (mut c, ik) = derived_fixture();
        let code = [0xC0u8; 16];
        // Root v1 derives from our leaf key (the split case: a different
        // label); a link from a key we lack is silently skipped.
        let links = vec![
            kg_core::derive::DerivedLink {
                new_ref: KeyRef::new(KeyLabel(0), KeyVersion(1)),
                from: KeyRef::new(KeyLabel(5), KeyVersion(0)),
            },
            kg_core::derive::DerivedLink {
                new_ref: KeyRef::new(KeyLabel(9), KeyVersion(3)),
                from: KeyRef::new(KeyLabel(9), KeyVersion(2)),
            },
        ];
        let s = c.apply_derived(&derived_packet(1, &code, links, vec![])).unwrap();
        assert_eq!(s.keys_installed, 1);
        let want = kg_core::derive::derive_key(&ik, &code, KeyLabel(0), KeyVersion(1), 8);
        let (gk_ref, gk) = c.group_key().expect("derived the group key");
        assert_eq!(gk_ref, KeyRef::new(KeyLabel(0), KeyVersion(1)));
        assert_eq!(gk, want);
        assert_eq!(c.last_interval(), 1);
    }

    #[test]
    fn derived_links_require_exact_from_version() {
        let (mut c, _) = derived_fixture();
        // Wrong version of a held label: no derivation, but the interval
        // still commits (the client is simply not a holder of that key).
        let links = vec![kg_core::derive::DerivedLink {
            new_ref: KeyRef::new(KeyLabel(0), KeyVersion(2)),
            from: KeyRef::new(KeyLabel(5), KeyVersion(7)),
        }];
        let s = c.apply_derived(&derived_packet(1, &[0xC0; 16], links, vec![])).unwrap();
        assert_eq!(s.keys_installed, 0);
        assert!(c.group_key().is_none());
        assert_eq!(c.last_interval(), 1);
    }

    #[test]
    fn derived_stale_interval_rejected_and_equal_is_idempotent() {
        let (mut c, _) = derived_fixture();
        let link = |v: u64| {
            vec![kg_core::derive::DerivedLink {
                new_ref: KeyRef::new(KeyLabel(0), KeyVersion(v)),
                from: KeyRef::new(KeyLabel(5), KeyVersion(0)),
            }]
        };
        c.apply_derived(&derived_packet(3, &[1; 16], link(1), vec![])).unwrap();
        let before = c.keyset();
        let err = c.apply_derived(&derived_packet(2, &[2; 16], link(2), vec![])).unwrap_err();
        assert_eq!(err, ClientError::StaleInterval { packet: 2, current: 3 });
        assert_eq!(c.keyset(), before);
        // Redelivery of the same interval: accepted, nothing newer to do.
        let s = c.apply_derived(&derived_packet(3, &[1; 16], link(1), vec![])).unwrap();
        assert_eq!(s.keys_installed, 0);
        assert_eq!(c.keyset(), before);
    }

    #[test]
    fn derived_apply_is_atomic_on_bad_bundle() {
        let (mut c, _) = derived_fixture();
        let links = vec![kg_core::derive::DerivedLink {
            new_ref: KeyRef::new(KeyLabel(0), KeyVersion(1)),
            from: KeyRef::new(KeyLabel(5), KeyVersion(0)),
        }];
        // A bundle under our individual key whose ciphertext is not a
        // whole number of blocks: decryption fails mid-apply.
        let bad = kg_core::rekey::RekeyMessage {
            recipients: kg_core::rekey::Recipients::User(UserId(1)),
            bundles: vec![kg_core::rekey::KeyBundle {
                targets: vec![KeyRef::new(KeyLabel(2), KeyVersion(1))],
                encrypted_with: KeyRef::new(KeyLabel(5), KeyVersion(0)),
                iv: vec![0; 8],
                ciphertext: vec![0xEE; 9],
            }],
        };
        let before = c.keyset();
        let err = c.apply_derived(&derived_packet(1, &[7; 16], links, vec![bad])).unwrap_err();
        assert!(matches!(err, ClientError::DecryptFailed(_)));
        // All-or-nothing: the derivation above was rolled back with it.
        assert_eq!(c.keyset(), before);
        assert_eq!(c.last_interval(), 0);
    }

    #[test]
    fn derived_shipped_bundle_decrypts_under_derived_key() {
        let (mut c, ik) = derived_fixture();
        let code = [0x5Au8; 16];
        let cipher = KeyCipher::des_cbc();
        // The packet both derives root v1 and ships a bundle *under* root
        // v1 — the fixed point must see the staged derived key.
        let root1 = kg_core::derive::derive_key(&ik, &code, KeyLabel(0), KeyVersion(1), 8);
        let payload = SymmetricKey::from_bytes(&[0x77; 8]);
        let iv = vec![3u8; 8];
        let ct = cipher.encrypt(&root1, &iv, payload.material());
        let msg = kg_core::rekey::RekeyMessage {
            recipients: kg_core::rekey::Recipients::Group,
            bundles: vec![kg_core::rekey::KeyBundle {
                targets: vec![KeyRef::new(KeyLabel(3), KeyVersion(1))],
                encrypted_with: KeyRef::new(KeyLabel(0), KeyVersion(1)),
                iv,
                ciphertext: ct,
            }],
        };
        let links = vec![kg_core::derive::DerivedLink {
            new_ref: KeyRef::new(KeyLabel(0), KeyVersion(1)),
            from: KeyRef::new(KeyLabel(5), KeyVersion(0)),
        }];
        let s = c.apply_derived(&derived_packet(1, &code, links, vec![msg])).unwrap();
        assert_eq!(s.keys_installed, 2);
        assert_eq!(s.bundles_decrypted, 1);
        let keyset = c.keyset();
        assert!(keyset
            .iter()
            .any(|(r, k)| { *r == KeyRef::new(KeyLabel(3), KeyVersion(1)) && *k == payload }));
    }

    #[test]
    fn process_packet_dispatches_on_magic() {
        let (mut c, _) = derived_fixture();
        // Derived magic routes to apply_derived (interval commits).
        c.process_packet(&derived_packet(4, &[1; 16], vec![], vec![])).unwrap();
        assert_eq!(c.last_interval(), 4);
        // Garbage still surfaces as a wire error through the dispatcher.
        assert!(matches!(c.process_packet(&[0xB5, 1, 2]), Err(ClientError::Wire(_))));
        assert!(matches!(c.process_packet(&[1, 2, 3]), Err(ClientError::Wire(_))));
    }

    #[test]
    fn batch_auth_is_verified() {
        let (mut server, mut clients, _) =
            build_batched(Strategy::GroupOriented, AuthPolicy::SignBatch, 8);
        server.enqueue_leave(UserId(2)).unwrap();
        let batch = server.flush(10).unwrap().unwrap();
        clients.retain(|c| c.user() != UserId(2));
        for bytes in &batch.encoded {
            for c in clients.iter_mut() {
                c.process_batch_rekey(bytes).unwrap();
            }
        }
        assert_eq!(clients[0].group_key().unwrap().1, server.tree().group_key().1);
        // Tampering with the body breaks the Merkle-signed tag.
        let mut bad = batch.encoded[0].clone();
        bad[12] ^= 1;
        assert_eq!(clients[0].process_batch_rekey(&bad).unwrap_err(), ClientError::AuthFailed);
    }
}
