//! Figure 11 in microbenchmark form: server work per join+leave pair as a
//! function of the key tree degree. The paper: "the optimal key tree
//! degree is around four" — the d=4 row should be the minimum (modulo
//! noise between 3 and 6; d=2 and d=16 should be clearly worse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn bench_degree(c: &mut Criterion) {
    let n = 1024u64;
    let mut g = c.benchmark_group("degree/join+leave");
    g.sample_size(20);
    for degree in [2usize, 4, 8, 16] {
        let config = ServerConfig::builder()
            .degree(degree)
            .strategy(Strategy::GroupOriented)
            .auth(AuthPolicy::None)
            .build()
            .unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..n {
            server.handle_join(UserId(i)).unwrap();
        }
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_degree);
criterion_main!(benches);
