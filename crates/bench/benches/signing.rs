//! Table 4 in microbenchmark form: per-message signing vs the Section 4
//! batch (Merkle) technique vs no signing, for a join+leave pair on a
//! populated server using key-oriented rekeying (the strategy with many
//! messages per request, where the technique matters most).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn server_with(auth: AuthPolicy, n: u64) -> GroupKeyServer {
    let config =
        ServerConfig::builder().auth(auth).strategy(Strategy::KeyOriented).build().unwrap();
    let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
    for i in 0..n {
        s.handle_join(UserId(i)).unwrap();
    }
    s
}

fn bench_signing(c: &mut Criterion) {
    let n = 1024;
    let mut g = c.benchmark_group("signing/join+leave");
    g.sample_size(20);
    for (auth, name) in [
        (AuthPolicy::None, "none"),
        (AuthPolicy::SignEach, "per-message"),
        (AuthPolicy::SignBatch, "batch-merkle"),
    ] {
        let mut server = server_with(auth, n);
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_signing);
criterion_main!(benches);
