//! Server-side strategy comparison (the left bars of Figure 11): for the
//! same tree and workload, group-oriented should be cheapest on the
//! server, key-oriented second, user-oriented most expensive — the
//! encryption-count ordering h(h+1)/2−1 > 2(h−1) materializing as time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn bench_strategies(c: &mut Criterion) {
    let n = 1024u64;
    let mut g = c.benchmark_group("strategy/join+leave");
    g.sample_size(20);
    for strategy in Strategy::ALL {
        let config =
            ServerConfig::builder().strategy(strategy).auth(AuthPolicy::None).build().unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..n {
            server.handle_join(UserId(i)).unwrap();
        }
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(strategy.name()), &(), |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
