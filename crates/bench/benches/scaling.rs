//! Figure 10 in microbenchmark form: server work per join+leave pair as a
//! function of group size. The paper's claim — and this bench's expected
//! shape — is growth linear in log n, i.e. tiny absolute increases per 8×
//! group-size step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/join+leave");
    g.sample_size(20);
    for n in [64u64, 512, 4096] {
        let config = ServerConfig::builder()
            .strategy(Strategy::GroupOriented)
            .auth(AuthPolicy::None)
            .build()
            .unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..n {
            server.handle_join(UserId(i)).unwrap();
        }
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
