//! Microbenchmarks for the cryptographic substrate.
//!
//! These establish the cost hierarchy the paper's design leans on: "a
//! digital signature operation is around two orders of magnitude slower
//! than a key encryption using DES" (§4). The Table 4 / Figure 10/11
//! signing results only make sense against these numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kg_crypto::cbc::CbcCipher;
use kg_crypto::des::{Des, TripleDes};
use kg_crypto::hmac::hmac;
use kg_crypto::md5::Md5;
use kg_crypto::rsa::{HashAlg, RsaKeyPair};
use kg_crypto::sha1::Sha1;
use kg_crypto::sha256::Sha256;
use kg_crypto::Digest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_des(c: &mut Criterion) {
    let des = Des::new(&[0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1]).unwrap();
    c.bench_function("des/block", |b| b.iter(|| des.encrypt_u64(black_box(0x0123_4567_89AB_CDEF))));

    let cbc = CbcCipher::new(des.clone());
    let key8 = [0u8; 8];
    c.bench_function("des-cbc/encrypt-one-key(8B)", |b| {
        b.iter(|| cbc.encrypt(black_box(&key8), &[0u8; 8]))
    });
    let payload64 = [0u8; 64];
    c.bench_function("des-cbc/encrypt-64B", |b| {
        b.iter(|| cbc.encrypt(black_box(&payload64), &[0u8; 8]))
    });

    let tdes = CbcCipher::new(TripleDes::new(&(0u8..24).collect::<Vec<_>>()).unwrap());
    c.bench_function("3des-cbc/encrypt-one-key(24B)", |b| {
        b.iter(|| tdes.encrypt(black_box(&[0u8; 24]), &[0u8; 8]))
    });
}

fn bench_digests(c: &mut Criterion) {
    let m512 = vec![0xA5u8; 512];
    c.bench_function("md5/512B", |b| b.iter(|| Md5::digest(black_box(&m512))));
    c.bench_function("sha1/512B", |b| b.iter(|| Sha1::digest(black_box(&m512))));
    c.bench_function("sha256/512B", |b| b.iter(|| Sha256::digest(black_box(&m512))));
    c.bench_function("hmac-md5/512B", |b| b.iter(|| hmac::<Md5>(b"key", black_box(&m512))));
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = RsaKeyPair::generate(512, &mut rng).unwrap();
    let msg = vec![0x42u8; 300];
    let sig = kp.private.sign(HashAlg::Md5, &msg).unwrap();
    let mut g = c.benchmark_group("rsa512");
    g.sample_size(40);
    g.bench_function("sign", |b| b.iter(|| kp.private.sign(HashAlg::Md5, black_box(&msg))));
    g.bench_function("verify", |b| {
        b.iter(|| kp.public().verify(HashAlg::Md5, black_box(&msg), &sig))
    });
    g.finish();

    // The paper's claim: sign ≈ 100× a DES key encryption. Print-friendly
    // comparison comes out of the two groups above.
}

criterion_group!(benches, bench_des, bench_digests, bench_rsa);
criterion_main!(benches);
