//! Client-side processing cost per rekey message (the Table 6 trade-off):
//! group-oriented is best for the server but hands every client the
//! biggest message; user-oriented gives clients the smallest message.
//! This bench measures a client's `process_rekey` on the message it would
//! actually receive under each strategy, with and without signature
//! verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_client::{Client, VerifyPolicy};
use kg_core::ids::UserId;
use kg_core::rekey::{Recipients, Strategy};
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

/// Build a server + one synchronized client, and produce the leave packet
/// that client would receive.
fn setup(strategy: Strategy, auth: AuthPolicy) -> (Client, Vec<u8>) {
    let config = ServerConfig::builder().strategy(strategy).auth(auth).build().unwrap();
    let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
    let observer = UserId(0);
    let mut client = None;
    for i in 0..256u64 {
        let op = server.handle_join(UserId(i)).unwrap();
        if i == 0 {
            let g = op.join_grant.clone().unwrap();
            let verify = match server.public_key() {
                Some(pk) => {
                    VerifyPolicy::RequireSignature { alg: server.config().digest, key: pk.clone() }
                }
                None => VerifyPolicy::Opportunistic,
            };
            let mut c = Client::new(observer, server.config().cipher, verify);
            c.install_grant(g.individual_key, g.leaf_label, &g.path_labels);
            client = Some(c);
        }
        if let Some(c) = client.as_mut() {
            for bytes in &op.encoded {
                let _ = c.process_rekey(bytes);
            }
        }
    }
    let mut client = client.expect("observer admitted first");
    // A leave elsewhere in the tree; pick the packet addressed to the
    // observer's class.
    let op = server.handle_leave(UserId(200)).unwrap();
    let mut the_packet = None;
    for (p, bytes) in op.packets.iter().zip(&op.encoded) {
        let mine = match &p.message.recipients {
            Recipients::Group => true,
            Recipients::User(u) => *u == observer,
            Recipients::Subgroup(l) => server.tree().userset(*l).contains(&observer),
            Recipients::SubgroupExcept { include, exclude } => {
                server.tree().userset_except(*include, *exclude).contains(&observer)
            }
        };
        if mine {
            the_packet = Some(bytes.clone());
            break;
        }
    }
    let packet = the_packet.expect("observer receives one message per request");
    // Warm the client past this packet? No — benchmark re-processing the
    // same packet; installs become no-ops after the first run but decode,
    // verification, and decryption still execute, which is what we time.
    let _ = client.process_rekey(&packet);
    (client, packet)
}

fn bench_client(c: &mut Criterion) {
    let mut g = c.benchmark_group("client/process-leave-rekey");
    for strategy in Strategy::ALL {
        let (mut client, packet) = setup(strategy, AuthPolicy::None);
        g.bench_with_input(BenchmarkId::new("enc-only", strategy.name()), &(), |b, _| {
            b.iter(|| client.process_rekey(&packet).unwrap())
        });
        let (mut client, packet) = setup(strategy, AuthPolicy::SignBatch);
        g.bench_with_input(BenchmarkId::new("batch-signed", strategy.name()), &(), |b, _| {
            b.iter(|| client.process_rekey(&packet).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_client);
criterion_main!(benches);
