//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * **Merkle batch size** — how the one-signature amortization scales
//!   with the number of rekey messages per operation (Section 4).
//! * **Cipher choice** — DES vs 3DES on the whole join+leave path.
//! * **Digest choice** — MD5 vs SHA-1 vs SHA-256 under batch signing.
//! * **Key-cover solvers** — greedy vs exact on general key graphs
//!   (the NP-hard Section 2 problem that trees sidestep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_core::ids::{KeyLabel, UserId};
use kg_core::keygraph::KeyGraph;
use kg_core::merkle::sign_batch;
use kg_core::rekey::{KeyCipher, Strategy};
use kg_crypto::rsa::{HashAlg, RsaKeyPair};
use kg_server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_merkle_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let kp = RsaKeyPair::generate(512, &mut rng).unwrap();
    let mut g = c.benchmark_group("ablation/merkle-batch-size");
    g.sample_size(20);
    for m in [1usize, 4, 16, 64] {
        let owned: Vec<Vec<u8>> = (0..m).map(|i| vec![i as u8; 300]).collect();
        let msgs: Vec<&[u8]> = owned.iter().map(|v| v.as_slice()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sign_batch(&kp.private, HashAlg::Md5, &msgs).unwrap())
        });
    }
    g.finish();
}

fn bench_cipher_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/cipher");
    g.sample_size(20);
    for (cipher, name) in [(KeyCipher::DesCbc, "des-cbc"), (KeyCipher::TripleDesCbc, "3des-cbc")] {
        let config = ServerConfig::builder()
            .cipher(cipher)
            .strategy(Strategy::GroupOriented)
            .auth(AuthPolicy::None)
            .build()
            .unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..512u64 {
            server.handle_join(UserId(i)).unwrap();
        }
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_digest_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/digest-under-batch-signing");
    g.sample_size(20);
    for (digest, name) in
        [(HashAlg::Md5, "md5"), (HashAlg::Sha1, "sha1"), (HashAlg::Sha256, "sha256")]
    {
        let config = ServerConfig::builder()
            .digest(digest)
            .strategy(Strategy::KeyOriented)
            .auth(AuthPolicy::SignBatch)
            .build()
            .unwrap();
        let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..512u64 {
            server.handle_join(UserId(i)).unwrap();
        }
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                server.handle_join(u).unwrap();
                server.handle_leave(u).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_key_cover(c: &mut Criterion) {
    // A 3-level, 3-ary key "tree" expressed as a general graph: 27 users.
    let mut graph = KeyGraph::new();
    for u in 0..27u64 {
        graph.add_user_edge(UserId(u), KeyLabel(u));
        let mid = 100 + u / 3;
        let top = 200 + u / 9;
        graph.add_user_edge(UserId(u), KeyLabel(mid));
        graph.add_key_edge(KeyLabel(mid), KeyLabel(top));
        graph.add_key_edge(KeyLabel(top), KeyLabel(300));
    }
    let target: std::collections::BTreeSet<UserId> = (1..27).map(UserId).collect();
    let mut g = c.benchmark_group("ablation/key-cover");
    g.sample_size(20);
    g.bench_function("greedy", |b| b.iter(|| graph.key_cover_greedy(&target).unwrap()));
    g.bench_function("exact", |b| b.iter(|| graph.key_cover_exact(&target).unwrap()));
    g.finish();
}

fn bench_join_policy(c: &mut Criterion) {
    use kg_core::rekey::Rekeyer;
    use kg_core::tree::{JoinPolicy, KeyTree};
    use kg_crypto::drbg::HmacDrbg;
    use kg_crypto::KeySource;

    let mut g = c.benchmark_group("ablation/join-policy");
    g.sample_size(20);
    for (policy, name) in [(JoinPolicy::Balanced, "balanced"), (JoinPolicy::FirstFit, "first-fit")]
    {
        let mut src = HmacDrbg::from_seed(11);
        let mut tree = KeyTree::with_policy(4, 8, policy, &mut src);
        for i in 0..1024u64 {
            let ik = src.generate_key(8);
            tree.join(UserId(i), ik, &mut src).unwrap();
        }
        let mut ivs = HmacDrbg::from_seed(12);
        let mut next = 1_000_000u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let u = UserId(next);
                next += 1;
                let ik = src.generate_key(8);
                let jev = tree.join(u, ik, &mut src).unwrap();
                let lev = tree.leave(u, &mut src).unwrap();
                let mut rk = Rekeyer::new(KeyCipher::DesCbc, &mut ivs);
                let a = rk.join(&jev, Strategy::GroupOriented);
                let b2 = rk.leave(&lev, Strategy::GroupOriented);
                (a.ops.key_encryptions, b2.ops.key_encryptions)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_merkle_batch,
    bench_cipher_choice,
    bench_digest_choice,
    bench_key_cover,
    bench_join_policy
);
criterion_main!(benches);
