//! Telemetry-plane benchmark: the cluster-wide rekey-cost ledger and
//! the price of distributed tracing.
//!
//! Three measurements, all on the deterministic in-process cluster:
//!
//! 1. **Ledger table** — drive every strategy through a sharded
//!    deployment (immediate joins/leaves/refreshes, plus a batched run
//!    for the interval path) and aggregate the per-shard
//!    `kg_ledger_*_total{op="strategy:kind"}` counters into one
//!    cluster-wide cost table: encryptions, rekey messages, bytes, and
//!    key-tree nodes touched per operation — the paper's Tables 4/5
//!    cost shape, measured from live counters instead of stats records.
//! 2. **Trace plane** — with tracing and telemetry on, count how many
//!    cross-process traces the router's store reassembles fully
//!    stitched, and split one sample into its router-observed window
//!    (ingress hop 0 + fan-out hop 2, one clock) and node-internal
//!    window (hop 1).
//! 3. **Overhead** — the same workload with the trace/telemetry plane
//!    on vs off, interleaved repeats, median wall-clock. Target < 5%.

use kg_cluster::{aggregate_counter_values, ShardMap, SimCluster};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_net::NetConfig;
use kg_server::{AccessControl, ServerConfig};
use kg_wire::GroupId;
use std::collections::BTreeMap;
use std::time::Instant;

/// Knobs for [`run_trace_plane`].
#[derive(Debug, Clone)]
pub struct TraceBenchConfig {
    /// Shard count of every measured deployment.
    pub shards: u16,
    /// Members admitted per strategy run.
    pub members: u64,
    /// Leaves (with replacement joins) driven after the build.
    pub churn: u64,
    /// Interleaved repeats for the overhead medians.
    pub reps: usize,
    /// Base DRBG seed.
    pub seed: u64,
    /// Node → router telemetry push cadence.
    pub telemetry_interval_ms: u64,
}

/// One aggregated ledger row: cluster-wide totals for one
/// `strategy:kind` label.
#[derive(Debug, Clone, Default)]
pub struct LedgerRow {
    /// The `op` label (`"key:leave"`, `"group:batch"`, ...).
    pub op: String,
    /// Operations completed.
    pub ops: u64,
    /// Key encryptions performed.
    pub encryptions: u64,
    /// Rekey packets emitted.
    pub messages: u64,
    /// Encoded rekey bytes on the wire.
    pub bytes: u64,
    /// Key-tree nodes whose keys changed (fresh keys generated).
    pub nodes_touched: u64,
    /// Encryption-cache hits (stored-ciphertext reuse, Figures 6/8).
    pub cache_hits: u64,
}

impl LedgerRow {
    /// Per-operation average of `v`.
    pub fn per_op(&self, v: u64) -> f64 {
        v as f64 / (self.ops.max(1)) as f64
    }
}

/// One reassembled cross-process trace, summarized.
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Trace identity.
    pub trace_id: u64,
    /// Span records reassembled.
    pub spans: usize,
    /// Distinct process hops covered.
    pub hops: usize,
    /// End-to-end window on the router's clock (hops 0 and 2).
    pub router_window_us: u64,
    /// Node-internal processing window (hop 1).
    pub node_window_us: u64,
    /// The rendered span tree.
    pub rendered: String,
}

/// Everything [`run_trace_plane`] measures.
#[derive(Debug, Clone)]
pub struct TraceBenchResult {
    /// The configuration measured.
    pub config: TraceBenchConfig,
    /// Aggregated ledger rows, sorted by `op` label.
    pub rows: Vec<LedgerRow>,
    /// Traces retained by the router's store after the traced run.
    pub traces_stored: usize,
    /// How many of those reassemble fully stitched.
    pub traces_stitched: usize,
    /// The latest stitched trace, summarized.
    pub sample: Option<TraceSample>,
    /// Median wall-clock ms with the trace/telemetry plane off.
    pub baseline_ms: f64,
    /// Median wall-clock ms with the plane on.
    pub traced_ms: f64,
    /// `(traced - baseline) / baseline`, percent.
    pub overhead_pct: f64,
}

const INTERVAL_MS: u64 = 100;

fn net(seed: u64) -> NetConfig {
    NetConfig {
        latency_min_us: 100,
        latency_max_us: 100,
        loss_probability: 0.0,
        duplicate_probability: 0.0,
        seed,
    }
}

fn template(seed: u64, strategy: Strategy, batched: bool) -> ServerConfig {
    let builder = ServerConfig::builder().seed(seed).strategy(strategy);
    let builder =
        if batched { builder.batched(INTERVAL_MS, usize::MAX) } else { builder.immediate() };
    builder.build().expect("valid trace config")
}

/// Drive the measured schedule: admit `members`, churn `churn`
/// leave/join pairs, sprinkle refreshes, tick the clock forward so
/// batched intervals flush and telemetry pushes go out.
fn drive(cluster: &mut SimCluster, group: GroupId, members: u64, churn: u64) {
    let mut now_ms = 0u64;
    for u in 1..=members {
        cluster.join(group, UserId(u));
    }
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    for u in 1..=churn {
        cluster.leave(group, UserId(u));
        cluster.join(group, UserId(members + u));
    }
    cluster.refresh(group);
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    cluster.take_events();
}

/// Pull every `kg_ledger_*` counter out of an aggregated snapshot into
/// per-`op` rows.
fn ledger_rows(aggregated: &[(String, u64)], into: &mut BTreeMap<String, LedgerRow>) {
    for (name, v) in aggregated {
        let Some(rest) = name.strip_prefix("kg_ledger_") else { continue };
        let Some((field, label)) = rest.split_once("_total{op=\"") else { continue };
        let Some(op) = label.strip_suffix("\"}") else { continue };
        let row = into
            .entry(op.to_string())
            .or_insert_with(|| LedgerRow { op: op.to_string(), ..LedgerRow::default() });
        match field {
            "ops" => row.ops += v,
            "encryptions" => row.encryptions += v,
            "messages" => row.messages += v,
            "bytes" => row.bytes += v,
            "nodes_touched" => row.nodes_touched += v,
            "cache_hits" => row.cache_hits += v,
            _ => {}
        }
    }
}

/// Build one cluster, run the schedule, and fold its aggregated
/// counters into `rows`. Returns the cluster for further inspection.
fn measured_run(
    config: &TraceBenchConfig,
    strategy: Strategy,
    batched: bool,
    traced: bool,
    rows: Option<&mut BTreeMap<String, LedgerRow>>,
) -> (SimCluster, f64) {
    let group = GroupId(1);
    let map = ShardMap::new(config.shards).with_span(group, config.shards);
    let mut cluster = SimCluster::new(
        map,
        template(config.seed, strategy, batched),
        AccessControl::AllowAll,
        net(config.seed),
        None,
    );
    cluster.use_shared_client_endpoint();
    if traced {
        cluster.enable_telemetry(config.telemetry_interval_ms);
    } else {
        cluster.router.set_tracing(false);
    }
    let start = Instant::now();
    drive(&mut cluster, group, config.members, config.churn);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(rows) = rows {
        let snapshots: Vec<Vec<(String, u64)>> =
            cluster.nodes.iter().map(|n| n.obs().counter_values()).collect();
        ledger_rows(&aggregate_counter_values(snapshots.iter()), rows);
    }
    (cluster, elapsed_ms)
}

/// Run the full telemetry-plane benchmark. See the module docs for the
/// three measurements.
pub fn run_trace_plane(config: &TraceBenchConfig) -> TraceBenchResult {
    // 1. Ledger table: every strategy, immediate (join/leave/refresh
    //    rows) and batched (the interval path's `batch` rows).
    let mut rows: BTreeMap<String, LedgerRow> = BTreeMap::new();
    for strategy in Strategy::ALL {
        measured_run(config, strategy, false, true, Some(&mut rows));
        measured_run(config, strategy, true, true, Some(&mut rows));
    }

    // 2. Trace plane: one more traced run kept alive to interrogate the
    //    router's store (a trace request forces a final harvest of the
    //    router's own spans).
    let (mut cluster, _) = measured_run(config, Strategy::GroupOriented, false, true, None);
    cluster.request_trace(0);
    cluster.settle();
    let store = cluster.router.merger().traces();
    let traces_stored = store.len();
    let traces_stitched = store
        .trace_ids()
        .iter()
        .filter_map(|id| store.get(*id))
        .filter(|t| t.is_stitched())
        .count();
    let sample = store.latest_stitched().map(|t| TraceSample {
        trace_id: t.trace_id,
        spans: t.spans.len(),
        hops: t.hops().len(),
        router_window_us: t.window_us(&[0, 2]),
        node_window_us: t.window_us(&[1]),
        rendered: t.render(),
    });

    // 3. Overhead: interleaved on/off repeats, median of each. The
    //    interleaving spreads scheduler noise over both modes.
    let mut baseline = Vec::new();
    let mut traced = Vec::new();
    for _ in 0..config.reps.max(1) {
        baseline.push(measured_run(config, Strategy::GroupOriented, false, false, None).1);
        traced.push(measured_run(config, Strategy::GroupOriented, false, true, None).1);
    }
    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let baseline_ms = median(&mut baseline);
    let traced_ms = median(&mut traced);
    let overhead_pct = (traced_ms - baseline_ms) / baseline_ms.max(1e-9) * 100.0;

    TraceBenchResult {
        config: config.clone(),
        rows: rows.into_values().collect(),
        traces_stored,
        traces_stitched,
        sample,
        baseline_ms,
        traced_ms,
        overhead_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_rows_cover_every_strategy_and_traces_stitch() {
        let config = TraceBenchConfig {
            shards: 2,
            members: 24,
            churn: 4,
            reps: 1,
            seed: 11,
            telemetry_interval_ms: 50,
        };
        let r = run_trace_plane(&config);
        for strategy in ["user", "key", "group"] {
            for kind in ["join", "leave", "refresh", "batch"] {
                let op = format!("{strategy}:{kind}");
                let row = r.rows.iter().find(|row| row.op == op);
                assert!(row.is_some_and(|row| row.ops > 0), "ledger row {op} populated");
            }
        }
        let leave = r.rows.iter().find(|row| row.op == "key:leave").expect("key:leave row");
        assert!(leave.encryptions > 0 && leave.messages > 0 && leave.bytes > 0);
        assert!(r.traces_stored > 0, "router stored traces");
        assert!(r.traces_stitched > 0, "at least one cross-process trace stitched");
        let sample = r.sample.expect("a stitched sample");
        assert!(sample.hops >= 2 && sample.router_window_us > 0);
        assert!(r.baseline_ms > 0.0 && r.traced_ms > 0.0);
    }
}
