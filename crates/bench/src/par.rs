//! `report par` — parallel rekey-construction speedup and encryption
//! cache hit rates.
//!
//! Methodology: build an n-user tree, apply one batched interval of
//! mixed joins/leaves (the workload whose fan-out the pipeline targets),
//! then repeatedly *construct* the interval's rekey messages — the
//! encryption-dominated phase `kg-par` parallelizes — at each worker
//! count, timing construction only. Every rep draws its IVs from a
//! fresh DRBG at the same seed, so all runs perform the identical
//! byte-level work; the workers=1 output is the reference and every
//! other worker count's output is asserted byte-identical against it
//! (the tentpole invariant, enforced here in the benchmark itself, not
//! just in tests). Throughput is requests per second of construction
//! time; speedup is relative to workers=1.

use kg_core::batch::BatchEvent;
use kg_core::ids::UserId;
use kg_core::rekey::{KeyCipher, OpCounts, Strategy};
use kg_core::tree::KeyTree;
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::KeySource;
use kg_par::{EncryptJob, ParRekeyer, PlanSink, WorkerPool};
use std::time::Instant;

/// Configuration for one speedup curve.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Group size before the measured interval.
    pub n: usize,
    /// Key tree degree.
    pub degree: usize,
    /// Requests folded into the measured interval (half leaves, half
    /// joins).
    pub requests: usize,
    /// Worker counts to sweep; must start with 1 (the baseline).
    pub worker_counts: Vec<usize>,
    /// Construction repetitions per worker count (timed together).
    pub reps: usize,
    /// Workload seed.
    pub seed: u64,
}

/// One point on the speedup curve.
#[derive(Debug, Clone)]
pub struct ParPoint {
    /// Total worker threads (1 = sequential path, no pool).
    pub workers: usize,
    /// Total construction time for all reps, milliseconds.
    pub elapsed_ms: f64,
    /// Interval requests constructed per second.
    pub throughput: f64,
    /// Throughput relative to workers = 1.
    pub speedup: f64,
}

/// Cache behaviour of one strategy over the measured interval.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Bundle requests served from the cache (no encryption).
    pub hits: u64,
    /// Distinct ciphertexts sealed.
    pub misses: u64,
    /// Keys encrypted (the paper's cost unit).
    pub key_encryptions: u64,
}

impl CacheRow {
    /// hits / (hits + misses), in percent.
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// Result of [`run_par_speedup`].
#[derive(Debug, Clone)]
pub struct ParResult {
    /// The configuration measured.
    pub config: ParConfig,
    /// Key encryptions one construction of the interval performs
    /// (group-oriented, the timed strategy).
    pub encryptions_per_interval: u64,
    /// Hardware threads available on this host
    /// (`std::thread::available_parallelism`). Worker counts beyond
    /// this time-slice the same cores: the curve is hardware-capped
    /// there, not pipeline-capped.
    pub hardware_threads: usize,
    /// Milliseconds per interval spent in the sequential plan phase
    /// (cache lookups, IV draws, message assembly) — the Amdahl floor
    /// no worker count can remove.
    pub plan_ms: f64,
    /// Milliseconds per interval spent executing the planned
    /// encryptions sequentially — the work the pool divides.
    pub encrypt_ms: f64,
    /// Speedup curve, in `worker_counts` order.
    pub points: Vec<ParPoint>,
    /// Cache hit/miss table per strategy (sequential path).
    pub cache: Vec<CacheRow>,
}

impl ParResult {
    /// Fraction of one interval's construction the pool can divide:
    /// `encrypt / (plan + encrypt)`.
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.plan_ms + self.encrypt_ms;
        if total <= 0.0 {
            0.0
        } else {
            self.encrypt_ms / total
        }
    }

    /// Amdahl's-law speedup bound at `workers` given the measured
    /// phase split — what a host with that many free cores could reach.
    pub fn amdahl_bound(&self, workers: usize) -> f64 {
        let p = self.parallel_fraction();
        1.0 / ((1.0 - p) + p / workers.max(1) as f64)
    }
}

/// Build the measured interval: an n-user tree plus one batch event of
/// `requests` mixed joins/leaves.
fn build_interval(config: &ParConfig) -> (BatchEvent, HmacDrbg) {
    let mut src = HmacDrbg::from_seed(config.seed ^ 0x7061_725f_7772_6b21);
    let key_len = KeyCipher::des_cbc().key_len();
    let mut tree = KeyTree::new(config.degree, key_len, &mut src);
    for i in 0..config.n as u64 {
        let ik = src.generate_key(key_len);
        tree.join(UserId(i), ik, &mut src).expect("initial join");
    }
    let leaves: Vec<UserId> = (0..(config.requests / 2) as u64)
        .map(|k| UserId((k * 97) % config.n as u64))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let joins: Vec<(UserId, kg_crypto::SymmetricKey)> = (0..(config.requests / 2) as u64)
        .map(|k| (UserId(1_000_000 + k), src.generate_key(key_len)))
        .collect();
    let ev = tree.apply_batch(&joins, &leaves, &mut src).expect("batch");
    (ev, src)
}

/// Construct the interval's rekey messages once at the given worker
/// count, returning (messages, ops). IVs restart from the same seed
/// every call so outputs are comparable across worker counts.
fn construct(
    ev: &BatchEvent,
    pool: Option<&WorkerPool>,
    strategy: Strategy,
    iv_seed: u64,
) -> (Vec<kg_core::rekey::RekeyMessage>, OpCounts) {
    let mut ivs = HmacDrbg::from_seed(iv_seed);
    let mut rekeyer = ParRekeyer::new(KeyCipher::des_cbc(), &mut ivs, pool);
    let out = rekeyer.batch(ev, strategy);
    (out.messages, out.ops)
}

/// Measure the speedup curve and cache table for `config`.
///
/// # Panics
/// Panics if any worker count produces output differing from the
/// sequential reference — that would be a correctness bug, not a
/// performance result.
pub fn run_par_speedup(config: &ParConfig) -> ParResult {
    assert_eq!(config.worker_counts.first(), Some(&1), "baseline must be workers = 1");
    let (ev, _src) = build_interval(config);
    let iv_seed = config.seed ^ 0x7061_725f_6976_7321;

    let (reference, ref_ops) = construct(&ev, None, Strategy::GroupOriented, iv_seed);

    // Phase split: plan-only and encrypt-only, timed sequentially. The
    // encrypt share is the parallelizable fraction (Amdahl's law); the
    // plan share is the sequential floor.
    let mut jobs: Vec<EncryptJob> = Vec::new();
    let start = Instant::now();
    for _ in 0..config.reps {
        let mut ivs = HmacDrbg::from_seed(iv_seed);
        let mut sink = PlanSink::new(KeyCipher::des_cbc(), &mut ivs);
        let out = kg_batch::build_batch(&mut sink, &ev, Strategy::GroupOriented);
        std::hint::black_box(out);
        jobs = sink.into_jobs();
    }
    let plan_ms = start.elapsed().as_secs_f64() * 1e3 / config.reps as f64;
    let start = Instant::now();
    for _ in 0..config.reps {
        let sealed: Vec<Vec<u8>> = jobs.iter().map(EncryptJob::run).collect();
        std::hint::black_box(sealed);
    }
    let encrypt_ms = start.elapsed().as_secs_f64() * 1e3 / config.reps as f64;

    let mut points = Vec::new();
    let mut baseline_ms = 0.0f64;
    for &workers in &config.worker_counts {
        let pool = (workers >= 2).then(|| WorkerPool::new(workers));
        // Warm-up rep: page in the pool threads, then verify identity.
        let (messages, ops) = construct(&ev, pool.as_ref(), Strategy::GroupOriented, iv_seed);
        assert_eq!(
            messages, reference,
            "workers={workers} produced different rekey messages than the sequential path"
        );
        assert_eq!(ops, ref_ops, "workers={workers} changed the op counts");
        let start = Instant::now();
        for _ in 0..config.reps {
            let (m, _) = construct(&ev, pool.as_ref(), Strategy::GroupOriented, iv_seed);
            std::hint::black_box(m);
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        if workers == 1 {
            baseline_ms = elapsed_ms;
        }
        let throughput = (config.reps * config.requests) as f64 / (elapsed_ms / 1e3).max(1e-9);
        points.push(ParPoint {
            workers,
            elapsed_ms,
            throughput,
            speedup: baseline_ms / elapsed_ms.max(1e-9),
        });
    }

    let cache = [
        ("user", Strategy::UserOriented),
        ("key", Strategy::KeyOriented),
        ("group", Strategy::GroupOriented),
    ]
    .into_iter()
    .map(|(name, strategy)| {
        let (_, ops) = construct(&ev, None, strategy, iv_seed);
        CacheRow {
            strategy: name,
            hits: ops.cache_hits,
            misses: ops.cache_misses,
            key_encryptions: ops.key_encryptions,
        }
    })
    .collect();

    ParResult {
        config: config.clone(),
        encryptions_per_interval: ref_ops.key_encryptions,
        hardware_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        plan_ms,
        encrypt_ms,
        points,
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness itself enforces byte-identity (construct() panics on
    /// divergence); a small run must succeed and produce sane numbers.
    #[test]
    fn small_speedup_run_is_self_consistent() {
        let r = run_par_speedup(&ParConfig {
            n: 128,
            degree: 4,
            requests: 32,
            worker_counts: vec![1, 2],
            reps: 2,
            seed: 7,
        });
        assert_eq!(r.points.len(), 2);
        assert!((r.points[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.points.iter().all(|p| p.throughput > 0.0));
        assert!(r.encryptions_per_interval > 0);
        assert!(r.plan_ms > 0.0 && r.encrypt_ms > 0.0);
        let frac = r.parallel_fraction();
        assert!(frac > 0.0 && frac < 1.0, "parallel fraction out of range: {frac}");
        assert!(r.amdahl_bound(4) > 1.0);
        assert!(r.hardware_threads >= 1);
        let key_row = r.cache.iter().find(|c| c.strategy == "key").unwrap();
        assert!(key_row.hits > 0, "key-oriented batches must reuse chain ciphertexts");
        let group_row = r.cache.iter().find(|c| c.strategy == "group").unwrap();
        assert_eq!(group_row.hits, 0, "group-oriented covers have no repeats");
    }
}
