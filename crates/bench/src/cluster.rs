//! Cluster-scale benchmark: an in-process sharded deployment driven to
//! seven-figure membership.
//!
//! Everything runs on the deterministic [`kg_net::SimNetwork`] — the
//! measurement is the cluster's own work (request routing, per-slice
//! batch rekeying, grant/rekey relay), not socket syscalls. Members share
//! one driver endpoint so the harness does not spend the benchmark
//! allocating a million inboxes; the router's directory and multicast
//! bookkeeping still see every member individually.

use kg_cluster::{aggregate_counter_values, ShardMap, SimCluster};
use kg_core::ids::UserId;
use kg_net::NetConfig;
use kg_server::{AccessControl, ServerConfig};
use kg_wire::GroupId;
use std::time::Instant;

/// Knobs for [`run_cluster_scale`].
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Shard count (the paper's single server is `1`).
    pub shards: u16,
    /// How many shards the benchmark group spans.
    pub span: u16,
    /// Total members to admit.
    pub members: u64,
    /// Joins driven per batch interval.
    pub chunk: u64,
    /// Leave/join pairs of post-build churn.
    pub churn: u64,
    /// Base DRBG seed (per-slice seeds derive from it).
    pub seed: u64,
}

/// Per-shard load figures, from the shard's own obs registry and its
/// admin stats report.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Shard id.
    pub shard: u16,
    /// Members resident in the shard's slices.
    pub members: u64,
    /// Intervals flushed.
    pub intervals: u64,
    /// Control requests processed.
    pub requests: u64,
    /// Key encryptions performed.
    pub encryptions: u64,
    /// Full counter snapshot (rendered name → value).
    pub counters: Vec<(String, u64)>,
}

/// Everything [`run_cluster_scale`] measures.
#[derive(Debug, Clone)]
pub struct ClusterScaleResult {
    /// The configuration measured.
    pub config: ClusterBenchConfig,
    /// Wall-clock seconds building the full membership.
    pub build_secs: f64,
    /// Admissions per wall-clock second during the build.
    pub joins_per_sec: f64,
    /// Wall-clock seconds for the churn phase.
    pub churn_secs: f64,
    /// Members resident at the end (build − churn leaves + churn joins).
    pub total_members: u64,
    /// Router directory size at the end.
    pub directory_len: usize,
    /// Per-shard load, in shard order.
    pub shards: Vec<ShardLoad>,
    /// Per-shard counters summed into one cluster-wide view.
    pub aggregated: Vec<(String, u64)>,
    /// The router's own counters (routed/relayed totals).
    pub router_counters: Vec<(String, u64)>,
    /// Members reported by the aggregated shutdown ack.
    pub shutdown_members: u64,
    /// WAL tail reported by the shutdown ack (0: nothing to replay).
    pub shutdown_wal_tail: u64,
}

const INTERVAL_MS: u64 = 100;

/// Build a spanned group to `members` across `shards` shard nodes, churn
/// it, collect per-shard and aggregated load, and shut the cluster down.
pub fn run_cluster_scale(config: &ClusterBenchConfig) -> ClusterScaleResult {
    let group = GroupId(1);
    let map = ShardMap::new(config.shards).with_span(group, config.span);
    let template = ServerConfig::builder()
        .seed(config.seed)
        .batched(INTERVAL_MS, usize::MAX)
        .build()
        .expect("valid cluster template");
    let net = NetConfig {
        latency_min_us: 100,
        latency_max_us: 100,
        loss_probability: 0.0,
        duplicate_probability: 0.0,
        seed: config.seed,
    };
    let mut cluster = SimCluster::new(map, template, AccessControl::AllowAll, net, None);
    cluster.use_shared_client_endpoint();
    let mut now_ms = 0u64;

    // Build phase: `chunk` joins per interval.
    let start = Instant::now();
    let mut next_user = 1u64;
    while next_user <= config.members {
        let end = (next_user + config.chunk - 1).min(config.members);
        for u in next_user..=end {
            cluster.join(group, UserId(u));
        }
        next_user = end + 1;
        now_ms += INTERVAL_MS;
        cluster.tick(now_ms);
        // Keep the event backlog from becoming the thing measured.
        cluster.take_events();
    }
    let build_secs = start.elapsed().as_secs_f64();

    // Churn phase: leave the first `churn` members, admit replacements.
    let start = Instant::now();
    for u in 1..=config.churn {
        cluster.leave(group, UserId(u));
    }
    for u in 0..config.churn {
        cluster.join(group, UserId(config.members + 1 + u));
    }
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    cluster.take_events();
    let churn_secs = start.elapsed().as_secs_f64();

    // Collect per-shard stats through the admin plane, and raw counters
    // straight from each node's registry.
    cluster.request_stats();
    cluster.settle();
    let reports = cluster.take_admin_replies();
    let mut shards = Vec::new();
    for node in &cluster.nodes {
        let report = reports.iter().find_map(|env| match env.body {
            kg_wire::ClusterBody::StatsReport {
                members, intervals, requests, encryptions, ..
            } if env.shard == node.shard() => Some((members, intervals, requests, encryptions)),
            _ => None,
        });
        let (members, intervals, requests, encryptions) =
            report.unwrap_or((node.member_total(), 0, 0, 0));
        shards.push(ShardLoad {
            shard: node.shard().0,
            members,
            intervals,
            requests,
            encryptions,
            counters: node.obs().counter_values(),
        });
    }
    let snapshots: Vec<Vec<(String, u64)>> = shards.iter().map(|s| s.counters.clone()).collect();
    let aggregated = aggregate_counter_values(snapshots.iter());
    let router_counters = cluster.router.obs().counter_values();
    let total_members = cluster.group_size(group) as u64;
    let directory_len = cluster.router.directory_len();

    let (shutdown_members, shutdown_wal_tail) = cluster.shutdown();

    ClusterScaleResult {
        config: config.clone(),
        build_secs,
        joins_per_sec: config.members as f64 / build_secs.max(1e-9),
        churn_secs,
        total_members,
        directory_len,
        shards,
        aggregated,
        router_counters,
        shutdown_members,
        shutdown_wal_tail,
    }
}
