//! The experiment harness: run a configuration over the paper's workload
//! and collect both server-side and client-side statistics.
//!
//! Server-side numbers (processing time, message counts/sizes, encryption
//! counts) come straight from [`kg_server::ServerStats`]. Client-side
//! numbers (Table 6, Figure 12) are computed *analytically from the
//! packets and the tree*: a member receives exactly the packets whose
//! recipient set contains it, and installs exactly the new keys on its own
//! path. The `kg-client` tests verify, with real clients, that actual
//! processing produces these exact counts; the harness uses the closed
//! form so that 8192-client experiments don't require 8192 live decrypting
//! state machines per run.

use crate::workload::{Request, Workload, SEEDS};
use kg_core::rekey::{Recipients, Strategy};
use kg_server::{AccessControl, Aggregate, AuthPolicy, GroupKeyServer, ServerConfig};
use kg_wire::OpKind;

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Initial group size n.
    pub n: usize,
    /// Key tree degree d.
    pub degree: usize,
    /// Rekeying strategy.
    pub strategy: Strategy,
    /// Authentication policy.
    pub auth: AuthPolicy,
    /// Number of measured join/leave requests.
    pub ops: usize,
    /// Workload seeds (averaged over; the paper used three).
    pub seeds: Vec<u64>,
}

impl ExperimentConfig {
    /// The paper's baseline configuration for a given (n, strategy).
    pub fn paper(n: usize, strategy: Strategy, auth: AuthPolicy) -> Self {
        ExperimentConfig { n, degree: 4, strategy, auth, ops: 1000, seeds: SEEDS.to_vec() }
    }
}

/// Client-side aggregates for one op kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientSide {
    /// Mean rekey-message bytes received by a client, per request.
    pub msg_size_ave: f64,
    /// Mean number of rekey messages received by a client, per request.
    pub msgs_per_request: f64,
    /// Mean key changes per client per request (Figure 12).
    pub key_changes_per_request: f64,
}

/// Everything one experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that was run.
    pub config: ExperimentConfig,
    /// Server aggregate over joins only.
    pub join: Aggregate,
    /// Server aggregate over leaves only.
    pub leave: Aggregate,
    /// Server aggregate over all requests.
    pub all: Aggregate,
    /// Client-side aggregates for joins.
    pub client_join: ClientSide,
    /// Client-side aggregates for leaves.
    pub client_leave: ClientSide,
    /// Client-side aggregates over all requests.
    pub client_all: ClientSide,
}

/// Run one experiment (averaging over the config's seeds).
pub fn run(config: &ExperimentConfig) -> ExperimentResult {
    let mut join_aggs = Vec::new();
    let mut leave_aggs = Vec::new();
    let mut all_aggs = Vec::new();
    let mut cj = Vec::new();
    let mut cl = Vec::new();
    let mut ca = Vec::new();
    for &seed in &config.seeds {
        let (server_stats, client) = run_once(config, seed);
        if let Some(a) = server_stats.0 {
            join_aggs.push(a);
        }
        if let Some(a) = server_stats.1 {
            leave_aggs.push(a);
        }
        if let Some(a) = server_stats.2 {
            all_aggs.push(a);
        }
        cj.push(client.0);
        cl.push(client.1);
        ca.push(client.2);
    }
    ExperimentResult {
        config: config.clone(),
        join: mean_agg(&join_aggs),
        leave: mean_agg(&leave_aggs),
        all: mean_agg(&all_aggs),
        client_join: mean_client(&cj),
        client_leave: mean_client(&cl),
        client_all: mean_client(&ca),
    }
}

type SeedServerStats = (Option<Aggregate>, Option<Aggregate>, Option<Aggregate>);

fn run_once(
    config: &ExperimentConfig,
    seed: u64,
) -> (SeedServerStats, (ClientSide, ClientSide, ClientSide)) {
    let workload = Workload::generate(config.n, config.ops, seed);
    let server_config = ServerConfig::builder()
        .degree(config.degree)
        .strategy(config.strategy)
        .auth(config.auth)
        .seed(seed)
        .build()
        .expect("valid bench config");
    let mut server = GroupKeyServer::new(server_config, AccessControl::AllowAll);
    // Build the initial tree with authentication off — the paper's tables
    // exclude the n initial joins, and signing them would only slow the
    // sweep down (the RSA keypair is still generated above when needed).
    server.set_auth(AuthPolicy::None);
    for &u in &workload.initial {
        server.handle_join(u).expect("initial join");
    }
    server.set_auth(config.auth);
    server.reset_stats();

    // Client-side accumulators.
    let mut acc = [ClientAccum::default(); 2]; // [join, leave]
    for req in &workload.requests {
        let (op, kind) = match *req {
            Request::Join(u) => (server.handle_join(u).expect("join"), 0usize),
            Request::Leave(u) => (server.handle_leave(u).expect("leave"), 1usize),
        };
        let members = server.group_size() as f64;
        if members == 0.0 {
            continue;
        }
        let a = &mut acc[kind];
        a.requests += 1.0;
        a.members += members;
        for (p, bytes) in op.packets.iter().zip(&op.encoded) {
            let recipients = match &p.message.recipients {
                Recipients::User(u) => usize::from(server.is_member(*u)),
                Recipients::Subgroup(l) => server.tree().userset(*l).len(),
                Recipients::SubgroupExcept { include, exclude } => {
                    server.tree().userset_except(*include, *exclude).len()
                }
                Recipients::Group => server.group_size(),
            } as f64;
            a.msgs_received += recipients;
            a.bytes_received += recipients * bytes.len() as f64;
        }
        // Exact key-change count: every member below a changed node
        // installs that node's new key. The changed nodes' labels are the
        // targets of the op's bundles; dedupe and count usersets.
        let mut labels = std::collections::BTreeSet::new();
        for p in &op.packets {
            for b in &p.message.bundles {
                for t in &b.targets {
                    labels.insert(t.label);
                }
            }
        }
        for l in labels {
            a.key_changes += server.tree().userset(l).len() as f64;
        }
    }
    let join_stats = server.stats().aggregate(Some(OpKind::Join));
    let leave_stats = server.stats().aggregate(Some(OpKind::Leave));
    let all_stats = server.stats().aggregate(None);
    let client_join = acc[0].finish();
    let client_leave = acc[1].finish();
    let client_all = ClientAccum {
        requests: acc[0].requests + acc[1].requests,
        members: acc[0].members + acc[1].members,
        msgs_received: acc[0].msgs_received + acc[1].msgs_received,
        bytes_received: acc[0].bytes_received + acc[1].bytes_received,
        key_changes: acc[0].key_changes + acc[1].key_changes,
    }
    .finish();
    ((join_stats, leave_stats, all_stats), (client_join, client_leave, client_all))
}

#[derive(Debug, Clone, Copy, Default)]
struct ClientAccum {
    requests: f64,
    members: f64,
    msgs_received: f64,
    bytes_received: f64,
    key_changes: f64,
}

impl ClientAccum {
    fn finish(self) -> ClientSide {
        if self.requests == 0.0 || self.msgs_received == 0.0 {
            return ClientSide::default();
        }
        let avg_members = self.members / self.requests;
        ClientSide {
            msg_size_ave: self.bytes_received / self.msgs_received,
            msgs_per_request: self.msgs_received / self.requests / avg_members,
            key_changes_per_request: self.key_changes / self.requests / avg_members,
        }
    }
}

fn mean_agg(aggs: &[Aggregate]) -> Aggregate {
    if aggs.is_empty() {
        return Aggregate {
            ops: 0,
            requests: 0,
            msg_size_ave: 0.0,
            msg_size_min: 0,
            msg_size_max: 0,
            msgs_per_op: 0.0,
            proc_ms_ave: 0.0,
            proc_ms_p50: 0.0,
            proc_ms_p99: 0.0,
            encryptions_ave: 0.0,
            signatures_ave: 0.0,
        };
    }
    let n = aggs.len() as f64;
    Aggregate {
        ops: aggs.iter().map(|a| a.ops).sum(),
        requests: aggs.iter().map(|a| a.requests).sum(),
        msg_size_ave: aggs.iter().map(|a| a.msg_size_ave).sum::<f64>() / n,
        msg_size_min: aggs.iter().map(|a| a.msg_size_min).min().unwrap_or(0),
        msg_size_max: aggs.iter().map(|a| a.msg_size_max).max().unwrap_or(0),
        msgs_per_op: aggs.iter().map(|a| a.msgs_per_op).sum::<f64>() / n,
        proc_ms_ave: aggs.iter().map(|a| a.proc_ms_ave).sum::<f64>() / n,
        proc_ms_p50: aggs.iter().map(|a| a.proc_ms_p50).sum::<f64>() / n,
        proc_ms_p99: aggs.iter().map(|a| a.proc_ms_p99).sum::<f64>() / n,
        encryptions_ave: aggs.iter().map(|a| a.encryptions_ave).sum::<f64>() / n,
        signatures_ave: aggs.iter().map(|a| a.signatures_ave).sum::<f64>() / n,
    }
}

fn mean_client(cs: &[ClientSide]) -> ClientSide {
    if cs.is_empty() {
        return ClientSide::default();
    }
    let n = cs.len() as f64;
    ClientSide {
        msg_size_ave: cs.iter().map(|c| c.msg_size_ave).sum::<f64>() / n,
        msgs_per_request: cs.iter().map(|c| c.msgs_per_request).sum::<f64>() / n,
        key_changes_per_request: cs.iter().map(|c| c.key_changes_per_request).sum::<f64>() / n,
    }
}

/// One batched-vs-per-operation experiment configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Initial group size n.
    pub n: usize,
    /// Key tree degree d.
    pub degree: usize,
    /// Rekeying strategy.
    pub strategy: Strategy,
    /// Requests collected per rekey interval (1 = flush on every request).
    pub batch_size: usize,
    /// Number of measured join/leave requests.
    pub ops: usize,
    /// Mean Poisson inter-arrival time in milliseconds (churn intensity).
    pub mean_interarrival_ms: f64,
    /// Workload seeds (averaged over).
    pub seeds: Vec<u64>,
}

impl BatchConfig {
    /// The batch experiment baseline for a given (n, batch size).
    pub fn baseline(n: usize, batch_size: usize) -> Self {
        BatchConfig {
            n,
            degree: 4,
            strategy: Strategy::GroupOriented,
            batch_size,
            ops: 400,
            mean_interarrival_ms: 10.0,
            seeds: SEEDS.to_vec(),
        }
    }
}

/// Totals over one measured phase, for one rekeying mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct RekeyCosts {
    /// Keys encrypted (the paper's cost unit).
    pub encryptions: f64,
    /// Rekey packets addressed to more than one member (group or subgroup
    /// delivery — each consumes a multicast send).
    pub multicasts: f64,
    /// Rekey packets addressed to a single member.
    pub unicasts: f64,
    /// Rekey operations performed: requests for per-op mode, flushed
    /// intervals for batched mode.
    pub flushes: f64,
    /// Total rekey bytes put on the wire.
    pub bytes: f64,
}

impl RekeyCosts {
    fn add_packets<'a, I>(&mut self, packets: I)
    where
        I: Iterator<Item = (&'a Recipients, usize)>,
    {
        for (recipients, len) in packets {
            match recipients {
                Recipients::User(_) => self.unicasts += 1.0,
                _ => self.multicasts += 1.0,
            }
            self.bytes += len as f64;
        }
    }
}

/// Result of one batched-vs-per-operation comparison.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// The configuration that was run.
    pub config: BatchConfig,
    /// Costs of rekeying after every request (the paper's base protocol).
    pub per_op: RekeyCosts,
    /// Costs of periodic batch rekeying at the configured batch size.
    pub batched: RekeyCosts,
}

/// Run one batched-vs-per-op comparison: the same Poisson churn workload
/// is replayed through an immediate-mode server and through a batched
/// server that flushes every `batch_size` requests, and the total rekey
/// costs of the measured phase are compared (averaged over seeds).
pub fn run_batch_comparison(config: &BatchConfig) -> BatchComparison {
    let mut per_op = RekeyCosts::default();
    let mut batched = RekeyCosts::default();
    for &seed in &config.seeds {
        let workload = crate::workload::ChurnWorkload::generate(
            config.n,
            config.ops,
            config.mean_interarrival_ms,
            seed,
        );
        let (p, b) =
            (per_op_costs(config, &workload, seed), batched_costs(config, &workload, seed));
        per_op.encryptions += p.encryptions;
        per_op.multicasts += p.multicasts;
        per_op.unicasts += p.unicasts;
        per_op.flushes += p.flushes;
        per_op.bytes += p.bytes;
        batched.encryptions += b.encryptions;
        batched.multicasts += b.multicasts;
        batched.unicasts += b.unicasts;
        batched.flushes += b.flushes;
        batched.bytes += b.bytes;
    }
    let k = config.seeds.len().max(1) as f64;
    for c in [&mut per_op, &mut batched] {
        c.encryptions /= k;
        c.multicasts /= k;
        c.unicasts /= k;
        c.flushes /= k;
        c.bytes /= k;
    }
    BatchComparison { config: config.clone(), per_op, batched }
}

fn per_op_costs(
    config: &BatchConfig,
    workload: &crate::workload::ChurnWorkload,
    seed: u64,
) -> RekeyCosts {
    let server_config = ServerConfig::builder()
        .degree(config.degree)
        .strategy(config.strategy)
        .auth(AuthPolicy::None)
        .seed(seed)
        .build()
        .expect("valid bench config");
    let mut server = GroupKeyServer::new(server_config, AccessControl::AllowAll);
    for &u in &workload.initial {
        server.handle_join(u).expect("initial join");
    }
    server.reset_stats();
    let mut costs = RekeyCosts::default();
    for t in &workload.arrivals {
        let op = match t.request {
            Request::Join(u) => server.handle_join(u).expect("join"),
            Request::Leave(u) => server.handle_leave(u).expect("leave"),
        };
        costs.add_packets(
            op.packets.iter().zip(&op.encoded).map(|(p, e)| (&p.message.recipients, e.len())),
        );
        costs.flushes += 1.0;
    }
    costs.encryptions = server.stats().records().iter().map(|r| r.encryptions as f64).sum();
    costs
}

fn batched_costs(
    config: &BatchConfig,
    workload: &crate::workload::ChurnWorkload,
    seed: u64,
) -> RekeyCosts {
    // Depth-triggered flushing: the queue drains every `batch_size`
    // requests, making the batch size exact. The Poisson clock still
    // drives `tick`, so interval-triggered flushing is exercised when
    // the configured interval elapses first.
    let server_config = ServerConfig::builder()
        .degree(config.degree)
        .strategy(config.strategy)
        .auth(AuthPolicy::None)
        .seed(seed)
        .batched(u64::MAX / 4, config.batch_size)
        .build()
        .expect("valid bench config");
    let mut server = GroupKeyServer::new(server_config, AccessControl::AllowAll);
    for &u in &workload.initial {
        server.enqueue_join(u).expect("initial enqueue");
    }
    server.flush(0).expect("initial flush");
    server.reset_stats();
    let mut costs = RekeyCosts::default();
    let absorb = |costs: &mut RekeyCosts, batch: kg_server::ProcessedBatch| {
        costs.add_packets(
            batch.packets.iter().zip(&batch.encoded).map(|(p, e)| (&p.message.recipients, e.len())),
        );
        costs.flushes += 1.0;
    };
    for t in &workload.arrivals {
        match t.request {
            Request::Join(u) => server.enqueue_join(u).expect("enqueue join"),
            Request::Leave(u) => server.enqueue_leave(u).expect("enqueue leave"),
        }
        if let Some(batch) = server.tick(t.at_ms).expect("tick") {
            absorb(&mut costs, batch);
        }
    }
    if let Some(batch) = server.flush(workload.end_ms() + 1).expect("final flush") {
        absorb(&mut costs, batch);
    }
    costs.encryptions = server.stats().records().iter().map(|r| r.encryptions as f64).sum();
    costs
}

/// One row of the WAL-overhead comparison: the same churn workload run
/// with persistence off and with each fsync policy.
#[derive(Debug, Clone)]
pub struct WalOverheadRow {
    /// Human-readable policy name (`none` is the in-memory baseline).
    pub policy: String,
    /// Wall-clock time for the measured churn phase, in milliseconds.
    pub elapsed_ms: f64,
    /// Measured requests per second.
    pub ops_per_sec: f64,
    /// Bytes appended to the write-ahead log (0 for the baseline).
    pub wal_bytes: u64,
    /// Elapsed time relative to the in-memory baseline (1.0 = no cost).
    pub slowdown: f64,
}

/// One point of the recovery-time curve: crash after a log of the given
/// length, measure the time to rebuild the server from disk.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPoint {
    /// Records in the write-ahead log at the crash.
    pub wal_ops: usize,
    /// Bytes in the write-ahead log at the crash.
    pub wal_bytes: u64,
    /// Wall-clock recovery time (load + replay + digest check), ms.
    pub recover_ms: f64,
}

fn persist_scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kg-bench-{tag}-{}-{n}", std::process::id()))
}

fn churn(server: &mut GroupKeyServer, workload: &Workload) {
    for req in &workload.requests {
        match *req {
            Request::Join(u) => {
                server.handle_join(u).expect("join");
            }
            Request::Leave(u) => {
                server.handle_leave(u).expect("leave");
            }
        }
    }
}

/// Measure WAL overhead: run the same workload (initial group of `n`,
/// then `ops` join/leave requests) with persistence off and under each
/// fsync policy, timing only the measured churn phase. Snapshotting is
/// disabled so the numbers isolate the log-append cost.
pub fn run_persist_overhead(n: usize, ops: usize, seed: u64) -> Vec<WalOverheadRow> {
    let workload = Workload::generate(n, ops, seed);
    let config =
        ServerConfig::builder().auth(AuthPolicy::None).seed(seed).build().expect("valid config");
    let no_snapshots = |fsync| kg_persist::PersistConfig {
        fsync,
        snapshot_every_ops: u64::MAX,
        snapshot_max_bytes: u64::MAX,
    };

    let mut rows = Vec::new();
    let base_ms = {
        let mut server = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
        for &u in &workload.initial {
            server.handle_join(u).expect("initial join");
        }
        let start = std::time::Instant::now();
        churn(&mut server, &workload);
        start.elapsed().as_secs_f64() * 1e3
    };
    rows.push(WalOverheadRow {
        policy: "none".into(),
        elapsed_ms: base_ms,
        ops_per_sec: ops as f64 / (base_ms / 1e3).max(1e-9),
        wal_bytes: 0,
        slowdown: 1.0,
    });

    for (fsync, name) in [
        (kg_persist::FsyncPolicy::EveryRecord, "every-record"),
        (kg_persist::FsyncPolicy::EveryN(32), "every-32"),
        (kg_persist::FsyncPolicy::IntervalMs(50), "interval-50ms"),
    ] {
        let dir = persist_scratch_dir("overhead");
        let mut server = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            no_snapshots(fsync),
        )
        .expect("create store");
        for &u in &workload.initial {
            server.handle_join(u).expect("initial join");
        }
        let start = std::time::Instant::now();
        churn(&mut server, &workload);
        server.sync_persistence().expect("final sync");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let wal_bytes = server.persistence().expect("persistent").wal_len();
        rows.push(WalOverheadRow {
            policy: name.into(),
            elapsed_ms: ms,
            ops_per_sec: ops as f64 / (ms / 1e3).max(1e-9),
            wal_bytes,
            slowdown: ms / base_ms.max(1e-9),
        });
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

/// Measure time-to-recover as a function of log length: for each entry of
/// `churn_ops`, build a persisted server (initial group of `n`, then that
/// many requests, snapshots disabled so the whole history replays), crash
/// it, and time [`GroupKeyServer::recover`].
pub fn run_recovery_curve(n: usize, churn_ops: &[usize], seed: u64) -> Vec<RecoveryPoint> {
    let config =
        ServerConfig::builder().auth(AuthPolicy::None).seed(seed).build().expect("valid config");
    let pcfg = kg_persist::PersistConfig {
        fsync: kg_persist::FsyncPolicy::EveryN(4096),
        snapshot_every_ops: u64::MAX,
        snapshot_max_bytes: u64::MAX,
    };
    churn_ops
        .iter()
        .map(|&ops| {
            let workload = Workload::generate(n, ops, seed);
            let dir = persist_scratch_dir("recovery");
            let mut server = GroupKeyServer::with_persistence(
                config.clone(),
                AccessControl::AllowAll,
                &dir,
                pcfg,
            )
            .expect("create store");
            for &u in &workload.initial {
                server.handle_join(u).expect("initial join");
            }
            churn(&mut server, &workload);
            server.sync_persistence().expect("final sync");
            let wal_bytes = server.persistence().expect("persistent").wal_len();
            drop(server); // crash

            let start = std::time::Instant::now();
            let recovered =
                GroupKeyServer::recover(config.clone(), AccessControl::AllowAll, &dir, pcfg)
                    .expect("recover");
            let recover_ms = start.elapsed().as_secs_f64() * 1e3;
            drop(recovered);
            let _ = std::fs::remove_dir_all(&dir);
            RecoveryPoint { wal_ops: n + ops, wal_bytes, recover_ms }
        })
        .collect()
}

/// Result of the observability-overhead measurement: the same churn
/// workload timed with a disabled [`kg_obs::Obs`] handle (the baseline)
/// and with a fully enabled one (spans, counters, timeline).
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Median-of-`repeats` churn time with observability off, ms.
    pub baseline_ms: f64,
    /// Median-of-`repeats` churn time with observability on, ms.
    pub observed_ms: f64,
    /// `(observed / baseline − 1) × 100` — the acceptance target is < 5.
    pub overhead_pct: f64,
    /// `kg_requests_total` summed over the join/leave families after one
    /// observed run (should equal the request count).
    pub requests_total: u64,
    /// `kg_encryptions_total` after one observed run.
    pub encryptions_total: u64,
    /// Join-handler span distribution (`kg_span_us{span="op.join"}`).
    pub join_span: kg_obs::HistogramSnapshot,
    /// Leave-handler span distribution (`kg_span_us{span="op.leave"}`).
    pub leave_span: kg_obs::HistogramSnapshot,
    /// Events recorded on the timeline during the observed run.
    pub timeline_total: u64,
    /// Lines in the Prometheus exposition (a cheap "exporter works and
    /// has content" check for the JSON artifact).
    pub prometheus_lines: usize,
}

/// Measure the cost of the `kg-obs` layer: run the same workload
/// (initial group of `n`, then `ops` join/leave requests) `repeats`
/// times under a disabled handle and `repeats` times under an enabled
/// one, interleaved, and compare the *median* pass time of each. The
/// median rather than the mean or minimum because scheduling noise on a
/// shared host arrives as sustained spikes: a spike long enough to
/// cover half the interleaved passes would have to last the whole
/// measurement.
pub fn run_obs_overhead(n: usize, ops: usize, seed: u64, repeats: usize) -> ObsOverhead {
    use kg_obs::{Obs, ObsConfig};
    let workload = Workload::generate(n, ops, seed);
    let config =
        ServerConfig::builder().auth(AuthPolicy::None).seed(seed).build().expect("valid config");

    let run_once = |obs: Obs| -> (f64, Obs) {
        let mut server = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
        for &u in &workload.initial {
            server.handle_join(u).expect("initial join");
        }
        server.reset_stats();
        server.attach_obs(obs);
        let start = std::time::Instant::now();
        churn(&mut server, &workload);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (ms, server.obs().clone())
    };

    // One untimed pass per mode warms caches (and absorbs any load spike
    // left over from whoever launched us) before measurement starts.
    let _ = run_once(Obs::disabled());
    let _ = run_once(Obs::new(ObsConfig::default()));

    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let mut baseline = Vec::new();
    let mut observed = Vec::new();
    let mut last_obs = Obs::disabled();
    for _ in 0..repeats.max(1) {
        let (b, _) = run_once(Obs::disabled());
        baseline.push(b);
        let (o, obs) = run_once(Obs::new(ObsConfig::default()));
        observed.push(o);
        last_obs = obs;
    }
    let baseline_ms = median(&mut baseline);
    let observed_ms = median(&mut observed);

    let requests_total = last_obs.counter_with("kg_requests_total", "kind", "join").get()
        + last_obs.counter_with("kg_requests_total", "kind", "leave").get();
    ObsOverhead {
        baseline_ms,
        observed_ms,
        overhead_pct: (observed_ms / baseline_ms.max(1e-9) - 1.0) * 100.0,
        requests_total,
        encryptions_total: last_obs.counter("kg_encryptions_total").get(),
        join_span: last_obs.span_snapshot("op.join"),
        leave_span: last_obs.span_snapshot("op.leave"),
        timeline_total: last_obs.timeline_total(),
        prometheus_lines: last_obs.render_prometheus().lines().count(),
    }
}

/// Result of the counter/WAL reconciliation run: one persisted server
/// lifetime, a crash, and an observed recovery, with every independent
/// account of "how many operations happened" read back.
#[derive(Debug, Clone)]
pub struct ObsReconcile {
    /// Operations the first lifetime performed (initial joins + churn).
    pub expected_ops: u64,
    /// `WalAppend` timeline events recorded during the first lifetime
    /// (cumulative kind count — survives ring eviction).
    pub wal_append_events: u64,
    /// `kg_requests_total` over the join/leave families, first lifetime.
    pub requests_counter: u64,
    /// Records pushed into `ServerStats` during the first lifetime.
    pub stats_records: u64,
    /// `kg_replayed_records_total` as reported by the recovered server's
    /// fresh handle (equals the WAL records replayed from disk).
    pub records_replayed: u64,
    /// Whether the recovery emitted exactly one `Recovered` event.
    pub recovered_event_seen: bool,
}

impl ObsReconcile {
    /// True when every account agrees on the operation count.
    pub fn consistent(&self) -> bool {
        self.wal_append_events == self.expected_ops
            && self.requests_counter == self.expected_ops
            && self.stats_records == self.expected_ops
            && self.records_replayed == self.expected_ops
            && self.recovered_event_seen
    }
}

/// Reconcile the observability layer against the durability layer: run a
/// persisted, observed server (initial group of `n`, then `ops`
/// requests, snapshots off so the whole history stays in the log),
/// crash it, recover with a fresh handle, and read back every count
/// that should equal `n + ops`.
pub fn run_obs_reconcile(n: usize, ops: usize, seed: u64) -> ObsReconcile {
    use kg_obs::{Obs, ObsConfig};
    let workload = Workload::generate(n, ops, seed);
    let config =
        ServerConfig::builder().auth(AuthPolicy::None).seed(seed).build().expect("valid config");
    let pcfg = kg_persist::PersistConfig {
        fsync: kg_persist::FsyncPolicy::EveryN(1024),
        snapshot_every_ops: u64::MAX,
        snapshot_max_bytes: u64::MAX,
    };
    let dir = persist_scratch_dir("obs-reconcile");

    let obs = Obs::new(ObsConfig::default());
    let mut server =
        GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, pcfg)
            .expect("create store");
    server.attach_obs(obs.clone());
    for &u in &workload.initial {
        server.handle_join(u).expect("initial join");
    }
    churn(&mut server, &workload);
    server.sync_persistence().expect("final sync");
    let stats_records = server.stats().records_pushed();
    drop(server); // crash

    let wal_append_events = obs.event_kind_counts().get("wal_append").copied().unwrap_or(0);
    let requests_counter = obs.counter_with("kg_requests_total", "kind", "join").get()
        + obs.counter_with("kg_requests_total", "kind", "leave").get();

    let recovery_obs = Obs::new(ObsConfig::default());
    let recovered = GroupKeyServer::recover_observed(
        config,
        AccessControl::AllowAll,
        &dir,
        pcfg,
        recovery_obs.clone(),
    )
    .expect("recover");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    ObsReconcile {
        expected_ops: (n + ops) as u64,
        wal_append_events,
        requests_counter,
        stats_records,
        records_replayed: recovery_obs.counter("kg_replayed_records_total").get(),
        recovered_event_seen: recovery_obs.event_kind_counts().get("recovered").copied() == Some(1),
    }
}

/// Simple fixed-width text table builder for the report binary.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Per-op server cost of one strategy at group size `n`, one phase per
/// op kind (see [`run_derived_costs`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DerivedPhase {
    /// Bundles actually sealed (cipher invocations) per op — the O(1)
    /// quantity client-derived rekeying targets for joins and refreshes.
    pub seals: f64,
    /// Keys encrypted per op (the paper's cost unit: a bundle packing
    /// three keys costs three).
    pub encryptions: f64,
    /// Rekey frames emitted per op.
    pub messages: f64,
    /// Encoded rekey bytes emitted per op.
    pub bytes: f64,
}

/// The three phases of one [`run_derived_costs`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DerivedCosts {
    /// Joins of fresh users into the size-`n` group.
    pub join: DerivedPhase,
    /// Leaves of current members.
    pub leave: DerivedPhase,
    /// Group-key refreshes.
    pub refresh: DerivedPhase,
}

/// Measure the server-side per-op cost of `strategy` at group size `n`:
/// populate a server to `n` members, then probe `probes` joins, `probes`
/// refreshes, and `probes` leaves, reading seal/encryption counts from
/// the server's own metrics and frame sizes from the processed ops.
///
/// This is the derived-vs-shipped comparison surface: with
/// [`Strategy::Derived`] a join seals exactly one bundle (the joiner's
/// unicast) and a refresh seals none, independent of `n`, while the
/// shipped strategies scale with the tree height.
pub fn run_derived_costs(n: usize, probes: usize, seed: u64, strategy: Strategy) -> DerivedCosts {
    use kg_core::ids::UserId;
    use kg_obs::{Obs, ObsConfig};
    let config = ServerConfig::builder()
        .auth(AuthPolicy::None)
        .seed(seed)
        .strategy(strategy)
        .build()
        .expect("valid config");
    let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
    for u in 0..n as u64 {
        server.handle_join(UserId(u)).expect("populate");
    }
    let obs = Obs::new(ObsConfig::default());
    server.attach_obs(obs.clone());
    let misses = obs.counter_with("kg_par_cache_total", "result", "miss");
    let encs = obs.counter("kg_encryptions_total");

    let mut measure = |ops: &mut dyn FnMut(&mut GroupKeyServer) -> kg_server::ProcessedOp| {
        let (m0, e0) = (misses.get(), encs.get());
        let (mut messages, mut bytes) = (0u64, 0u64);
        for _ in 0..probes {
            let out = ops(&mut server);
            messages += out.encoded.len() as u64;
            bytes += out.encoded.iter().map(|b| b.len() as u64).sum::<u64>();
        }
        let p = probes.max(1) as f64;
        DerivedPhase {
            seals: (misses.get() - m0) as f64 / p,
            encryptions: (encs.get() - e0) as f64 / p,
            messages: messages as f64 / p,
            bytes: bytes as f64 / p,
        }
    };

    let mut next = n as u64;
    let join = measure(&mut |s| {
        next += 1;
        s.handle_join(UserId(next - 1)).expect("probe join")
    });
    let refresh = measure(&mut |s| s.refresh_group_key().expect("probe refresh"));
    // Leave the probe joiners again: the group returns to size n, so
    // every phase measured the same population.
    let mut gone = n as u64;
    let leave = measure(&mut |s| {
        gone += 1;
        s.handle_leave(UserId(gone - 1)).expect("probe leave")
    });
    DerivedCosts { join, leave, refresh }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiment_runs() {
        let cfg = ExperimentConfig {
            n: 32,
            degree: 4,
            strategy: Strategy::GroupOriented,
            auth: AuthPolicy::None,
            ops: 50,
            seeds: vec![1],
        };
        let r = run(&cfg);
        assert_eq!(r.all.ops, 50);
        assert!(r.all.msg_size_ave > 0.0);
        assert!(r.all.proc_ms_ave >= 0.0);
        // Each client receives exactly one rekey message per request under
        // group-oriented rekeying (Table 6).
        assert!((r.client_all.msgs_per_request - 1.0).abs() < 0.2);
        // Key changes per request ≈ d/(d−1) = 1.33 (Figure 12).
        assert!(
            (r.client_all.key_changes_per_request - 4.0 / 3.0).abs() < 0.5,
            "got {}",
            r.client_all.key_changes_per_request
        );
    }

    #[test]
    fn strategies_have_expected_server_ordering() {
        // User-oriented does the most encryptions; group/key the least.
        let mk = |strategy| {
            run(&ExperimentConfig {
                n: 64,
                degree: 4,
                strategy,
                auth: AuthPolicy::None,
                ops: 60,
                seeds: vec![5],
            })
        };
        let user = mk(Strategy::UserOriented);
        let key = mk(Strategy::KeyOriented);
        let group = mk(Strategy::GroupOriented);
        assert!(user.leave.encryptions_ave > key.leave.encryptions_ave);
        assert!((key.leave.encryptions_ave - group.leave.encryptions_ave).abs() < 1e-9);
        // Group-oriented sends exactly 1 leave message; the others many.
        assert!((group.leave.msgs_per_op - 1.0).abs() < 1e-9);
        assert!(key.leave.msgs_per_op > 5.0);
    }

    #[test]
    fn client_side_message_counts_match_table6() {
        for strategy in Strategy::ALL {
            let r = run(&ExperimentConfig {
                n: 64,
                degree: 4,
                strategy,
                auth: AuthPolicy::None,
                ops: 40,
                seeds: vec![9],
            });
            // Table 6: every client gets exactly one rekey message per
            // request under all three strategies.
            assert!(
                (r.client_all.msgs_per_request - 1.0).abs() < 0.25,
                "{strategy:?}: {}",
                r.client_all.msgs_per_request
            );
        }
    }

    #[test]
    fn batch_comparison_runs_and_counts_intervals() {
        let cfg = BatchConfig {
            n: 64,
            degree: 4,
            strategy: Strategy::GroupOriented,
            batch_size: 8,
            ops: 64,
            mean_interarrival_ms: 10.0,
            seeds: vec![1],
        };
        let r = run_batch_comparison(&cfg);
        assert_eq!(r.per_op.flushes, 64.0, "per-op rekeys once per request");
        assert!(r.batched.flushes <= 64.0 / 8.0 + 1.0, "depth-8 queue flushes ~ops/8 times");
        assert!(r.per_op.encryptions > 0.0 && r.batched.encryptions > 0.0);
        assert!(r.per_op.multicasts > 0.0 && r.batched.multicasts > 0.0);
    }

    /// The ISSUE's acceptance bar: at n = 4096, d = 4, every batch size
    /// ≥ 4 must send strictly fewer encryptions AND strictly fewer
    /// multicasts than per-operation rekeying over the same workload.
    #[test]
    fn batched_beats_per_op_at_n4096() {
        for batch_size in [4usize, 16, 64] {
            let cfg = BatchConfig {
                n: 4096,
                degree: 4,
                strategy: Strategy::GroupOriented,
                batch_size,
                ops: 128,
                mean_interarrival_ms: 5.0,
                seeds: vec![SEEDS[0]],
            };
            let r = run_batch_comparison(&cfg);
            assert!(
                r.batched.encryptions < r.per_op.encryptions,
                "batch={batch_size}: encryptions {} !< {}",
                r.batched.encryptions,
                r.per_op.encryptions
            );
            assert!(
                r.batched.multicasts < r.per_op.multicasts,
                "batch={batch_size}: multicasts {} !< {}",
                r.batched.multicasts,
                r.per_op.multicasts
            );
        }
    }

    #[test]
    fn derived_join_cost_does_not_scale_with_group_size() {
        let small = run_derived_costs(32, 8, 1, Strategy::Derived);
        let big = run_derived_costs(256, 8, 1, Strategy::Derived);
        assert_eq!(small.join.seals, 1.0, "derived join seals one bundle");
        assert_eq!(big.join.seals, 1.0, "…at any group size");
        assert_eq!(big.refresh.seals, 0.0, "derived refresh is ciphertext-free");
        assert!(big.leave.seals > 1.0, "leaves ship keys for forward secrecy");
        let shipped = run_derived_costs(256, 8, 1, Strategy::GroupOriented);
        assert!(shipped.join.seals > 1.0, "shipped joins scale with the path");
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn text_table_rejects_bad_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
