//! Workload generation, faithful to Section 5.
//!
//! "For each experiment with an initial group size n, the client-simulator
//! first sent n join requests, and the server built a key tree. Then the
//! client-simulator sent 1000 join/leave requests. The sequence of 1000
//! join/leave requests was generated randomly according to a given ratio
//! (the ratio was 1:1 in all our experiments). Each experiment was
//! performed with three different sequences … the same three sequences
//! were used for a given group size" — hence [`Workload::generate`] is
//! seeded, and [`SEEDS`] pins the paper's three sequences.

use kg_core::ids::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three request sequences used for every configuration (the paper
/// reused the same three per group size for fair comparison).
pub const SEEDS: [u64; 3] = [101, 202, 303];

/// One membership request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// A new user joins.
    Join(UserId),
    /// An existing member leaves.
    Leave(UserId),
}

/// A complete experiment workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The initial members (n join requests building the tree).
    pub initial: Vec<UserId>,
    /// The measured join/leave request sequence.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Generate: `n` initial joins, then `ops` requests at a 1:1
    /// join/leave ratio, using `seed`.
    ///
    /// Leaves target a uniformly random current member; joins introduce a
    /// fresh user id. A leave is converted to a join when the group has
    /// only one member left (the experiment must keep a populated tree).
    pub fn generate(n: usize, ops: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<UserId> = (0..n as u64).map(UserId).collect();
        let mut present: Vec<UserId> = initial.clone();
        let mut next_id = n as u64;
        let mut requests = Vec::with_capacity(ops);
        for _ in 0..ops {
            let join = rng.gen_bool(0.5) || present.len() <= 1;
            if join {
                let u = UserId(next_id);
                next_id += 1;
                present.push(u);
                requests.push(Request::Join(u));
            } else {
                let idx = rng.gen_range(0..present.len());
                let u = present.swap_remove(idx);
                requests.push(Request::Leave(u));
            }
        }
        Workload { initial, requests }
    }

    /// Number of join requests in the measured phase.
    pub fn join_count(&self) -> usize {
        self.requests.iter().filter(|r| matches!(r, Request::Join(_))).count()
    }

    /// Number of leave requests in the measured phase.
    pub fn leave_count(&self) -> usize {
        self.requests.len() - self.join_count()
    }
}

/// One membership request with its (simulated) arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRequest {
    /// Arrival time in milliseconds since the start of the measured phase.
    pub at_ms: u64,
    /// The request itself.
    pub request: Request,
}

/// A churn workload for the batch-rekeying experiments: join/leave
/// requests arriving as a Poisson process (exponential inter-arrival
/// times), so a periodic rekey interval sees a random mix of requests.
///
/// `mean_interarrival_ms` configures churn intensity: a smaller value
/// means more requests accumulate per rekey interval.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    /// The initial members (populated before measurement starts).
    pub initial: Vec<UserId>,
    /// Timed requests, in nondecreasing arrival order.
    pub arrivals: Vec<TimedRequest>,
}

impl ChurnWorkload {
    /// Generate `ops` Poisson arrivals at a 1:1 join/leave ratio over an
    /// initial group of `n`, using `seed`.
    ///
    /// Request validity follows [`Workload::generate`]: leaves target a
    /// current (or arriving) member, joins use fresh ids, and the group is
    /// never emptied.
    pub fn generate(n: usize, ops: usize, mean_interarrival_ms: f64, seed: u64) -> ChurnWorkload {
        assert!(mean_interarrival_ms > 0.0, "inter-arrival mean must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<UserId> = (0..n as u64).map(UserId).collect();
        let mut present: Vec<UserId> = initial.clone();
        let mut next_id = n as u64;
        let mut clock = 0.0f64;
        let mut arrivals = Vec::with_capacity(ops);
        for _ in 0..ops {
            // Exponential inter-arrival: -mean * ln(1 - U), U ∈ [0, 1).
            let u: f64 = rng.gen();
            clock += -mean_interarrival_ms * (1.0 - u).ln();
            let join = rng.gen_bool(0.5) || present.len() <= 1;
            let request = if join {
                let u = UserId(next_id);
                next_id += 1;
                present.push(u);
                Request::Join(u)
            } else {
                let idx = rng.gen_range(0..present.len());
                Request::Leave(present.swap_remove(idx))
            };
            arrivals.push(TimedRequest { at_ms: clock as u64, request });
        }
        ChurnWorkload { initial, arrivals }
    }

    /// Arrival time of the last request (0 for an empty workload).
    pub fn end_ms(&self) -> u64 {
        self.arrivals.last().map_or(0, |t| t.at_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::generate(100, 500, 7);
        let b = Workload::generate(100, 500, 7);
        assert_eq!(a.requests, b.requests);
        let c = Workload::generate(100, 500, 8);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn ratio_is_roughly_one_to_one() {
        let w = Workload::generate(1000, 2000, SEEDS[0]);
        let joins = w.join_count();
        assert!((800..=1200).contains(&joins), "got {joins} joins of 2000");
    }

    #[test]
    fn requests_are_valid_against_membership() {
        let w = Workload::generate(50, 1000, SEEDS[1]);
        let mut present: BTreeSet<UserId> = w.initial.iter().copied().collect();
        for r in &w.requests {
            match r {
                Request::Join(u) => assert!(present.insert(*u), "{u} double join"),
                Request::Leave(u) => assert!(present.remove(u), "{u} phantom leave"),
            }
        }
    }

    #[test]
    fn never_empties_the_group() {
        let w = Workload::generate(2, 500, SEEDS[2]);
        let mut size = w.initial.len() as i64;
        for r in &w.requests {
            size += match r {
                Request::Join(_) => 1,
                Request::Leave(_) => -1,
            };
            assert!(size >= 1);
        }
    }

    #[test]
    fn churn_is_deterministic_and_time_ordered() {
        let a = ChurnWorkload::generate(64, 300, 10.0, 7);
        let b = ChurnWorkload::generate(64, 300, 10.0, 7);
        assert_eq!(a.arrivals, b.arrivals);
        for w in a.arrivals.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "arrivals out of order");
        }
    }

    #[test]
    fn churn_interarrival_mean_is_roughly_configured() {
        let w = ChurnWorkload::generate(64, 4000, 25.0, SEEDS[0]);
        let mean = w.end_ms() as f64 / w.arrivals.len() as f64;
        assert!((15.0..=35.0).contains(&mean), "mean inter-arrival {mean} far from 25");
    }

    #[test]
    fn churn_requests_are_valid_against_membership() {
        let w = ChurnWorkload::generate(50, 1000, 5.0, SEEDS[1]);
        let mut present: BTreeSet<UserId> = w.initial.iter().copied().collect();
        for t in &w.arrivals {
            match t.request {
                Request::Join(u) => assert!(present.insert(u), "{u} double join"),
                Request::Leave(u) => assert!(present.remove(&u), "{u} phantom leave"),
            }
            assert!(!present.is_empty());
        }
    }

    #[test]
    fn join_ids_are_fresh() {
        let w = Workload::generate(10, 200, 3);
        let mut seen: BTreeSet<UserId> = w.initial.iter().copied().collect();
        for r in &w.requests {
            if let Request::Join(u) = r {
                assert!(seen.insert(*u), "{u} reused");
            }
        }
    }
}
