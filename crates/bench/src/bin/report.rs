//! Regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! report [--quick] <artifact>...
//! artifacts: table1 table2 table3 table4 table5 table6
//!            fig10 fig11 fig12 iolus hybrid batch persist obs par
//!            cluster trace derived all
//! ```
//!
//! The `batch`, `persist`, `obs`, `par`, `cluster`, `trace`, and
//! `derived` artifacts also write machine-readable `BENCH_batch.json`,
//! `BENCH_persist.json`, `BENCH_obs.json`, `BENCH_par.json`,
//! `BENCH_cluster.json`, `BENCH_trace.json`, and `BENCH_derived.json`
//! to the working directory.
//!
//! `--quick` shrinks group sizes / request counts for a fast smoke run,
//! and writes its artifacts as `BENCH_<name>.quick.json` so a smoke run
//! never clobbers a full run's numbers.
//! Absolute times differ from the paper's 1998 SGI Origin 200 numbers; the
//! comparisons (strategy ordering, O(log n) scaling, optimal degree ≈ 4,
//! the ~10× Merkle-signing win) are the reproduction targets. See
//! EXPERIMENTS.md for the side-by-side reading.

use kg_bench::{
    run, run_batch_comparison, run_derived_costs, run_obs_overhead, run_obs_reconcile,
    run_par_speedup, run_persist_overhead, run_recovery_curve, run_trace_plane, BatchConfig,
    ExperimentConfig, ParConfig, TextTable, TraceBenchConfig, SEEDS,
};
use kg_core::cost::{self, GraphClass};
use kg_core::ids::UserId;
use kg_core::rekey::{KeyCipher, Strategy};
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::KeySource;
use kg_iolus::IolusSystem;
use kg_server::AuthPolicy;

struct Opts {
    quick: bool,
    artifacts: Vec<String>,
}

fn parse_args() -> Opts {
    let mut quick = false;
    let mut artifacts = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: report [--quick] <artifact>...\n\
                     artifacts: table1 table2 table3 table4 table5 table6 \
                     fig10 fig11 fig12 iolus hybrid batch persist obs par cluster trace \
                     derived all"
                );
                std::process::exit(0);
            }
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("all".to_string());
    }
    Opts { quick, artifacts }
}

fn main() {
    let opts = parse_args();
    let all = opts.artifacts.iter().any(|a| a == "all");
    let want = |name: &str| all || opts.artifacts.iter().any(|a| a == name);

    println!("# Key-graphs reproduction report");
    println!(
        "# mode: {}  (paper: n=8192, 1000 requests, 3 seeds, DES-CBC/MD5/RSA-512)\n",
        if opts.quick { "quick" } else { "full" }
    );

    if want("table1") {
        table1(&opts);
    }
    if want("table2") {
        table2(&opts);
    }
    if want("table3") {
        table3(&opts);
    }
    if want("table4") {
        table4(&opts);
    }
    if want("fig10") {
        fig10(&opts);
    }
    if want("fig11") {
        fig11(&opts);
    }
    if want("table5") {
        table5(&opts);
    }
    if want("table6") {
        table6(&opts);
    }
    if want("fig12") {
        fig12(&opts);
    }
    if want("iolus") {
        iolus(&opts);
    }
    if want("hybrid") {
        hybrid(&opts);
    }
    if want("batch") {
        batch(&opts);
    }
    if want("persist") {
        persist(&opts);
    }
    if want("obs") {
        obs(&opts);
    }
    if want("par") {
        par(&opts);
    }
    if want("cluster") {
        cluster(&opts);
    }
    if want("trace") {
        trace(&opts);
    }
    if want("derived") {
        derived(&opts);
    }
}

fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a float for the JSON artifacts (fixed precision, always finite
/// because every measured quantity is a ratio of positive numbers).
fn jf(v: f64) -> String {
    format!("{v:.4}")
}

/// Artifact file name for this run: quick runs write
/// `BENCH_<name>.quick.json` so a smoke run never overwrites the
/// hours-long full run's numbers.
fn artifact_name(opts: &Opts, base: &str) -> String {
    if opts.quick {
        base.replace(".json", ".quick.json")
    } else {
        base.to_string()
    }
}

/// Write a machine-readable artifact next to the report output. Failure
/// is a warning, not an error: the report must still run on a read-only
/// working directory.
fn write_artifact(path: &str, json: &str) {
    match std::fs::write(path, json) {
        Ok(()) => println!("(wrote {path})\n"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Table 1: number of keys held by the server and by each user.
fn table1(opts: &Opts) {
    println!("## Table 1 — number of keys (analytical formulas vs live structures)\n");
    let n: u64 = if opts.quick { 64 } else { 256 };
    let d = 4u64;
    // Measure a live tree.
    let mut src = HmacDrbg::from_seed(1);
    let mut tree = kg_core::tree::KeyTree::new(d as usize, 8, &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
    }
    // And a live complete graph (small).
    let nc = 8u64;
    let mut complete = kg_core::complete::CompleteGroup::new(8);
    for i in 0..nc {
        complete.join(UserId(i), &mut src).unwrap();
    }

    let mut t = TextTable::new(&[
        "class",
        "total keys (formula)",
        "total keys (measured)",
        "keys/user (formula)",
        "keys/user (measured)",
    ]);
    t.row(vec![
        format!("star (n={n})"),
        (n + 1).to_string(),
        (n + 1).to_string(),
        "2".into(),
        "2".into(),
    ]);
    t.row(vec![
        format!("tree (n={n}, d={d})"),
        cost::server_total_keys(GraphClass::Tree, n, d).to_string(),
        tree.key_count().to_string(),
        cost::keys_per_user(GraphClass::Tree, n, d).to_string(),
        tree.height().to_string(),
    ]);
    t.row(vec![
        format!("complete (n={nc})"),
        cost::server_total_keys(GraphClass::Complete, nc, 0).to_string(),
        complete.key_count().to_string(),
        cost::keys_per_user(GraphClass::Complete, nc, 0).to_string(),
        complete.keys_held_by(UserId(0)).to_string(),
    ]);
    println!("{}", t.render());
}

/// Table 2: cost of a join/leave operation (server column measured live).
fn table2(opts: &Opts) {
    println!("## Table 2 — cost of a join/leave (encryptions; formulas vs measured)\n");
    let n: u64 = if opts.quick { 64 } else { 256 };
    let d = 4u64;
    let cfg = ExperimentConfig {
        n: n as usize,
        degree: d as usize,
        strategy: Strategy::GroupOriented,
        auth: AuthPolicy::None,
        ops: if opts.quick { 100 } else { 400 },
        seeds: vec![SEEDS[0]],
    };
    let r = run(&cfg);
    let h = cost::tree_height(n, d);
    let mut t = TextTable::new(&["quantity", "star", "tree formula", "tree measured", "complete"]);
    t.row(vec![
        "server/join".into(),
        cost::join_cost_server(GraphClass::Star, n, d).to_string(),
        format!("2(h-1) = {}", cost::join_cost_server(GraphClass::Tree, n, d)),
        f(r.join.encryptions_ave),
        format!("2^(n+1), n=8: {}", cost::join_cost_server(GraphClass::Complete, 8, 0)),
    ]);
    t.row(vec![
        "server/leave".into(),
        cost::leave_cost_server(GraphClass::Star, n, d).to_string(),
        format!("d(h-1) = {}", cost::leave_cost_server(GraphClass::Tree, n, d)),
        f(r.leave.encryptions_ave),
        "0".into(),
    ]);
    t.row(vec![
        "requester/join (decryptions)".into(),
        "1".into(),
        format!("h-1 = {}", h - 1),
        format!("{}", h - 1),
        "2^n".into(),
    ]);
    t.row(vec![
        "non-requester (decryptions)".into(),
        "1".into(),
        format!("d/(d-1) = {}", f(cost::join_cost_nonrequester(GraphClass::Tree, n, d))),
        f(r.client_all.key_changes_per_request),
        "2^(n-1) join / 0 leave".into(),
    ]);
    println!("{}", t.render());
    println!("(tree measured uses group-oriented rekeying; the measured join cost includes the joiner's unicast copy, per the Figure 7 protocol)\n");
}

/// Table 3: average cost per operation.
fn table3(opts: &Opts) {
    println!("## Table 3 — average cost per operation (joins:leaves = 1:1)\n");
    let n: u64 = if opts.quick { 64 } else { 8192 };
    let d = 4u64;
    let cfg = ExperimentConfig {
        n: n as usize,
        degree: d as usize,
        strategy: Strategy::GroupOriented,
        auth: AuthPolicy::None,
        ops: if opts.quick { 100 } else { 1000 },
        seeds: vec![SEEDS[0]],
    };
    let r = run(&cfg);
    let mut t =
        TextTable::new(&["cost", "star", "tree formula", "tree measured", "complete (n=8)"]);
    t.row(vec![
        "server".into(),
        f(cost::avg_cost_server(GraphClass::Star, n, d)),
        format!("(d+2)(h-1)/2 = {}", f(cost::avg_cost_server(GraphClass::Tree, n, d))),
        f(r.all.encryptions_ave),
        f(cost::avg_cost_server(GraphClass::Complete, 8, 0)),
    ]);
    t.row(vec![
        "a user".into(),
        "1".into(),
        format!("d/(d-1) = {}", f(cost::avg_cost_user(GraphClass::Tree, n, d))),
        f(r.client_all.key_changes_per_request),
        f(cost::avg_cost_user(GraphClass::Complete, 8, 0)),
    ]);
    println!("{}", t.render());
    println!(
        "(optimal degree by the continuous model: {} — the paper's \"around four\")\n",
        cost::optimal_degree(n)
    );
}

/// Table 4: signing technique comparison.
fn table4(opts: &Opts) {
    let n = if opts.quick { 512 } else { 8192 };
    println!("## Table 4 — one signature per message vs one per batch (n={n}, d=4)\n");
    let ops = if opts.quick { 60 } else { 200 };
    let seeds = if opts.quick { vec![SEEDS[0]] } else { SEEDS[..2].to_vec() };
    let mut t = TextTable::new(&[
        "strategy",
        "signing",
        "msg size join",
        "msg size leave",
        "proc ms join",
        "proc ms leave",
        "proc ms ave",
        "proc ms p50",
        "proc ms p99",
    ]);
    for strategy in Strategy::ALL {
        for (auth, name) in
            [(AuthPolicy::SignEach, "per-message"), (AuthPolicy::SignBatch, "batch (Merkle)")]
        {
            let r =
                run(&ExperimentConfig { n, degree: 4, strategy, auth, ops, seeds: seeds.clone() });
            t.row(vec![
                strategy.name().into(),
                name.into(),
                f(r.join.msg_size_ave),
                f(r.leave.msg_size_ave),
                f(r.join.proc_ms_ave),
                f(r.leave.proc_ms_ave),
                f((r.join.proc_ms_ave + r.leave.proc_ms_ave) / 2.0),
                f(r.all.proc_ms_p50),
                f(r.all.proc_ms_p99),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(paper, n=8192: key-oriented 140.1 ms per-message vs 14.5 ms batch — a ~10x reduction; group-oriented unaffected at 11.9 ms. p50/p99 are log-bucket histogram estimates over all requests; a p99 far above p50 marks the leave-heavy tail)\n");
}

/// Figure 10: server processing time vs group size.
fn fig10(opts: &Opts) {
    println!("## Figure 10 — server processing time per request vs group size (d=4)\n");
    let sizes: Vec<usize> =
        if opts.quick { vec![32, 128, 512] } else { vec![32, 128, 512, 2048, 8192] };
    let ops = if opts.quick { 100 } else { 300 };
    let seeds = if opts.quick { vec![SEEDS[0]] } else { SEEDS[..2].to_vec() };
    for (auth, label) in [
        (AuthPolicy::None, "encryption only"),
        (AuthPolicy::SignBatch, "encryption + MD5 + RSA-512 (batch signing)"),
    ] {
        println!("### {label}\n");
        let mut t = TextTable::new(&["n", "user (ms)", "key (ms)", "group (ms)"]);
        for &n in &sizes {
            let mut cells = vec![n.to_string()];
            for strategy in Strategy::ALL {
                let r = run(&ExperimentConfig {
                    n,
                    degree: 4,
                    strategy,
                    auth,
                    ops,
                    seeds: seeds.clone(),
                });
                cells.push(f(r.all.proc_ms_ave));
            }
            t.row(cells);
        }
        println!("{}", t.render());
    }
    println!("(expected shape: each column grows ~linearly in log n; group <= key <= user)\n");
}

/// Figure 11: server processing time vs key tree degree.
fn fig11(opts: &Opts) {
    println!("## Figure 11 — server processing time vs key tree degree\n");
    let n = if opts.quick { 512 } else { 8192 };
    let ops = if opts.quick { 100 } else { 200 };
    let seeds = vec![SEEDS[0]];
    let degrees = [2usize, 3, 4, 6, 8, 16];
    for (auth, label) in [
        (AuthPolicy::None, "encryption only"),
        (AuthPolicy::SignBatch, "encryption + MD5 + RSA-512 (batch signing)"),
    ] {
        println!("### {label} (n={n})\n");
        let mut t = TextTable::new(&["d", "user (ms)", "key (ms)", "group (ms)", "enc/op (group)"]);
        for &degree in &degrees {
            let mut cells = vec![degree.to_string()];
            let mut group_enc = 0.0;
            for strategy in Strategy::ALL {
                let r =
                    run(&ExperimentConfig { n, degree, strategy, auth, ops, seeds: seeds.clone() });
                cells.push(f(r.all.proc_ms_ave));
                if strategy == Strategy::GroupOriented {
                    group_enc = r.all.encryptions_ave;
                }
            }
            cells.push(f(group_enc));
            t.row(cells);
        }
        println!("{}", t.render());
    }
    println!("(expected shape: encryption cost minimized around d=4; group <= key <= user)\n");
}

/// Table 5: rekey messages sent by the server.
fn table5(opts: &Opts) {
    println!("## Table 5 — rekey messages sent by the server (with batch signing)\n");
    let n = if opts.quick { 512 } else { 8192 };
    let ops = if opts.quick { 100 } else { 250 };
    let seeds = vec![SEEDS[0]];
    for degree in [4usize, 8, 16] {
        println!("### degree {degree} (n={n})\n");
        let mut t = TextTable::new(&[
            "strategy",
            "join size ave",
            "join min",
            "join max",
            "leave size ave",
            "leave min",
            "leave max",
            "msgs/join",
            "msgs/leave",
            "proc ms p50",
            "proc ms p99",
        ]);
        for strategy in Strategy::ALL {
            let r = run(&ExperimentConfig {
                n,
                degree,
                strategy,
                auth: AuthPolicy::SignBatch,
                ops,
                seeds: seeds.clone(),
            });
            t.row(vec![
                strategy.name().into(),
                f(r.join.msg_size_ave),
                r.join.msg_size_min.to_string(),
                r.join.msg_size_max.to_string(),
                f(r.leave.msg_size_ave),
                r.leave.msg_size_min.to_string(),
                r.leave.msg_size_max.to_string(),
                f(r.join.msgs_per_op),
                f(r.leave.msgs_per_op),
                f(r.all.proc_ms_p50),
                f(r.all.proc_ms_p99),
            ]);
        }
        println!("{}", t.render());
    }
    println!("(paper shape at d=4: user/key = 7 msgs/join, 19 msgs/leave; group = 1 and 1, with the group-oriented leave message ~d x the join message. proc percentiles are log-bucket histogram estimates)\n");
}

/// Table 6: rekey messages received by a client.
fn table6(opts: &Opts) {
    println!("## Table 6 — rekey messages received by a client (with batch signing)\n");
    let n = if opts.quick { 512 } else { 8192 };
    let ops = if opts.quick { 100 } else { 250 };
    let seeds = vec![SEEDS[0]];
    for degree in [4usize, 8, 16] {
        println!("### degree {degree} (n={n})\n");
        let mut t =
            TextTable::new(&["strategy", "join size ave", "leave size ave", "msgs/request"]);
        for strategy in Strategy::ALL {
            let r = run(&ExperimentConfig {
                n,
                degree,
                strategy,
                auth: AuthPolicy::SignBatch,
                ops,
                seeds: seeds.clone(),
            });
            t.row(vec![
                strategy.name().into(),
                f(r.client_join.msg_size_ave),
                f(r.client_leave.msg_size_ave),
                f(r.client_all.msgs_per_request),
            ]);
        }
        println!("{}", t.render());
    }
    println!("(paper shape: every client receives exactly one message per request; user <= key <= group in received size; group-oriented leave messages grow with d)\n");
}

/// Figure 12: average key changes by a client per request.
fn fig12(opts: &Opts) {
    println!("## Figure 12 — key changes by a client per request\n");
    let ops = if opts.quick { 100 } else { 200 };
    let seeds = vec![SEEDS[0]];

    let n = if opts.quick { 512 } else { 8192 };
    println!("### vs key tree degree (n={n})\n");
    let mut t = TextTable::new(&["d", "measured", "d/(d-1)"]);
    for degree in [2usize, 3, 4, 6, 8, 12, 16] {
        let r = run(&ExperimentConfig {
            n,
            degree,
            strategy: Strategy::GroupOriented,
            auth: AuthPolicy::None,
            ops,
            seeds: seeds.clone(),
        });
        t.row(vec![
            degree.to_string(),
            f(r.client_all.key_changes_per_request),
            f(degree as f64 / (degree as f64 - 1.0)),
        ]);
    }
    println!("{}", t.render());

    println!("### vs initial group size (d=4)\n");
    let sizes: Vec<usize> =
        if opts.quick { vec![32, 128, 512] } else { vec![32, 128, 512, 2048, 8192] };
    let mut t = TextTable::new(&["n", "measured", "d/(d-1)"]);
    for nn in sizes {
        let r = run(&ExperimentConfig {
            n: nn,
            degree: 4,
            strategy: Strategy::GroupOriented,
            auth: AuthPolicy::None,
            ops,
            seeds: seeds.clone(),
        });
        t.row(vec![nn.to_string(), f(r.client_all.key_changes_per_request), f(4.0 / 3.0)]);
    }
    println!("{}", t.render());
    println!("(expected: flat in n, approaching d/(d-1) — the Table 3 user cost)\n");
}

/// Section 7 extension: the hybrid strategy, compared to key- and
/// group-oriented rekeying on messages, bytes, and multicast addresses.
fn hybrid(opts: &Opts) {
    use kg_core::rekey::Rekeyer;
    use kg_core::tree::KeyTree;

    println!("## Section 7 extension — hybrid rekeying (one multicast address per root child)\n");
    let n = if opts.quick { 256u64 } else { 4096 };
    let d = 4usize;
    let mut src = HmacDrbg::from_seed(0x42);
    let mut tree = KeyTree::new(d, 8, &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
    }
    // One leave measured under each packaging.
    let ev = tree.leave(UserId(n / 2), &mut src).unwrap();
    let roots = tree.root_children();
    let mut ivs = HmacDrbg::from_seed(0x43);
    let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
    let key = rk.leave(&ev, Strategy::KeyOriented);
    let group = rk.leave(&ev, Strategy::GroupOriented);
    let hyb = rk.leave_hybrid(&ev, &roots);

    let keys_of = |out: &kg_core::rekey::RekeyOutput| {
        out.messages.iter().map(|m| m.key_count()).sum::<usize>()
    };
    let mut t = TextTable::new(&[
        "packaging",
        "messages",
        "total keys shipped",
        "encryptions",
        "mcast addresses needed",
    ]);
    t.row(vec![
        "key-oriented".into(),
        key.messages.len().to_string(),
        keys_of(&key).to_string(),
        key.ops.key_encryptions.to_string(),
        "one per k-node (~n·d/(d-1))".into(),
    ]);
    t.row(vec![
        "group-oriented".into(),
        group.messages.len().to_string(),
        keys_of(&group).to_string(),
        group.ops.key_encryptions.to_string(),
        "1 (whole group)".into(),
    ]);
    t.row(vec![
        "hybrid (§7)".into(),
        hyb.messages.len().to_string(),
        keys_of(&hyb).to_string(),
        hyb.ops.key_encryptions.to_string(),
        format!("{} (root children)", roots.len()),
    ]);
    println!("{}", t.render());
    println!("(hybrid keeps group-oriented's O(1) message count and encryption cost while only flooding the affected top-level subtree with the large message)\n");
}

/// Periodic batch rekeying (the `kg-batch` subsystem) vs the paper's
/// per-operation protocol, over the same Poisson churn workload.
fn batch(opts: &Opts) {
    println!("## Batch rekeying — periodic intervals vs per-operation (d=4, group-oriented, 1:1 join/leave Poisson churn)\n");
    let sizes: Vec<usize> =
        if opts.quick { vec![64, 256] } else { vec![64, 256, 1024, 4096, 16384] };
    let batch_sizes = [1usize, 4, 16, 64];
    let ops = if opts.quick { 96 } else { 384 };
    let seeds = if opts.quick { vec![SEEDS[0]] } else { SEEDS.to_vec() };
    let mut t = TextTable::new(&[
        "n",
        "batch",
        "intervals",
        "enc/req batched",
        "enc/req per-op",
        "mcast/req batched",
        "mcast/req per-op",
        "bytes/req batched",
        "bytes/req per-op",
    ]);
    let mut json_rows = Vec::new();
    for &n in &sizes {
        for &batch_size in &batch_sizes {
            let cfg =
                BatchConfig { ops, seeds: seeds.clone(), ..BatchConfig::baseline(n, batch_size) };
            let r = run_batch_comparison(&cfg);
            let per_req = |v: f64| v / ops as f64;
            t.row(vec![
                n.to_string(),
                batch_size.to_string(),
                format!("{:.0}", r.batched.flushes),
                f(per_req(r.batched.encryptions)),
                f(per_req(r.per_op.encryptions)),
                f(per_req(r.batched.multicasts)),
                f(per_req(r.per_op.multicasts)),
                f(per_req(r.batched.bytes)),
                f(per_req(r.per_op.bytes)),
            ]);
            json_rows.push(format!(
                "    {{\"n\": {n}, \"batch_size\": {batch_size}, \"intervals\": {}, \
                 \"enc_per_req_batched\": {}, \"enc_per_req_per_op\": {}, \
                 \"mcast_per_req_batched\": {}, \"mcast_per_req_per_op\": {}, \
                 \"bytes_per_req_batched\": {}, \"bytes_per_req_per_op\": {}}}",
                jf(r.batched.flushes),
                jf(per_req(r.batched.encryptions)),
                jf(per_req(r.per_op.encryptions)),
                jf(per_req(r.batched.multicasts)),
                jf(per_req(r.per_op.multicasts)),
                jf(per_req(r.batched.bytes)),
                jf(per_req(r.per_op.bytes)),
            ));
        }
    }
    println!("{}", t.render());
    println!("(expected shape: batch=1 pays a small join overhead — a batched join re-keys its whole path where the immediate Figure 7 protocol reuses old ancestor keys; from batch>=4 the consolidated interval marks each shared ancestor once, so encryptions and multicasts per request drop well below per-op and keep falling as the batch grows)\n");
    let json = format!(
        "{{\n  \"artifact\": \"batch\",\n  \"ops\": {ops},\n  \"seeds\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        seeds.len(),
        json_rows.join(",\n"),
    );
    write_artifact(&artifact_name(opts, "BENCH_batch.json"), &json);
}

/// Durability subsystem (`kg-persist`): WAL overhead under each fsync
/// policy, and time-to-recover as a function of log length.
fn persist(opts: &Opts) {
    println!("## Durability — WAL overhead and crash recovery (kg-persist, d=4, group-oriented)\n");
    let n = if opts.quick { 256 } else { 4096 };
    let ops = if opts.quick { 160 } else { 1000 };
    let seed = SEEDS[0];

    println!("### WAL overhead vs fsync policy (n={n}, {ops} requests, snapshots off)\n");
    let rows = run_persist_overhead(n, ops, seed);
    let mut t = TextTable::new(&["fsync policy", "elapsed ms", "ops/sec", "WAL KiB", "slowdown"]);
    for r in &rows {
        t.row(vec![
            r.policy.clone(),
            f(r.elapsed_ms),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.1}", r.wal_bytes as f64 / 1024.0),
            format!("{:.2}x", r.slowdown),
        ]);
    }
    println!("{}", t.render());
    let every_n = rows.iter().find(|r| r.policy == "every-32");
    if let Some(r) = every_n {
        println!("(fsync=every-32 slowdown vs no persistence: {:.2}x — target < 2x)\n", r.slowdown);
    }

    println!(
        "### Recovery time vs log length (n={n}, snapshots off so the full history replays)\n"
    );
    let churn_ops: Vec<usize> =
        if opts.quick { vec![100, 400] } else { vec![250, 1000, 4000, 16000] };
    let curve = run_recovery_curve(n, &churn_ops, seed);
    let mut t = TextTable::new(&["WAL records", "WAL KiB", "recover ms", "ms / 1k records"]);
    for p in &curve {
        t.row(vec![
            p.wal_ops.to_string(),
            format!("{:.1}", p.wal_bytes as f64 / 1024.0),
            f(p.recover_ms),
            f(p.recover_ms * 1000.0 / p.wal_ops as f64),
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: recovery time grows linearly in log length — which is exactly why snapshots truncate the log; with default thresholds the replayed tail is bounded by snapshot_every_ops)\n");

    let overhead_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"policy\": \"{}\", \"elapsed_ms\": {}, \"ops_per_sec\": {}, \
                 \"wal_bytes\": {}, \"slowdown\": {}}}",
                r.policy,
                jf(r.elapsed_ms),
                jf(r.ops_per_sec),
                r.wal_bytes,
                jf(r.slowdown),
            )
        })
        .collect();
    let recovery_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "    {{\"wal_ops\": {}, \"wal_bytes\": {}, \"recover_ms\": {}}}",
                p.wal_ops,
                p.wal_bytes,
                jf(p.recover_ms),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"artifact\": \"persist\",\n  \"n\": {n},\n  \"ops\": {ops},\n  \"seed\": {seed},\n  \
         \"overhead\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ]\n}}\n",
        overhead_json.join(",\n"),
        recovery_json.join(",\n"),
    );
    write_artifact(&artifact_name(opts, "BENCH_persist.json"), &json);
}

/// Observability layer (`kg-obs`): instrumentation overhead vs a
/// disabled handle, and a counter/WAL reconciliation after a crash.
fn obs(opts: &Opts) {
    println!("## Observability — kg-obs overhead and crash reconciliation (d=4, group-oriented)\n");
    let n = if opts.quick { 256 } else { 2048 };
    let ops = if opts.quick { 400 } else { 1000 };
    let repeats = if opts.quick { 7 } else { 11 };
    let seed = SEEDS[0];

    println!("### Instrumentation overhead (n={n}, {ops} requests, median of {repeats})\n");
    let o = run_obs_overhead(n, ops, seed, repeats);
    let mut t = TextTable::new(&["mode", "elapsed ms", "ops/sec"]);
    t.row(vec![
        "ObsConfig::disabled()".into(),
        f(o.baseline_ms),
        format!("{:.0}", ops as f64 / (o.baseline_ms / 1e3).max(1e-9)),
    ]);
    t.row(vec![
        "enabled (spans+counters+timeline)".into(),
        f(o.observed_ms),
        format!("{:.0}", ops as f64 / (o.observed_ms / 1e3).max(1e-9)),
    ]);
    println!("{}", t.render());
    println!("(overhead: {:+.2}% — target < 5%)\n", o.overhead_pct);

    println!("### What the enabled handle saw\n");
    let mut t = TextTable::new(&["quantity", "value"]);
    t.row(vec!["kg_requests_total (join+leave)".into(), o.requests_total.to_string()]);
    t.row(vec!["kg_encryptions_total".into(), o.encryptions_total.to_string()]);
    t.row(vec![
        "op.join span p50/p99 (us)".into(),
        format!("{} / {}", o.join_span.p50, o.join_span.p99),
    ]);
    t.row(vec![
        "op.leave span p50/p99 (us)".into(),
        format!("{} / {}", o.leave_span.p50, o.leave_span.p99),
    ]);
    t.row(vec!["timeline events".into(), o.timeline_total.to_string()]);
    t.row(vec!["prometheus exposition lines".into(), o.prometheus_lines.to_string()]);
    println!("{}", t.render());

    let rn = if opts.quick { 128 } else { 512 };
    let rops = if opts.quick { 100 } else { 400 };
    println!("### Counter / WAL reconciliation after a crash (n={rn}, {rops} requests)\n");
    let r = run_obs_reconcile(rn, rops, seed);
    let mut t = TextTable::new(&["account", "operations"]);
    t.row(vec!["expected (initial joins + requests)".into(), r.expected_ops.to_string()]);
    t.row(vec!["WalAppend timeline events".into(), r.wal_append_events.to_string()]);
    t.row(vec!["kg_requests_total counter".into(), r.requests_counter.to_string()]);
    t.row(vec!["ServerStats records pushed".into(), r.stats_records.to_string()]);
    t.row(vec!["WAL records replayed on recovery".into(), r.records_replayed.to_string()]);
    println!("{}", t.render());
    println!(
        "(recovered event seen: {}; all accounts {} — the timeline, the metrics registry, the stats vector, and the log on disk agree on what happened)\n",
        r.recovered_event_seen,
        if r.consistent() { "CONSISTENT" } else { "INCONSISTENT" },
    );

    let json = format!(
        "{{\n  \"artifact\": \"obs\",\n  \"n\": {n},\n  \"ops\": {ops},\n  \"seed\": {seed},\n  \
         \"overhead\": {{\"baseline_ms\": {}, \"observed_ms\": {}, \"overhead_pct\": {}, \
         \"requests_total\": {}, \"encryptions_total\": {}, \"timeline_events\": {}, \
         \"prometheus_lines\": {}, \
         \"join_span_us\": {{\"p50\": {}, \"p99\": {}}}, \
         \"leave_span_us\": {{\"p50\": {}, \"p99\": {}}}}},\n  \
         \"reconcile\": {{\"n\": {rn}, \"ops\": {rops}, \"expected_ops\": {}, \
         \"wal_append_events\": {}, \"requests_counter\": {}, \"stats_records\": {}, \
         \"records_replayed\": {}, \"recovered_event_seen\": {}, \"consistent\": {}}}\n}}\n",
        jf(o.baseline_ms),
        jf(o.observed_ms),
        jf(o.overhead_pct),
        o.requests_total,
        o.encryptions_total,
        o.timeline_total,
        o.prometheus_lines,
        o.join_span.p50,
        o.join_span.p99,
        o.leave_span.p50,
        o.leave_span.p99,
        r.expected_ops,
        r.wal_append_events,
        r.requests_counter,
        r.stats_records,
        r.records_replayed,
        r.recovered_event_seen,
        r.consistent(),
    );
    write_artifact(&artifact_name(opts, "BENCH_obs.json"), &json);
}

/// Section 6: Iolus comparison.
fn iolus(opts: &Opts) {
    println!("## Section 6 — key graphs vs Iolus (membership-time vs send-time work)\n");
    let n = if opts.quick { 256 } else { 4096 };
    // Key-graph side: measured server encryptions per request.
    let kg = run(&ExperimentConfig {
        n,
        degree: 4,
        strategy: Strategy::GroupOriented,
        auth: AuthPolicy::None,
        ops: if opts.quick { 100 } else { 400 },
        seeds: vec![SEEDS[0]],
    });
    // Iolus side: a 3-level agent hierarchy sized for n clients.
    let mut src = HmacDrbg::from_seed(4);
    let fanout = 8usize;
    let capacity = n / (fanout * fanout) + 1;
    let mut sys = IolusSystem::new(3, fanout, capacity, KeyCipher::des_cbc(), &mut src);
    for i in 0..n as u64 {
        sys.join(UserId(i), &mut src).unwrap();
    }
    // Measure Iolus join/leave/send costs.
    let jops = sys.join(UserId(900_000), &mut src).unwrap();
    let lops = sys.leave(UserId(0), &mut src).unwrap();
    let msg = sys.send_to_group(UserId(1), b"payload", &mut src).unwrap();

    let mut t = TextTable::new(&["quantity", "key graphs (d=4)", "iolus (8x8 agents)"]);
    t.row(vec![
        "encryptions per join".into(),
        f(kg.join.encryptions_ave),
        jops.encryptions.to_string(),
    ]);
    t.row(vec![
        "encryptions per leave".into(),
        f(kg.leave.encryptions_ave),
        lops.encryptions.to_string(),
    ]);
    t.row(vec![
        "extra work per group message".into(),
        "0 (shared group key)".into(),
        format!(
            "{} agent decrypts + {} re-encrypts",
            msg.ops.agent_decryptions, msg.ops.encryptions
        ),
    ]);
    t.row(vec![
        "trusted entities".into(),
        "1 (the key server)".into(),
        sys.agent_count().to_string(),
    ]);
    println!("{}", t.render());
    println!("(the paper's point: both are O(log n)-ish at membership time, but Iolus moves the '1 affects n' work onto every data message and multiplies the trust surface)\n");
}

/// Parallel rekey pipeline: speedup curve vs worker count and cache hit
/// rates, with byte-identity vs the sequential path asserted inside the
/// harness (a divergence panics the report).
fn par(opts: &Opts) {
    println!("## Parallel pipeline — rekey-construction speedup and encryption cache (d=4, group-oriented interval)\n");
    let sizes: &[usize] = if opts.quick { &[256] } else { &[4096, 8192] };
    let worker_counts: Vec<usize> = if opts.quick { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let requests = if opts.quick { 64 } else { 256 };
    let reps = if opts.quick { 3 } else { 11 };

    let mut results = Vec::new();
    for &n in sizes {
        let r = run_par_speedup(&ParConfig {
            n,
            degree: 4,
            requests,
            worker_counts: worker_counts.clone(),
            reps,
            seed: SEEDS[0],
        });
        println!(
            "### n={n}: one interval of {requests} requests, {} key encryptions, {} reps (output byte-identical at every worker count)\n",
            r.encryptions_per_interval, reps
        );
        println!(
            "phase split: plan {} ms + encrypt {} ms per interval -> {:.0}% parallelizable (Amdahl bound {:.2}x at 4 workers)",
            f(r.plan_ms),
            f(r.encrypt_ms),
            100.0 * r.parallel_fraction(),
            r.amdahl_bound(4),
        );
        println!("hardware threads on this host: {}\n", r.hardware_threads);
        let mut t = TextTable::new(&["workers", "elapsed ms", "requests/sec", "speedup", "note"]);
        for p in &r.points {
            let note = if p.workers > r.hardware_threads {
                "hardware-capped (workers > cores)"
            } else {
                ""
            };
            t.row(vec![
                p.workers.to_string(),
                f(p.elapsed_ms),
                format!("{:.0}", p.throughput),
                format!("{:.2}x", p.speedup),
                note.into(),
            ]);
        }
        println!("{}", t.render());
        if r.hardware_threads < 2 {
            println!("(single hardware thread: worker threads time-slice one core, so no wall-clock speedup is measurable on this host — the Amdahl bound above is what the measured phase split supports on a multi-core host)\n");
        }
        results.push(r);
    }

    println!("### Encryption cache over the measured interval (per strategy, sequential path)\n");
    let r0 = &results[0];
    let mut t = TextTable::new(&[
        "strategy",
        "cache hits",
        "misses (ciphertexts)",
        "hit rate",
        "key encryptions",
    ]);
    for c in &r0.cache {
        t.row(vec![
            c.strategy.into(),
            c.hits.to_string(),
            c.misses.to_string(),
            format!("{:.1}%", c.hit_rate_pct()),
            c.key_encryptions.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(hits are the stored-ciphertext reuses of Figures 6/8 — the key-oriented chain links; group-oriented covers have no repeats by construction, so its hit rate is honestly 0)\n");

    let mut json = String::from("{\n  \"curves\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"n\": {}, \"degree\": 4, \"requests\": {}, \"reps\": {}, \"encryptions_per_interval\": {}, \"identical_output\": true, \"hardware_threads\": {}, \"plan_ms\": {}, \"encrypt_ms\": {}, \"parallel_fraction\": {}, \"amdahl_bound_4_workers\": {}, \"points\": [",
            r.config.n,
            r.config.requests,
            r.config.reps,
            r.encryptions_per_interval,
            r.hardware_threads,
            jf(r.plan_ms),
            jf(r.encrypt_ms),
            jf(r.parallel_fraction()),
            jf(r.amdahl_bound(4)),
        ));
        for (k, p) in r.points.iter().enumerate() {
            if k > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "\n      {{\"workers\": {}, \"elapsed_ms\": {}, \"throughput\": {}, \"speedup\": {}, \"hardware_capped\": {}}}",
                p.workers,
                jf(p.elapsed_ms),
                jf(p.throughput),
                jf(p.speedup),
                p.workers > r.hardware_threads,
            ));
        }
        json.push_str("\n    ]}");
    }
    json.push_str("\n  ],\n  \"cache\": [");
    for (i, c) in r0.cache.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"strategy\": \"{}\", \"hits\": {}, \"misses\": {}, \"hit_rate_pct\": {}, \"key_encryptions\": {}}}",
            c.strategy,
            c.hits,
            c.misses,
            jf(c.hit_rate_pct()),
            c.key_encryptions
        ));
    }
    json.push_str("\n  ]\n}\n");
    write_artifact(&artifact_name(opts, "BENCH_par.json"), &json);
}

/// Cluster: a sharded deployment driven to seven-figure membership on
/// the in-process simulator, with per-shard and aggregated load.
fn cluster(opts: &Opts) {
    use kg_bench::{run_cluster_scale, ClusterBenchConfig};
    println!("## Cluster — sharded deployment at scale (d=4, group-oriented, batched intervals)\n");
    let cfg = if opts.quick {
        ClusterBenchConfig {
            shards: 4,
            span: 4,
            members: 16_384,
            chunk: 2048,
            churn: 256,
            seed: 17,
        }
    } else {
        ClusterBenchConfig {
            shards: 4,
            span: 4,
            members: 1 << 20,
            chunk: 8192,
            churn: 2048,
            seed: 17,
        }
    };
    println!(
        "### One group spanned over {} shards, {} members admitted {} per interval\n",
        cfg.span, cfg.members, cfg.chunk
    );
    let r = run_cluster_scale(&cfg);

    let mut t = TextTable::new(&["shard", "members", "intervals", "requests", "encryptions"]);
    for s in &r.shards {
        t.row(vec![
            s.shard.to_string(),
            s.members.to_string(),
            s.intervals.to_string(),
            s.requests.to_string(),
            s.encryptions.to_string(),
        ]);
    }
    t.row(vec![
        "total".into(),
        r.shards.iter().map(|s| s.members).sum::<u64>().to_string(),
        r.shards.iter().map(|s| s.intervals).sum::<u64>().to_string(),
        r.shards.iter().map(|s| s.requests).sum::<u64>().to_string(),
        r.shards.iter().map(|s| s.encryptions).sum::<u64>().to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "build: {} members in {:.1}s ({:.0} joins/sec); churn of {} leave/join pairs in {:.1}s",
        cfg.members, r.build_secs, r.joins_per_sec, cfg.churn, r.churn_secs
    );
    println!(
        "router directory: {} members; shutdown ack: members={} wal_tail={}\n",
        r.directory_len, r.shutdown_members, r.shutdown_wal_tail
    );
    println!("(per-slice key trees stay at height log_d(n/span): a million-member group is four ~262k trees, so per-interval rekey cost scales with the slice, not the group — the Iolus §6 decomposition with the router standing in for the GSA hierarchy)\n");

    let counters_json = |cs: &[(String, u64)], indent: &str| -> String {
        cs.iter()
            .map(|(k, v)| {
                // Rendered counter names carry label quotes: foo{l="x"}.
                let k = k.replace('\\', "\\\\").replace('"', "\\\"");
                format!("{indent}{{\"name\": \"{k}\", \"value\": {v}}}")
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let shards_json: Vec<String> = r
        .shards
        .iter()
        .map(|s| {
            format!(
                "    {{\"shard\": {}, \"members\": {}, \"intervals\": {}, \"requests\": {}, \
                 \"encryptions\": {}, \"counters\": [\n{}\n    ]}}",
                s.shard,
                s.members,
                s.intervals,
                s.requests,
                s.encryptions,
                counters_json(&s.counters, "      ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"shards\": {}, \"span\": {}, \"members\": {}, \"chunk\": {}, \
         \"churn\": {}, \"seed\": {}}},\n  \"build_secs\": {},\n  \"joins_per_sec\": {},\n  \
         \"churn_secs\": {},\n  \"total_members\": {},\n  \"directory_len\": {},\n  \
         \"shutdown\": {{\"members\": {}, \"wal_tail\": {}}},\n  \"shards\": [\n{}\n  ],\n  \
         \"aggregated\": [\n{}\n  ],\n  \"router\": [\n{}\n  ]\n}}\n",
        cfg.shards,
        cfg.span,
        cfg.members,
        cfg.chunk,
        cfg.churn,
        cfg.seed,
        jf(r.build_secs),
        jf(r.joins_per_sec),
        jf(r.churn_secs),
        r.total_members,
        r.directory_len,
        r.shutdown_members,
        r.shutdown_wal_tail,
        shards_json.join(",\n"),
        counters_json(&r.aggregated, "    "),
        counters_json(&r.router_counters, "    "),
    );
    write_artifact(&artifact_name(opts, "BENCH_cluster.json"), &json);
}

/// Telemetry plane: the cluster-wide per-op rekey-cost ledger, trace
/// reassembly health, and the price of running the plane at all.
fn trace(opts: &Opts) {
    println!(
        "## Telemetry plane — rekey-cost ledger, trace stitching, and overhead (d=4, sharded)\n"
    );
    let cfg = if opts.quick {
        TraceBenchConfig {
            shards: 2,
            members: 128,
            churn: 16,
            reps: 3,
            seed: 23,
            telemetry_interval_ms: 50,
        }
    } else {
        TraceBenchConfig {
            shards: 4,
            members: 4096,
            churn: 256,
            reps: 7,
            seed: 23,
            telemetry_interval_ms: 50,
        }
    };
    let r = run_trace_plane(&cfg);

    println!(
        "### Per-op rekey cost, aggregated across {} shards ({} members, {} churn pairs per run)\n",
        cfg.shards, cfg.members, cfg.churn
    );
    let mut t = TextTable::new(&[
        "op (strategy:kind)",
        "ops",
        "enc/op",
        "msgs/op",
        "bytes/op",
        "nodes/op",
        "cache hits/op",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.op.clone(),
            row.ops.to_string(),
            f(row.per_op(row.encryptions)),
            f(row.per_op(row.messages)),
            format!("{:.0}", row.per_op(row.bytes)),
            f(row.per_op(row.nodes_touched)),
            f(row.per_op(row.cache_hits)),
        ]);
    }
    println!("{}", t.render());
    println!("(Table 4/5 shape from live counters: user/key pay O(log n) messages per op where group pays O(1); the key-oriented cache-hit column is the Figures 6/8 stored-ciphertext reuse; batch rows amortize the interval over its requests)\n");

    println!("### Cross-process trace reassembly\n");
    let mut t = TextTable::new(&["quantity", "value"]);
    t.row(vec!["traces stored".into(), r.traces_stored.to_string()]);
    t.row(vec!["fully stitched".into(), r.traces_stitched.to_string()]);
    if let Some(s) = &r.sample {
        t.row(vec!["sample spans".into(), s.spans.to_string()]);
        t.row(vec!["sample hops".into(), s.hops.to_string()]);
        t.row(vec!["router-observed window (us)".into(), s.router_window_us.to_string()]);
        t.row(vec!["node-internal window (us)".into(), s.node_window_us.to_string()]);
    }
    println!("{}", t.render());
    if let Some(s) = &r.sample {
        println!("sample trace:\n{}", s.rendered);
    }

    println!("### Plane overhead (median of {} interleaved repeats)\n", cfg.reps);
    let mut t = TextTable::new(&["mode", "elapsed ms"]);
    t.row(vec!["tracing + telemetry off".into(), f(r.baseline_ms)]);
    t.row(vec!["tracing + telemetry on".into(), f(r.traced_ms)]);
    println!("{}", t.render());
    println!("(overhead: {:+.2}% — target < 5%)\n", r.overhead_pct);

    let rows_json: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"op\": \"{}\", \"ops\": {}, \"encryptions\": {}, \"messages\": {}, \
                 \"bytes\": {}, \"nodes_touched\": {}, \"cache_hits\": {}, \
                 \"enc_per_op\": {}, \"msgs_per_op\": {}, \"bytes_per_op\": {}}}",
                row.op,
                row.ops,
                row.encryptions,
                row.messages,
                row.bytes,
                row.nodes_touched,
                row.cache_hits,
                jf(row.per_op(row.encryptions)),
                jf(row.per_op(row.messages)),
                jf(row.per_op(row.bytes)),
            )
        })
        .collect();
    let sample_json = match &r.sample {
        Some(s) => format!(
            "{{\"trace_id\": {}, \"spans\": {}, \"hops\": {}, \"router_window_us\": {}, \
             \"node_window_us\": {}}}",
            s.trace_id, s.spans, s.hops, s.router_window_us, s.node_window_us
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"artifact\": \"trace\",\n  \"config\": {{\"shards\": {}, \"members\": {}, \
         \"churn\": {}, \"reps\": {}, \"seed\": {}, \"telemetry_interval_ms\": {}}},\n  \
         \"ledger\": [\n{}\n  ],\n  \"traces\": {{\"stored\": {}, \"stitched\": {}, \
         \"sample\": {}}},\n  \"overhead\": {{\"baseline_ms\": {}, \"traced_ms\": {}, \
         \"overhead_pct\": {}}}\n}}\n",
        cfg.shards,
        cfg.members,
        cfg.churn,
        cfg.reps,
        cfg.seed,
        cfg.telemetry_interval_ms,
        rows_json.join(",\n"),
        r.traces_stored,
        r.traces_stitched,
        sample_json,
        jf(r.baseline_ms),
        jf(r.traced_ms),
        jf(r.overhead_pct),
    );
    write_artifact(&artifact_name(opts, "BENCH_trace.json"), &json);
}

/// Client-derived rekeying (`strategy = derived`) vs the paper's shipped
/// strategies: per-op seals, key encryptions, and wire bytes at large n.
fn derived(opts: &Opts) {
    println!(
        "## Client-derived rekeying — server cost vs shipped strategies (d=4, immediate mode)\n"
    );
    let sizes: Vec<usize> = if opts.quick { vec![256, 1024] } else { vec![4096, 16384, 65536] };
    let probes = if opts.quick { 16 } else { 64 };
    let seed = SEEDS[0];
    let mut t = TextTable::new(&[
        "n",
        "strategy",
        "join seals",
        "join encs",
        "join bytes",
        "leave seals",
        "leave encs",
        "leave bytes",
        "refresh seals",
        "refresh bytes",
    ]);
    let mut json_rows = Vec::new();
    for &n in &sizes {
        for strategy in Strategy::EVERY {
            let r = run_derived_costs(n, probes, seed, strategy);
            t.row(vec![
                n.to_string(),
                strategy.to_string(),
                f(r.join.seals),
                f(r.join.encryptions),
                f(r.join.bytes),
                f(r.leave.seals),
                f(r.leave.encryptions),
                f(r.leave.bytes),
                f(r.refresh.seals),
                f(r.refresh.bytes),
            ]);
            let phase = |p: &kg_bench::DerivedPhase| {
                format!(
                    "{{\"seals_per_op\": {}, \"enc_per_op\": {}, \"msgs_per_op\": {}, \
                     \"bytes_per_op\": {}}}",
                    jf(p.seals),
                    jf(p.encryptions),
                    jf(p.messages),
                    jf(p.bytes),
                )
            };
            json_rows.push(format!(
                "    {{\"n\": {n}, \"strategy\": \"{strategy}\", \"join\": {}, \
                 \"leave\": {}, \"refresh\": {}}}",
                phase(&r.join),
                phase(&r.leave),
                phase(&r.refresh),
            ));
        }
    }
    println!("{}", t.render());
    println!("(expected shape: derived joins seal exactly 1 bundle and derived refreshes 0 at every n — the members recompute changed keys from the published derivation code — where every shipped strategy's seal count grows with the tree height; derived leaves match group-oriented, since keys the departed member could derive must be shipped instead)\n");
    let json = format!(
        "{{\n  \"artifact\": \"derived\",\n  \"probes\": {probes},\n  \"seed\": {seed},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    write_artifact(&artifact_name(opts, "BENCH_derived.json"), &json);
}
