//! # kg-par: parallel rekey encryption pipeline
//!
//! The rekey messages of §3 are built from many *independent* DES-CBC
//! encryptions (one per key bundle) plus per-packet MD5/RSA
//! authentication — embarrassingly parallel work that the sequential
//! server nevertheless performs one bundle at a time. This crate fans
//! that work across cores while keeping the server's defining
//! invariant: **the bytes on the wire are identical to the sequential
//! path**, so recovery replay, golden-transcript tests, and clients
//! cannot tell the difference.
//!
//! Two pieces:
//!
//! * [`WorkerPool`] — a from-scratch work-stealing thread pool
//!   (std-only: no rayon, no crossbeam, no `unsafe`) with persistent
//!   workers, per-worker stealing deques, and an order-preserving
//!   [`WorkerPool::scatter`].
//! * [`ParRekeyer`] — plan/execute/patch construction on top of the
//!   [`kg_core::rekey::BundleSink`] abstraction: a [`PlanSink`] records
//!   each encryption as an [`EncryptJob`] while drawing IVs in the
//!   exact sequential order, the pool executes the jobs in any order,
//!   and a patch pass merges ciphertexts back deterministically.
//!
//! A keyed [`kg_core::rekey::BundleCache`] sits in front of both paths,
//! so overlapping key-covers within one operation (key-oriented chains,
//! batched intervals) never seal the same (encrypting-key, payload)
//! pair twice. Cache keys include the key *version*; replacing a key
//! invalidates its entries by construction.
//!
//! Wired into `kg-server` behind `ParallelConfig { workers }`:
//! `workers = 1` (the default) bypasses this crate entirely.

pub mod pipeline;
pub mod pool;

pub use pipeline::{EncryptJob, ParRekeyer, PlanSink, MIN_FANOUT};
pub use pool::WorkerPool;
