//! A from-scratch work-stealing worker pool over std threads.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** The build environment vendors only minimal
//!    stand-ins, so the pool is std-only: `thread`, `Mutex`, `Condvar`,
//!    `mpsc`. No `unsafe` anywhere (the workspace forbids it), which
//!    rules out the classic lock-free Chase–Lev deque; instead the
//!    per-worker deques live behind one registry lock and tasks are
//!    *chunked* so the lock is taken once per chunk, not once per
//!    encryption. With chunks sized to tens of DES jobs the lock is
//!    cold (~2·workers acquisitions per scatter).
//! 2. **Persistent threads.** Spawning costs more than a typical rekey
//!    interval's encryption work; the pool spawns `workers − 1` threads
//!    once and parks them on a condvar between scatters. The calling
//!    thread is the remaining worker: it submits, then steals work like
//!    any other worker until the scatter drains, so `workers = N` means
//!    N threads computing and no oversubscription.
//! 3. **Deterministic merge.** Results are delivered as
//!    `(index, value)` pairs over a channel and reassembled by index,
//!    so the output order is the submission order no matter which
//!    worker ran what, or in what order chunks finished.
//!
//! Stealing discipline: a worker pops its *own* deque from the front
//! (LIFO-ish locality on the chunks it was dealt) and steals from the
//! *back* of the longest other deque, the standard way to take the
//! coldest work and minimize interference.

use kg_obs::{Gauge, Histogram, Obs};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Deques + bookkeeping behind the registry lock.
struct State {
    /// One deque per worker (index 0 = the calling thread).
    queues: Vec<VecDeque<Task>>,
    /// Tasks submitted and not yet finished executing.
    outstanding: usize,
    shutdown: bool,
}

/// Observability handles, resolved once at [`WorkerPool::attach_obs`].
#[derive(Default)]
struct PoolObs {
    /// `kg_par_queue_depth`: chunks queued at each submission.
    queue_depth: Gauge,
    /// `kg_par_worker_us{worker=i}`: per-chunk busy time per worker.
    worker_us: Vec<Histogram>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here while all deques are empty.
    work: Condvar,
    /// `scatter` parks here waiting for stragglers.
    done: Condvar,
    obs: Mutex<PoolObs>,
}

impl Shared {
    /// Pop a task: own deque front first, then steal from the back of
    /// the longest other deque.
    fn grab(&self, me: usize) -> Option<Task> {
        let mut st = self.state.lock().expect("pool lock");
        if let Some(t) = st.queues[me].pop_front() {
            return Some(t);
        }
        let victim = (0..st.queues.len())
            .filter(|&i| i != me && !st.queues[i].is_empty())
            .max_by_key(|&i| st.queues[i].len())?;
        st.queues[victim].pop_back()
    }

    /// Record one finished task; wake the submitter on the last one.
    fn finish_one(&self) {
        let mut st = self.state.lock().expect("pool lock");
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.done.notify_all();
        }
    }

    fn worker_timer(&self, me: usize) -> Histogram {
        let obs = self.obs.lock().expect("pool obs lock");
        obs.worker_us.get(me).cloned().unwrap_or_default()
    }

    /// Run tasks until none can be grabbed. Returns how many ran.
    fn drain(&self, me: usize) -> usize {
        let timer = self.worker_timer(me);
        let mut ran = 0;
        while let Some(task) = self.grab(me) {
            let start = Instant::now();
            task();
            timer.record(start.elapsed().as_micros() as u64);
            self.finish_one();
            ran += 1;
        }
        ran
    }
}

/// A fixed-size pool of persistent worker threads with per-worker
/// stealing deques and an order-preserving [`scatter`](Self::scatter).
///
/// `WorkerPool::new(n)` spawns `n − 1` background threads; the thread
/// calling `scatter` is worker 0. Dropping the pool joins all threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Create a pool computing on `workers` threads total (the caller
    /// plus `workers − 1` spawned ones).
    ///
    /// # Panics
    /// Panics if `workers < 2` — a 1-worker "pool" is the sequential
    /// path and must not pay for threads (callers gate on this).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 2, "WorkerPool needs >= 2 workers; use the inline path for 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                outstanding: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            obs: Mutex::new(PoolObs::default()),
        });
        let handles = (1..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kg-par-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles, workers }
    }

    /// Total computing threads (callers + spawned).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolve the pool's metric handles against `obs`: the
    /// `kg_par_queue_depth` gauge and one `kg_par_worker_us{worker=i}`
    /// histogram per worker (worker 0 is the calling thread).
    pub fn attach_obs(&self, obs: &Obs) {
        let mut po = self.shared.obs.lock().expect("pool obs lock");
        po.queue_depth = obs.gauge("kg_par_queue_depth");
        po.worker_us = (0..self.workers)
            .map(|i| obs.histogram_with("kg_par_worker_us", "worker", &i.to_string()))
            .collect();
    }

    /// Apply `f` to every item on the pool and return the results in
    /// item order (a deterministic merge: output position `i` is
    /// `f(i, items[i])` regardless of scheduling).
    ///
    /// Items are grouped into chunks (several per worker, so faster
    /// workers steal the tail), dealt round-robin to the worker deques,
    /// and executed by the spawned workers *and* the calling thread.
    /// Blocks until every item is done.
    pub fn scatter<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Several chunks per worker so stealing can balance uneven
        // chunk costs; bounded below so tiny scatters don't pay one
        // dispatch per item.
        let target_chunks = self.workers * 4;
        let chunk_len = n.div_ceil(target_chunks).max(8);
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();

        let mut tasks: Vec<Task> = Vec::new();
        let mut items = items.into_iter();
        let mut start = 0;
        while start < n {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            let len = chunk.len();
            let f = Arc::clone(&f);
            let tx = tx.clone();
            tasks.push(Box::new(move || {
                let out: Vec<R> =
                    chunk.into_iter().enumerate().map(|(k, item)| f(start + k, item)).collect();
                // The receiver outlives every task (scatter holds it),
                // so this send cannot fail.
                tx.send((start, out)).expect("scatter receiver alive");
            }));
            start += len;
        }
        drop(tx);
        let n_tasks = tasks.len();

        {
            let mut st = self.shared.state.lock().expect("pool lock");
            for (i, task) in tasks.into_iter().enumerate() {
                let q = i % self.workers;
                st.queues[q].push_back(task);
            }
            st.outstanding += n_tasks;
            self.shared.obs.lock().expect("pool obs lock").queue_depth.set(n_tasks as i64);
            self.shared.work.notify_all();
        }

        // The calling thread is worker 0: help until the deques drain,
        // then wait for stragglers still executing on other workers.
        self.shared.drain(0);
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            while st.outstanding > 0 {
                st = self.shared.done.wait(st).expect("pool lock");
            }
        }
        self.shared.obs.lock().expect("pool obs lock").queue_depth.set(0);

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (chunk_start, values) in rx.try_iter() {
            for (k, v) in values.into_iter().enumerate() {
                out[chunk_start + k] = Some(v);
            }
        }
        out.into_iter().map(|v| v.expect("every index produced")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        shared.drain(me);
        let mut st = shared.state.lock().expect("pool lock");
        loop {
            if st.shutdown {
                return;
            }
            if st.queues.iter().any(|q| !q.is_empty()) {
                break; // go drain again
            }
            st = shared.work.wait(st).expect("pool lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_item_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.scatter(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn scatter_handles_empty_and_tiny_inputs() {
        let pool = WorkerPool::new(2);
        assert!(pool.scatter(Vec::<u8>::new(), |_, x| x).is_empty());
        assert_eq!(pool.scatter(vec![9u8], |_, x| x + 1), vec![10]);
        assert_eq!(pool.scatter(vec![1u8, 2, 3], |i, x| x as usize + i), vec![1, 3, 5]);
    }

    #[test]
    fn all_workers_participate_in_large_scatters() {
        // With far more slow-ish chunks than workers, the spawned
        // threads must pick up work (the caller can't have run it all
        // before they wake).
        let pool = WorkerPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let out = pool.scatter((0..4096u64).collect(), move |_, x| {
            h.fetch_add(1, Ordering::Relaxed);
            // A little real work so chunks take measurable time.
            (0..50).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        assert_eq!(out.len(), 4096);
        assert_eq!(hits.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn pool_survives_repeated_scatters_and_shutdown() {
        let pool = WorkerPool::new(3);
        for round in 0..20 {
            let out = pool.scatter((0..100u64).collect(), move |_, x| x + round);
            assert_eq!(out[99], 99 + round);
        }
        drop(pool); // must join cleanly, no deadlock
    }

    #[test]
    fn queue_depth_gauge_returns_to_zero() {
        let obs = Obs::new(kg_obs::ObsConfig::default());
        let pool = WorkerPool::new(2);
        pool.attach_obs(&obs);
        pool.scatter((0..500u32).collect(), |_, x| x);
        assert_eq!(obs.gauge("kg_par_queue_depth").get(), 0);
        // Some worker recorded busy time.
        let total: u64 = (0..2)
            .map(|i| obs.histogram_with("kg_par_worker_us", "worker", &i.to_string()))
            .map(|h| h.snapshot().count)
            .sum();
        assert!(total > 0, "no worker recorded any chunk");
    }
}
