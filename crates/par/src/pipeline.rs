//! Plan-then-execute rekey construction.
//!
//! The sequential path ([`SealingSink`]) encrypts each bundle the moment
//! a construction function asks for it. The parallel path splits that
//! into three steps that together produce *byte-identical* output:
//!
//! 1. **Plan.** Run the same construction function against a
//!    [`PlanSink`]. The sink performs everything order-sensitive
//!    inline — cache lookups and, crucially, IV draws from the server's
//!    sequential DRBG, in exactly the order the inline sink would —
//!    but instead of encrypting it records an [`EncryptJob`] and emits
//!    a placeholder ciphertext naming the job.
//! 2. **Execute.** The jobs are mutually independent (each owns its
//!    key, IV, and plaintext), so the pool scatters them across workers
//!    in any order.
//! 3. **Patch.** Placeholders are replaced by the job results, indexed
//!    by job id — a deterministic merge, independent of scheduling.
//!
//! Since the plan step fixes the IV assignment and the cipher is
//! deterministic given (key, IV, plaintext), the patched messages equal
//! the sequential ones byte for byte; `tests/par_equivalence.rs` and the
//! `report par` artifact assert this.

use crate::pool::WorkerPool;
use kg_core::batch::BatchEvent;
use kg_core::rekey::{
    build_join, build_leave, build_refresh, BundleCache, BundleSink, IvStream, KeyBundle,
    KeyCipher, OpCounts, RekeyOutput, Strategy,
};
use kg_core::tree::{JoinEvent, LeaveEvent, PathNode};
use kg_core::KeyRef;
use kg_crypto::{KeySource, SymmetricKey};

/// One deferred bundle encryption: everything `KeyCipher::encrypt`
/// needs, owned, so the job can run on any thread.
#[derive(Debug, Clone)]
pub struct EncryptJob {
    /// Cipher to seal with.
    pub cipher: KeyCipher,
    /// Encrypting key (the bundle's `encrypted_with` key material).
    pub key: SymmetricKey,
    /// IV drawn at plan time, preserving the sequential draw order.
    pub iv: Vec<u8>,
    /// Concatenated target key material.
    pub plaintext: Vec<u8>,
}

impl EncryptJob {
    /// Perform the encryption. Pure: same job, same bytes, any thread.
    pub fn run(&self) -> Vec<u8> {
        self.cipher.encrypt(&self.key, &self.iv, &self.plaintext)
    }
}

/// Width of a placeholder ciphertext: a little-endian `u64` job index.
/// Real ciphertexts are always at least one cipher block *longer* than
/// the plaintext (CBC pads), so a placeholder is never ambiguous — but
/// the patch pass doesn't rely on that: every bundle a [`PlanSink`]
/// emits carries a placeholder, and only such bundles are patched.
const PLACEHOLDER_LEN: usize = 8;

/// A [`BundleSink`] that defers encryption.
///
/// Honors the full sink contract: memoizes on the same
/// `(encrypting_ref, targets, payload)` triple (a hit returns a clone
/// of the planned bundle — same placeholder, so both patched bundles
/// share one ciphertext, same as the sequential cache sharing one
/// sealed bundle) and draws exactly one IV per distinct bundle, in
/// request order.
pub struct PlanSink<'a> {
    cipher: KeyCipher,
    ivs: IvStream<'a>,
    cache: BundleCache,
    jobs: Vec<EncryptJob>,
}

impl<'a> PlanSink<'a> {
    /// Create a planning sink drawing IVs from `ivs` — through the same
    /// buffered [`IvStream`] schedule as [`SealingSink`], so both paths
    /// consume the identical DRBG stream.
    ///
    /// [`SealingSink`]: kg_core::rekey::SealingSink
    pub fn new(cipher: KeyCipher, ivs: &'a mut dyn KeySource) -> Self {
        let ivs = IvStream::new(ivs, cipher.block_len());
        PlanSink { cipher, ivs, cache: BundleCache::new(), jobs: Vec::new() }
    }

    /// The deferred encryptions, in plan (= IV draw) order.
    pub fn into_jobs(self) -> Vec<EncryptJob> {
        self.jobs
    }
}

impl BundleSink for PlanSink<'_> {
    fn bundle(
        &mut self,
        ops: &mut OpCounts,
        encrypting_ref: KeyRef,
        encrypting_key: &SymmetricKey,
        targets: &[(KeyRef, &SymmetricKey)],
    ) -> KeyBundle {
        let PlanSink { cipher, ivs, cache, jobs } = self;
        let mut payload = Vec::with_capacity(targets.len() * 8);
        for (_, key) in targets {
            payload.extend_from_slice(key.material());
        }
        let target_refs: Vec<KeyRef> = targets.iter().map(|(r, _)| *r).collect();
        cache.request(ops, encrypting_ref, &target_refs, payload, |plain| {
            let iv = ivs.next_iv();
            let index = jobs.len() as u64;
            jobs.push(EncryptJob {
                cipher: *cipher,
                key: encrypting_key.clone(),
                iv: iv.clone(),
                plaintext: plain.to_vec(),
            });
            KeyBundle {
                targets: target_refs.clone(),
                encrypted_with: encrypting_ref,
                iv,
                ciphertext: index.to_le_bytes().to_vec(),
            }
        })
    }
}

/// Replace every placeholder ciphertext in `out` with the corresponding
/// job result. Each bundle's first 8 bytes name its job; clones made by
/// cache hits carry the same index and so receive the same ciphertext.
fn patch(out: &mut RekeyOutput, results: &[Vec<u8>]) {
    for msg in &mut out.messages {
        for bundle in &mut msg.bundles {
            debug_assert_eq!(bundle.ciphertext.len(), PLACEHOLDER_LEN);
            let mut idx = [0u8; PLACEHOLDER_LEN];
            idx.copy_from_slice(&bundle.ciphertext);
            bundle.ciphertext = results[u64::from_le_bytes(idx) as usize].clone();
        }
    }
}

/// Below this many planned jobs the scatter overhead (boxing, channel,
/// wakeups) exceeds the DES work saved; execute inline instead. A d=4
/// tree at n=4096 plans ~tens of jobs per batched interval, well above
/// this; a single join at small n stays under it.
pub const MIN_FANOUT: usize = 16;

/// Drop-in parallel counterpart of [`kg_core::rekey::Rekeyer`] /
/// [`kg_batch::BatchRekeyer`]: same construction functions, same IV
/// stream, byte-identical messages — encryptions fanned across `pool`
/// when there are enough of them to pay for the trip.
pub struct ParRekeyer<'a> {
    cipher: KeyCipher,
    ivs: &'a mut dyn KeySource,
    pool: Option<&'a WorkerPool>,
    min_fanout: usize,
}

impl<'a> ParRekeyer<'a> {
    /// Create a rekeyer. `pool: None` is the sequential path (identical
    /// to `Rekeyer`); `Some` enables plan/execute/patch with the
    /// default [`MIN_FANOUT`] inline threshold.
    pub fn new(
        cipher: KeyCipher,
        ivs: &'a mut dyn KeySource,
        pool: Option<&'a WorkerPool>,
    ) -> Self {
        ParRekeyer { cipher, ivs, pool, min_fanout: MIN_FANOUT }
    }

    /// Override the inline threshold (benchmarks ablate this).
    pub fn with_min_fanout(mut self, min_fanout: usize) -> Self {
        self.min_fanout = min_fanout;
        self
    }

    fn run(&mut self, build: impl FnOnce(&mut dyn BundleSink) -> RekeyOutput) -> RekeyOutput {
        match self.pool {
            None => {
                let mut sink = kg_core::rekey::SealingSink::new(self.cipher, &mut *self.ivs);
                build(&mut sink)
            }
            Some(pool) => {
                let mut sink = PlanSink::new(self.cipher, &mut *self.ivs);
                let mut out = build(&mut sink);
                let jobs = sink.into_jobs();
                let results: Vec<Vec<u8>> = if jobs.len() < self.min_fanout {
                    jobs.iter().map(EncryptJob::run).collect()
                } else {
                    pool.scatter(jobs, |_, job| job.run())
                };
                patch(&mut out, &results);
                out
            }
        }
    }

    /// Parallel counterpart of `Rekeyer::join`.
    pub fn join(&mut self, ev: &JoinEvent, strategy: Strategy) -> RekeyOutput {
        self.run(|sink| build_join(sink, ev, strategy))
    }

    /// Parallel counterpart of `Rekeyer::join_derived`. A derived join
    /// seals exactly one bundle (the joiner's unicast), which is always
    /// below the inline threshold — the pool never engages, and the
    /// output is byte-identical at every worker count by construction.
    pub fn join_derived(&mut self, ev: &JoinEvent) -> RekeyOutput {
        self.run(|sink| kg_core::rekey::build_derived_join(sink, ev))
    }

    /// Parallel counterpart of `Rekeyer::leave`.
    pub fn leave(&mut self, ev: &LeaveEvent, strategy: Strategy) -> RekeyOutput {
        self.run(|sink| build_leave(sink, ev, strategy))
    }

    /// Parallel counterpart of `Rekeyer::refresh`.
    pub fn refresh(&mut self, path: &PathNode) -> RekeyOutput {
        self.run(|sink| build_refresh(sink, path))
    }

    /// Parallel counterpart of `BatchRekeyer::rekey`.
    pub fn batch(&mut self, ev: &BatchEvent, strategy: Strategy) -> RekeyOutput {
        self.run(|sink| kg_batch::build_batch(sink, ev, strategy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::tree::KeyTree;
    use kg_core::Rekeyer;
    use kg_core::UserId;
    use kg_crypto::drbg::HmacDrbg;

    fn grown_tree(n: u64, degree: usize, seed: u64) -> (KeyTree, HmacDrbg) {
        let mut keygen = HmacDrbg::from_seed(seed);
        let mut tree = KeyTree::new(degree, KeyCipher::DesCbc.key_len(), &mut keygen);
        for u in 0..n {
            let ik = keygen.generate_key(KeyCipher::DesCbc.key_len());
            tree.join(UserId(u), ik, &mut keygen).expect("join");
        }
        (tree, keygen)
    }

    /// The core tentpole invariant, at unit scope: for every strategy
    /// and operation kind, the parallel pipeline's messages, op counts,
    /// and *subsequent DRBG state* match the sequential path exactly.
    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let pool = WorkerPool::new(3);
        for strategy in [Strategy::UserOriented, Strategy::KeyOriented, Strategy::GroupOriented] {
            let (mut tree_a, mut keygen_a) = grown_tree(64, 4, 7);
            let mut tree_b = tree_a.clone();
            let mut keygen_b = keygen_a.clone();
            let mut ivs_a = HmacDrbg::from_seed(99);
            let mut ivs_b = HmacDrbg::from_seed(99);

            let ik_a = keygen_a.generate_key(KeyCipher::DesCbc.key_len());
            let ik_b = keygen_b.generate_key(KeyCipher::DesCbc.key_len());
            let ev_a = tree_a.join(UserId(1000), ik_a, &mut keygen_a).unwrap();
            let ev_b = tree_b.join(UserId(1000), ik_b, &mut keygen_b).unwrap();
            let seq = Rekeyer::new(KeyCipher::DesCbc, &mut ivs_a).join(&ev_a, strategy);
            let par = ParRekeyer::new(KeyCipher::DesCbc, &mut ivs_b, Some(&pool))
                .with_min_fanout(1)
                .join(&ev_b, strategy);
            assert_eq!(seq.messages, par.messages, "join messages diverged ({strategy:?})");
            assert_eq!(seq.ops, par.ops, "join ops diverged ({strategy:?})");

            let ev_a = tree_a.leave(UserId(17), &mut keygen_a).unwrap();
            let ev_b = tree_b.leave(UserId(17), &mut keygen_b).unwrap();
            let seq = Rekeyer::new(KeyCipher::DesCbc, &mut ivs_a).leave(&ev_a, strategy);
            let par = ParRekeyer::new(KeyCipher::DesCbc, &mut ivs_b, Some(&pool))
                .with_min_fanout(1)
                .leave(&ev_b, strategy);
            assert_eq!(seq.messages, par.messages, "leave messages diverged ({strategy:?})");
            assert_eq!(seq.ops, par.ops, "leave ops diverged ({strategy:?})");

            // The IV streams must have advanced identically: a further
            // draw from each yields the same bytes.
            assert_eq!(ivs_a.generate(8), ivs_b.generate(8), "IV stream diverged ({strategy:?})");
        }
    }

    /// `pool: None` and sub-threshold fanout both take the inline path
    /// and still match.
    #[test]
    fn inline_fallbacks_match_sequential() {
        let (mut tree, mut keygen) = grown_tree(16, 4, 11);
        let ev = tree.leave(UserId(3), &mut keygen).unwrap();

        let mut ivs_seq = HmacDrbg::from_seed(101);
        let seq = Rekeyer::new(KeyCipher::DesCbc, &mut ivs_seq).leave(&ev, Strategy::KeyOriented);

        let mut ivs_none = HmacDrbg::from_seed(101);
        let none = ParRekeyer::new(KeyCipher::DesCbc, &mut ivs_none, None)
            .leave(&ev, Strategy::KeyOriented);
        assert_eq!(seq.messages, none.messages);

        let pool = WorkerPool::new(2);
        let mut ivs_thresh = HmacDrbg::from_seed(101);
        let thresh = ParRekeyer::new(KeyCipher::DesCbc, &mut ivs_thresh, Some(&pool))
            .with_min_fanout(usize::MAX)
            .leave(&ev, Strategy::KeyOriented);
        assert_eq!(seq.messages, thresh.messages);
    }

    /// Cache sharing survives the patch pass: bundles that were cache
    /// hits at plan time end up with the identical real ciphertext.
    #[test]
    fn patched_cache_hits_share_ciphertexts() {
        let pool = WorkerPool::new(2);
        let (mut tree, mut keygen) = grown_tree(64, 4, 13);
        let ev = tree.leave(UserId(5), &mut keygen).unwrap();
        let mut ivs = HmacDrbg::from_seed(103);
        let out = ParRekeyer::new(KeyCipher::DesCbc, &mut ivs, Some(&pool))
            .with_min_fanout(1)
            .leave(&ev, Strategy::KeyOriented);
        assert!(out.ops.cache_hits > 0, "key-oriented leave should reuse chain bundles");
        // Distinct ciphertexts == cache misses: every hit is a shared bundle.
        let mut seen = std::collections::BTreeSet::new();
        for m in &out.messages {
            for b in &m.bundles {
                assert!(b.ciphertext.len() > PLACEHOLDER_LEN, "placeholder leaked through patch");
                seen.insert(b.ciphertext.clone());
            }
        }
        assert_eq!(seen.len() as u64, out.ops.cache_misses);
    }
}
