//! Server configuration, including the paper-style specification file.
//!
//! "The server is initialized from a specification file which determines
//! the initial group size, the rekeying strategy, the key tree degree, the
//! encryption algorithm, the message digest algorithm, the digital
//! signature algorithm, etc." (§5). [`ServerConfig::from_spec`] parses a
//! simple `key = value` format with exactly those knobs.

use kg_batch::BatchPolicy;
use kg_core::rekey::{KeyCipher, Strategy};
use kg_crypto::rsa::HashAlg;
use std::fmt;

/// When the server rekeys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyPolicy {
    /// Rekey on every join/leave, as in the paper's prototype.
    Immediate,
    /// Queue requests and rekey once per interval (or once the queue
    /// reaches a depth threshold), marking the union of the changed paths.
    Batched {
        /// Flush at least this often (milliseconds) while requests pend.
        interval_ms: u64,
        /// Flush immediately at this queue depth.
        max_pending: usize,
    },
}

impl RekeyPolicy {
    /// The corresponding scheduler policy, `None` for immediate mode.
    pub fn batch_policy(self) -> Option<BatchPolicy> {
        match self {
            RekeyPolicy::Immediate => None,
            RekeyPolicy::Batched { interval_ms, max_pending } => {
                Some(BatchPolicy { interval_ms, max_pending })
            }
        }
    }
}

/// Parallel rekey-construction settings.
///
/// Orthogonal to [`RekeyPolicy`]: immediate and batched rekeying both
/// route their encryptions (and, under `auth = sign-each`/`digest`,
/// their per-packet authentication) through the same pipeline. The
/// output is byte-identical at every worker count — parallelism is
/// purely a throughput knob, never a protocol change — so WAL replay
/// and recovery work regardless of the worker count the writing server
/// used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Total worker threads constructing rekey messages, including the
    /// request thread itself. `1` (the default) is the sequential path:
    /// no pool, no spawned threads. Values ≥ 2 spawn `workers − 1`
    /// background threads.
    pub workers: usize,
    /// Cap `workers` at the hardware's available parallelism (default
    /// `true`). Oversubscribing a host buys nothing — the threads just
    /// time-slice the same cores and pay scheduling overhead — so a
    /// production server clamps. Benchmarks and equivalence tests
    /// disable the clamp to exercise the threaded path even on small
    /// machines (where output must still be byte-identical).
    pub clamp_to_hardware: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 1, clamp_to_hardware: true }
    }
}

impl ParallelConfig {
    /// The worker count actually used: `workers`, clamped to the
    /// hardware's available parallelism unless the clamp is disabled.
    pub fn effective_workers(self) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if self.clamp_to_hardware {
            self.workers.min(hw)
        } else {
            self.workers
        }
    }

    /// Whether this configuration wants a worker pool.
    pub fn wants_pool(self) -> bool {
        self.effective_workers() >= 2
    }
}

/// How rekey messages are authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthPolicy {
    /// Encryption only (the left panels of Figures 10/11).
    None,
    /// MD5 (or chosen digest) over each message — integrity only.
    Digest,
    /// One RSA signature per rekey message (Table 4's expensive baseline).
    SignEach,
    /// One RSA signature for all of an operation's rekey messages, via the
    /// Section 4 digest tree.
    SignBatch,
}

impl AuthPolicy {
    /// Whether this policy requires an RSA keypair.
    pub fn needs_signature_key(self) -> bool {
        matches!(self, AuthPolicy::SignEach | AuthPolicy::SignBatch)
    }
}

impl std::str::FromStr for AuthPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(AuthPolicy::None),
            "digest" => Ok(AuthPolicy::Digest),
            "sign-each" => Ok(AuthPolicy::SignEach),
            "sign-batch" => Ok(AuthPolicy::SignBatch),
            other => Err(ConfigError::BadValue { key: "auth", value: other.to_string() }),
        }
    }
}

/// Group key server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Key tree degree `d` (the paper's optimum is 4).
    pub degree: usize,
    /// Rekeying strategy.
    pub strategy: Strategy,
    /// Symmetric cipher for key encryption.
    pub cipher: KeyCipher,
    /// Digest algorithm for integrity/signing.
    pub digest: HashAlg,
    /// Authentication policy for rekey messages.
    pub auth: AuthPolicy,
    /// RSA modulus size in bits (512 in the paper).
    pub rsa_bits: usize,
    /// Seed for deterministic key generation.
    pub seed: u64,
    /// Immediate (per-operation) or batched (periodic) rekeying.
    pub rekey: RekeyPolicy,
    /// Parallel rekey-construction settings (default: sequential).
    pub parallel: ParallelConfig,
    /// Cap on retained per-op stat records (`None` = keep all, the
    /// evaluation default). A capped server evicts the oldest records
    /// FIFO; aggregates still cover everything since the last reset.
    pub stats_record_cap: Option<usize>,
}

impl Default for ServerConfig {
    /// The paper's canonical configuration: degree-4 key tree,
    /// group-oriented rekeying, DES-CBC, MD5, RSA-512, no signing.
    fn default() -> Self {
        ServerConfig {
            degree: 4,
            strategy: Strategy::GroupOriented,
            cipher: KeyCipher::des_cbc(),
            digest: HashAlg::Md5,
            auth: AuthPolicy::None,
            rsa_bits: 512,
            seed: 0,
            rekey: RekeyPolicy::Immediate,
            parallel: ParallelConfig::default(),
            stats_record_cap: None,
        }
    }
}

/// Spec-file parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not `key = value`.
    BadLine(String),
    /// Unknown configuration key.
    UnknownKey(String),
    /// Unparseable value for a known key.
    BadValue {
        /// The key whose value failed to parse.
        key: &'static str,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadLine(l) => write!(f, "malformed spec line: {l:?}"),
            ConfigError::UnknownKey(k) => write!(f, "unknown spec key: {k:?}"),
            ConfigError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for spec key {key:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServerConfig {
    /// Parse a specification file. Recognized keys:
    ///
    /// ```text
    /// # comment
    /// degree   = 4
    /// strategy = group        # user | key | group
    /// cipher   = des-cbc      # des-cbc | 3des-cbc
    /// digest   = md5          # md5 | sha1 | sha256
    /// auth     = sign-batch   # none | digest | sign-each | sign-batch
    /// rsa-bits = 512
    /// seed     = 42
    /// rekey    = batched      # immediate | batched
    /// batch-interval-ms  = 1000
    /// batch-max-pending  = 64
    /// workers  = 4            # rekey-construction threads (default 1 = sequential)
    /// stats-record-cap   = 4096   # retained per-op records (default: all)
    /// ```
    ///
    /// The two `batch-*` knobs only take effect with `rekey = batched`
    /// (they may appear in either order relative to it).
    pub fn from_spec(spec: &str) -> Result<Self, ConfigError> {
        let mut cfg = ServerConfig::default();
        let mut batched = false;
        let mut batch = BatchPolicy::default();
        for raw in spec.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| ConfigError::BadLine(raw.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "degree" => {
                    cfg.degree = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "degree",
                        value: value.to_string(),
                    })?;
                    if cfg.degree < 2 {
                        return Err(ConfigError::BadValue {
                            key: "degree",
                            value: value.to_string(),
                        });
                    }
                }
                "strategy" => {
                    cfg.strategy = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "strategy",
                        value: value.to_string(),
                    })?;
                }
                "cipher" => {
                    cfg.cipher = match value {
                        "des-cbc" => KeyCipher::DesCbc,
                        "3des-cbc" => KeyCipher::TripleDesCbc,
                        _ => {
                            return Err(ConfigError::BadValue {
                                key: "cipher",
                                value: value.to_string(),
                            })
                        }
                    };
                }
                "digest" => {
                    cfg.digest = match value {
                        "md5" => HashAlg::Md5,
                        "sha1" => HashAlg::Sha1,
                        "sha256" => HashAlg::Sha256,
                        _ => {
                            return Err(ConfigError::BadValue {
                                key: "digest",
                                value: value.to_string(),
                            })
                        }
                    };
                }
                "auth" => cfg.auth = value.parse()?,
                "rsa-bits" => {
                    cfg.rsa_bits = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "rsa-bits",
                        value: value.to_string(),
                    })?;
                }
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "seed",
                        value: value.to_string(),
                    })?;
                }
                "rekey" => {
                    batched = match value {
                        "immediate" => false,
                        "batched" => true,
                        _ => {
                            return Err(ConfigError::BadValue {
                                key: "rekey",
                                value: value.to_string(),
                            })
                        }
                    };
                }
                "batch-interval-ms" => {
                    batch.interval_ms = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "batch-interval-ms",
                        value: value.to_string(),
                    })?;
                }
                "workers" => {
                    cfg.parallel.workers = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "workers",
                        value: value.to_string(),
                    })?;
                    if cfg.parallel.workers == 0 {
                        // 0 would mean "no thread runs the rekey at all";
                        // the sequential path is workers = 1.
                        return Err(ConfigError::BadValue {
                            key: "workers",
                            value: value.to_string(),
                        });
                    }
                }
                "stats-record-cap" => {
                    cfg.stats_record_cap = Some(value.parse().map_err(|_| {
                        ConfigError::BadValue { key: "stats-record-cap", value: value.to_string() }
                    })?);
                }
                "batch-max-pending" => {
                    batch.max_pending = value.parse().map_err(|_| ConfigError::BadValue {
                        key: "batch-max-pending",
                        value: value.to_string(),
                    })?;
                    if batch.max_pending == 0 {
                        return Err(ConfigError::BadValue {
                            key: "batch-max-pending",
                            value: value.to_string(),
                        });
                    }
                }
                other => return Err(ConfigError::UnknownKey(other.to_string())),
            }
        }
        if batched {
            cfg.rekey = RekeyPolicy::Batched {
                interval_ms: batch.interval_ms,
                max_pending: batch.max_pending,
            };
        }
        Ok(cfg)
    }

    /// Symmetric key length implied by the cipher.
    pub fn key_len(&self) -> usize {
        self.cipher.key_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_canonical() {
        let c = ServerConfig::default();
        assert_eq!(c.degree, 4);
        assert_eq!(c.strategy, Strategy::GroupOriented);
        assert_eq!(c.cipher, KeyCipher::DesCbc);
        assert_eq!(c.digest, HashAlg::Md5);
        assert_eq!(c.auth, AuthPolicy::None);
        assert_eq!(c.rsa_bits, 512);
        assert_eq!(c.key_len(), 8);
    }

    #[test]
    fn full_spec_parses() {
        let spec = r"
            # experiment E1
            degree   = 8
            strategy = key
            cipher   = 3des-cbc
            digest   = sha256
            auth     = sign-batch
            rsa-bits = 1024
            seed     = 99
        ";
        let c = ServerConfig::from_spec(spec).unwrap();
        assert_eq!(c.degree, 8);
        assert_eq!(c.strategy, Strategy::KeyOriented);
        assert_eq!(c.cipher, KeyCipher::TripleDesCbc);
        assert_eq!(c.digest, HashAlg::Sha256);
        assert_eq!(c.auth, AuthPolicy::SignBatch);
        assert_eq!(c.rsa_bits, 1024);
        assert_eq!(c.seed, 99);
        assert_eq!(c.key_len(), 24);
    }

    #[test]
    fn batched_rekey_spec_parses() {
        let c = ServerConfig::from_spec(
            "batch-interval-ms = 250\nrekey = batched\nbatch-max-pending = 16\n",
        )
        .unwrap();
        assert_eq!(c.rekey, RekeyPolicy::Batched { interval_ms: 250, max_pending: 16 });
        assert_eq!(c.rekey.batch_policy(), Some(BatchPolicy { interval_ms: 250, max_pending: 16 }));

        // Without `rekey = batched` the knobs are inert.
        let c = ServerConfig::from_spec("batch-interval-ms = 250").unwrap();
        assert_eq!(c.rekey, RekeyPolicy::Immediate);
        assert_eq!(c.rekey.batch_policy(), None);

        assert!(matches!(
            ServerConfig::from_spec("rekey = sometimes"),
            Err(ConfigError::BadValue { key: "rekey", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("batch-max-pending = 0"),
            Err(ConfigError::BadValue { key: "batch-max-pending", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("batch-interval-ms = soon"),
            Err(ConfigError::BadValue { key: "batch-interval-ms", .. })
        ));
    }

    #[test]
    fn workers_spec_parses_and_rejects_zero() {
        assert_eq!(ServerConfig::default().parallel, ParallelConfig::default());
        assert_eq!(ServerConfig::default().parallel.workers, 1);
        assert!(!ServerConfig::default().parallel.wants_pool());

        let c = ServerConfig::from_spec("workers = 4").unwrap();
        assert_eq!(c.parallel.workers, 4);
        // Clamped to hardware: never more than the cores present, never
        // fewer than 1, and exactly 4 when the clamp is off.
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(c.parallel.effective_workers(), 4.min(hw));
        let unclamped = ParallelConfig { clamp_to_hardware: false, ..c.parallel };
        assert_eq!(unclamped.effective_workers(), 4);
        assert!(unclamped.wants_pool());

        let c = ServerConfig::from_spec("workers = 1").unwrap();
        assert!(!c.parallel.wants_pool());

        assert!(matches!(
            ServerConfig::from_spec("workers = 0"),
            Err(ConfigError::BadValue { key: "workers", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("workers = many"),
            Err(ConfigError::BadValue { key: "workers", .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = ServerConfig::from_spec("\n# all defaults\n\n").unwrap();
        assert_eq!(c.degree, 4);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(ServerConfig::from_spec("degree"), Err(ConfigError::BadLine(_))));
        assert!(matches!(ServerConfig::from_spec("mystery = 1"), Err(ConfigError::UnknownKey(_))));
        assert!(matches!(
            ServerConfig::from_spec("degree = banana"),
            Err(ConfigError::BadValue { key: "degree", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("degree = 1"),
            Err(ConfigError::BadValue { key: "degree", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("auth = sometimes"),
            Err(ConfigError::BadValue { key: "auth", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("strategy = quantum"),
            Err(ConfigError::BadValue { key: "strategy", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("cipher = rot13"),
            Err(ConfigError::BadValue { key: "cipher", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("digest = crc32"),
            Err(ConfigError::BadValue { key: "digest", .. })
        ));
    }

    #[test]
    fn auth_policy_signature_key_requirement() {
        assert!(!AuthPolicy::None.needs_signature_key());
        assert!(!AuthPolicy::Digest.needs_signature_key());
        assert!(AuthPolicy::SignEach.needs_signature_key());
        assert!(AuthPolicy::SignBatch.needs_signature_key());
    }

    #[test]
    fn error_display() {
        let e = ConfigError::BadValue { key: "degree", value: "x".into() };
        assert!(e.to_string().contains("degree"));
        assert!(ConfigError::UnknownKey("z".into()).to_string().contains('z'));
        assert!(ConfigError::BadLine("q".into()).to_string().contains('q'));
    }
}
