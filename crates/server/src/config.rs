//! Server configuration, including the paper-style specification file.
//!
//! "The server is initialized from a specification file which determines
//! the initial group size, the rekeying strategy, the key tree degree, the
//! encryption algorithm, the message digest algorithm, the digital
//! signature algorithm, etc." (§5). [`ServerConfig::from_spec`] parses a
//! simple `key = value` format with exactly those knobs.

use kg_batch::BatchPolicy;
use kg_core::rekey::{KeyCipher, Strategy};
use kg_crypto::rsa::HashAlg;
use std::fmt;

/// When the server rekeys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyPolicy {
    /// Rekey on every join/leave, as in the paper's prototype.
    Immediate,
    /// Queue requests and rekey once per interval (or once the queue
    /// reaches a depth threshold), marking the union of the changed paths.
    Batched {
        /// Flush at least this often (milliseconds) while requests pend.
        interval_ms: u64,
        /// Flush immediately at this queue depth.
        max_pending: usize,
    },
}

impl RekeyPolicy {
    /// The corresponding scheduler policy, `None` for immediate mode.
    pub fn batch_policy(self) -> Option<BatchPolicy> {
        match self {
            RekeyPolicy::Immediate => None,
            RekeyPolicy::Batched { interval_ms, max_pending } => {
                Some(BatchPolicy { interval_ms, max_pending })
            }
        }
    }

    /// Stable spec-file name for this policy's mode (the string
    /// [`RekeyPolicy::from_str`] accepts); the batch knobs travel as
    /// separate spec keys.
    pub fn as_str(self) -> &'static str {
        match self {
            RekeyPolicy::Immediate => "immediate",
            RekeyPolicy::Batched { .. } => "batched",
        }
    }
}

impl fmt::Display for RekeyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RekeyPolicy {
    type Err = ConfigError;

    /// Parses the mode keyword alone; `"batched"` takes the default
    /// [`BatchPolicy`] knobs (a spec file overrides them with the
    /// `batch-*` keys, a builder with [`ServerConfigBuilder::batched`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "immediate" => Ok(RekeyPolicy::Immediate),
            "batched" => {
                let d = BatchPolicy::default();
                Ok(RekeyPolicy::Batched { interval_ms: d.interval_ms, max_pending: d.max_pending })
            }
            other => Err(ConfigError::BadValue { key: "rekey", value: other.to_string() }),
        }
    }
}

/// Parallel rekey-construction settings.
///
/// Orthogonal to [`RekeyPolicy`]: immediate and batched rekeying both
/// route their encryptions (and, under `auth = sign-each`/`digest`,
/// their per-packet authentication) through the same pipeline. The
/// output is byte-identical at every worker count — parallelism is
/// purely a throughput knob, never a protocol change — so WAL replay
/// and recovery work regardless of the worker count the writing server
/// used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Total worker threads constructing rekey messages, including the
    /// request thread itself. `1` (the default) is the sequential path:
    /// no pool, no spawned threads. Values ≥ 2 spawn `workers − 1`
    /// background threads.
    pub workers: usize,
    /// Cap `workers` at the hardware's available parallelism (default
    /// `true`). Oversubscribing a host buys nothing — the threads just
    /// time-slice the same cores and pay scheduling overhead — so a
    /// production server clamps. Benchmarks and equivalence tests
    /// disable the clamp to exercise the threaded path even on small
    /// machines (where output must still be byte-identical).
    pub clamp_to_hardware: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 1, clamp_to_hardware: true }
    }
}

impl ParallelConfig {
    /// The worker count actually used: `workers`, clamped to the
    /// hardware's available parallelism unless the clamp is disabled.
    pub fn effective_workers(self) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if self.clamp_to_hardware {
            self.workers.min(hw)
        } else {
            self.workers
        }
    }

    /// Whether this configuration wants a worker pool.
    pub fn wants_pool(self) -> bool {
        self.effective_workers() >= 2
    }
}

/// How rekey messages are authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthPolicy {
    /// Encryption only (the left panels of Figures 10/11).
    None,
    /// MD5 (or chosen digest) over each message — integrity only.
    Digest,
    /// One RSA signature per rekey message (Table 4's expensive baseline).
    SignEach,
    /// One RSA signature for all of an operation's rekey messages, via the
    /// Section 4 digest tree.
    SignBatch,
}

impl AuthPolicy {
    /// Whether this policy requires an RSA keypair.
    pub fn needs_signature_key(self) -> bool {
        matches!(self, AuthPolicy::SignEach | AuthPolicy::SignBatch)
    }

    /// Stable spec-file name for this policy (the string
    /// [`AuthPolicy::from_str`] accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            AuthPolicy::None => "none",
            AuthPolicy::Digest => "digest",
            AuthPolicy::SignEach => "sign-each",
            AuthPolicy::SignBatch => "sign-batch",
        }
    }
}

impl fmt::Display for AuthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for AuthPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(AuthPolicy::None),
            "digest" => Ok(AuthPolicy::Digest),
            "sign-each" => Ok(AuthPolicy::SignEach),
            "sign-batch" => Ok(AuthPolicy::SignBatch),
            other => Err(ConfigError::BadValue { key: "auth", value: other.to_string() }),
        }
    }
}

/// Group key server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Key tree degree `d` (the paper's optimum is 4).
    pub degree: usize,
    /// Rekeying strategy.
    pub strategy: Strategy,
    /// Symmetric cipher for key encryption.
    pub cipher: KeyCipher,
    /// Digest algorithm for integrity/signing.
    pub digest: HashAlg,
    /// Authentication policy for rekey messages.
    pub auth: AuthPolicy,
    /// RSA modulus size in bits (512 in the paper).
    pub rsa_bits: usize,
    /// Seed for deterministic key generation.
    pub seed: u64,
    /// Immediate (per-operation) or batched (periodic) rekeying.
    pub rekey: RekeyPolicy,
    /// Parallel rekey-construction settings (default: sequential).
    pub parallel: ParallelConfig,
    /// Cap on retained per-op stat records (`None` = keep all, the
    /// evaluation default). A capped server evicts the oldest records
    /// FIFO; aggregates still cover everything since the last reset.
    pub stats_record_cap: Option<usize>,
}

impl Default for ServerConfig {
    /// The paper's canonical configuration: degree-4 key tree,
    /// group-oriented rekeying, DES-CBC, MD5, RSA-512, no signing.
    fn default() -> Self {
        ServerConfig {
            degree: 4,
            strategy: Strategy::GroupOriented,
            cipher: KeyCipher::des_cbc(),
            digest: HashAlg::Md5,
            auth: AuthPolicy::None,
            rsa_bits: 512,
            seed: 0,
            rekey: RekeyPolicy::Immediate,
            parallel: ParallelConfig::default(),
            stats_record_cap: None,
        }
    }
}

/// Spec-file parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not `key = value`.
    BadLine(String),
    /// Unknown configuration key.
    UnknownKey(String),
    /// Unparseable or out-of-range value for a known key.
    BadValue {
        /// The key whose value failed to parse.
        key: &'static str,
        /// The offending value.
        value: String,
    },
}

impl ConfigError {
    fn bad(key: &'static str, value: impl ToString) -> Self {
        ConfigError::BadValue { key, value: value.to_string() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadLine(l) => write!(f, "malformed spec line: {l:?}"),
            ConfigError::UnknownKey(k) => write!(f, "unknown spec key: {k:?}"),
            ConfigError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for spec key {key:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServerConfig {
    /// Parse a specification file. Recognized keys:
    ///
    /// ```text
    /// # comment
    /// degree   = 4
    /// strategy = group        # user | key | group | derived
    /// cipher   = des-cbc      # des-cbc | 3des-cbc
    /// digest   = md5          # md5 | sha1 | sha256
    /// auth     = sign-batch   # none | digest | sign-each | sign-batch
    /// rsa-bits = 512
    /// seed     = 42
    /// rekey    = batched      # immediate | batched
    /// batch-interval-ms  = 1000
    /// batch-max-pending  = 64
    /// workers  = 4            # rekey-construction threads (default 1 = sequential)
    /// stats-record-cap   = 4096   # retained per-op records (default: all)
    /// ```
    ///
    /// The two `batch-*` knobs only take effect with `rekey = batched`
    /// (they may appear in either order relative to it).
    pub fn from_spec(spec: &str) -> Result<Self, ConfigError> {
        let mut cfg = ServerConfig::default();
        let mut batched = false;
        let mut batch = BatchPolicy::default();
        for raw in spec.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or_else(|| ConfigError::BadLine(raw.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "degree" => {
                    cfg.degree = value.parse().map_err(|_| ConfigError::bad("degree", value))?;
                }
                "strategy" => {
                    cfg.strategy =
                        value.parse().map_err(|_| ConfigError::bad("strategy", value))?;
                }
                "cipher" => {
                    cfg.cipher = value.parse().map_err(|_| ConfigError::bad("cipher", value))?;
                }
                "digest" => {
                    cfg.digest = value.parse().map_err(|_| ConfigError::bad("digest", value))?;
                }
                "auth" => cfg.auth = value.parse()?,
                "rsa-bits" => {
                    cfg.rsa_bits =
                        value.parse().map_err(|_| ConfigError::bad("rsa-bits", value))?;
                }
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| ConfigError::bad("seed", value))?;
                }
                "rekey" => {
                    batched = matches!(value.parse::<RekeyPolicy>()?, RekeyPolicy::Batched { .. });
                }
                "batch-interval-ms" => {
                    batch.interval_ms =
                        value.parse().map_err(|_| ConfigError::bad("batch-interval-ms", value))?;
                    if batch.interval_ms == 0 {
                        // A zero interval would flush on every tick and
                        // starve the batching the knob exists to buy.
                        return Err(ConfigError::bad("batch-interval-ms", value));
                    }
                }
                "workers" => {
                    cfg.parallel.workers =
                        value.parse().map_err(|_| ConfigError::bad("workers", value))?;
                }
                "stats-record-cap" => {
                    cfg.stats_record_cap = Some(
                        value.parse().map_err(|_| ConfigError::bad("stats-record-cap", value))?,
                    );
                }
                "batch-max-pending" => {
                    batch.max_pending =
                        value.parse().map_err(|_| ConfigError::bad("batch-max-pending", value))?;
                    if batch.max_pending == 0 {
                        return Err(ConfigError::bad("batch-max-pending", value));
                    }
                }
                other => return Err(ConfigError::UnknownKey(other.to_string())),
            }
        }
        if batched {
            cfg.rekey = RekeyPolicy::Batched {
                interval_ms: batch.interval_ms,
                max_pending: batch.max_pending,
            };
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check the range invariants every construction path shares
    /// ([`Self::from_spec`] and [`ServerConfigBuilder::build`]):
    /// `degree >= 2` (a degree-1 "tree" is a chain with no fanout),
    /// `workers >= 1` (0 would mean no thread runs the rekey at all),
    /// `rsa-bits >= 512` and even (the modulus is built from two
    /// half-size primes; odd or tiny sizes cannot), and batched-mode
    /// knobs `>= 1` (a zero interval or depth would flush every tick).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.degree < 2 {
            return Err(ConfigError::bad("degree", self.degree));
        }
        if self.parallel.workers == 0 {
            return Err(ConfigError::bad("workers", self.parallel.workers));
        }
        if self.rsa_bits < 512 || !self.rsa_bits.is_multiple_of(2) {
            return Err(ConfigError::bad("rsa-bits", self.rsa_bits));
        }
        if let RekeyPolicy::Batched { interval_ms, max_pending } = self.rekey {
            if interval_ms == 0 {
                return Err(ConfigError::bad("batch-interval-ms", interval_ms));
            }
            if max_pending == 0 {
                return Err(ConfigError::bad("batch-max-pending", max_pending));
            }
        }
        Ok(())
    }

    /// Start building a configuration from the paper-canonical defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder { cfg: ServerConfig::default() }
    }

    /// Emit this configuration as a spec file [`Self::from_spec`] parses
    /// back to an equal value. Every spec-representable knob is written
    /// out explicitly (defaults included), so the emitted text is also a
    /// complete record of the run's configuration for experiment logs.
    /// `parallel.clamp_to_hardware` has no spec key and is not emitted;
    /// it only departs from its default in-process (benchmarks).
    pub fn to_spec(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "degree   = {}", self.degree);
        let _ = writeln!(s, "strategy = {}", self.strategy);
        let _ = writeln!(s, "cipher   = {}", self.cipher);
        let _ = writeln!(s, "digest   = {}", self.digest);
        let _ = writeln!(s, "auth     = {}", self.auth);
        let _ = writeln!(s, "rsa-bits = {}", self.rsa_bits);
        let _ = writeln!(s, "seed     = {}", self.seed);
        let _ = writeln!(s, "rekey    = {}", self.rekey);
        if let RekeyPolicy::Batched { interval_ms, max_pending } = self.rekey {
            let _ = writeln!(s, "batch-interval-ms = {interval_ms}");
            let _ = writeln!(s, "batch-max-pending = {max_pending}");
        }
        let _ = writeln!(s, "workers  = {}", self.parallel.workers);
        if let Some(cap) = self.stats_record_cap {
            let _ = writeln!(s, "stats-record-cap  = {cap}");
        }
        s
    }

    /// Symmetric key length implied by the cipher.
    pub fn key_len(&self) -> usize {
        self.cipher.key_len()
    }
}

/// Builder for [`ServerConfig`] with typed setters — the programmatic
/// twin of the spec file. Starts from [`ServerConfig::default`] (the
/// paper's canonical configuration) and checks the same invariants as
/// [`ServerConfig::from_spec`] at [`build`](ServerConfigBuilder::build)
/// time, so a config that only exists in code cannot silently hold
/// values a spec file would reject.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Key tree degree `d`.
    pub fn degree(mut self, degree: usize) -> Self {
        self.cfg.degree = degree;
        self
    }

    /// Rekeying strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Symmetric cipher for key encryption.
    pub fn cipher(mut self, cipher: KeyCipher) -> Self {
        self.cfg.cipher = cipher;
        self
    }

    /// Digest algorithm for integrity/signing.
    pub fn digest(mut self, digest: HashAlg) -> Self {
        self.cfg.digest = digest;
        self
    }

    /// Authentication policy for rekey messages.
    pub fn auth(mut self, auth: AuthPolicy) -> Self {
        self.cfg.auth = auth;
        self
    }

    /// RSA modulus size in bits.
    pub fn rsa_bits(mut self, bits: usize) -> Self {
        self.cfg.rsa_bits = bits;
        self
    }

    /// Seed for deterministic key generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Rekey on every join/leave (the default).
    pub fn immediate(mut self) -> Self {
        self.cfg.rekey = RekeyPolicy::Immediate;
        self
    }

    /// Queue requests and rekey once per `interval_ms` interval, or as
    /// soon as `max_pending` requests are queued.
    pub fn batched(mut self, interval_ms: u64, max_pending: usize) -> Self {
        self.cfg.rekey = RekeyPolicy::Batched { interval_ms, max_pending };
        self
    }

    /// Set the rekey policy directly (for policies carried in variables).
    pub fn rekey(mut self, rekey: RekeyPolicy) -> Self {
        self.cfg.rekey = rekey;
        self
    }

    /// Rekey-construction worker threads (1 = sequential).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.parallel.workers = workers;
        self
    }

    /// Whether to clamp `workers` to the hardware's parallelism.
    pub fn clamp_to_hardware(mut self, clamp: bool) -> Self {
        self.cfg.parallel.clamp_to_hardware = clamp;
        self
    }

    /// Cap on retained per-op stat records (`None` = keep all).
    pub fn stats_record_cap(mut self, cap: Option<usize>) -> Self {
        self.cfg.stats_record_cap = cap;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_canonical() {
        let c = ServerConfig::default();
        assert_eq!(c.degree, 4);
        assert_eq!(c.strategy, Strategy::GroupOriented);
        assert_eq!(c.cipher, KeyCipher::DesCbc);
        assert_eq!(c.digest, HashAlg::Md5);
        assert_eq!(c.auth, AuthPolicy::None);
        assert_eq!(c.rsa_bits, 512);
        assert_eq!(c.key_len(), 8);
    }

    #[test]
    fn full_spec_parses() {
        let spec = r"
            # experiment E1
            degree   = 8
            strategy = key
            cipher   = 3des-cbc
            digest   = sha256
            auth     = sign-batch
            rsa-bits = 1024
            seed     = 99
        ";
        let c = ServerConfig::from_spec(spec).unwrap();
        assert_eq!(c.degree, 8);
        assert_eq!(c.strategy, Strategy::KeyOriented);
        assert_eq!(c.cipher, KeyCipher::TripleDesCbc);
        assert_eq!(c.digest, HashAlg::Sha256);
        assert_eq!(c.auth, AuthPolicy::SignBatch);
        assert_eq!(c.rsa_bits, 1024);
        assert_eq!(c.seed, 99);
        assert_eq!(c.key_len(), 24);
    }

    #[test]
    fn batched_rekey_spec_parses() {
        let c = ServerConfig::from_spec(
            "batch-interval-ms = 250\nrekey = batched\nbatch-max-pending = 16\n",
        )
        .unwrap();
        assert_eq!(c.rekey, RekeyPolicy::Batched { interval_ms: 250, max_pending: 16 });
        assert_eq!(c.rekey.batch_policy(), Some(BatchPolicy { interval_ms: 250, max_pending: 16 }));

        // Without `rekey = batched` the knobs are inert.
        let c = ServerConfig::from_spec("batch-interval-ms = 250").unwrap();
        assert_eq!(c.rekey, RekeyPolicy::Immediate);
        assert_eq!(c.rekey.batch_policy(), None);

        assert!(matches!(
            ServerConfig::from_spec("rekey = sometimes"),
            Err(ConfigError::BadValue { key: "rekey", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("batch-max-pending = 0"),
            Err(ConfigError::BadValue { key: "batch-max-pending", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("batch-interval-ms = soon"),
            Err(ConfigError::BadValue { key: "batch-interval-ms", .. })
        ));
    }

    #[test]
    fn workers_spec_parses_and_rejects_zero() {
        assert_eq!(ServerConfig::default().parallel, ParallelConfig::default());
        assert_eq!(ServerConfig::default().parallel.workers, 1);
        assert!(!ServerConfig::default().parallel.wants_pool());

        let c = ServerConfig::from_spec("workers = 4").unwrap();
        assert_eq!(c.parallel.workers, 4);
        // Clamped to hardware: never more than the cores present, never
        // fewer than 1, and exactly 4 when the clamp is off.
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(c.parallel.effective_workers(), 4.min(hw));
        let unclamped = ParallelConfig { clamp_to_hardware: false, ..c.parallel };
        assert_eq!(unclamped.effective_workers(), 4);
        assert!(unclamped.wants_pool());

        let c = ServerConfig::from_spec("workers = 1").unwrap();
        assert!(!c.parallel.wants_pool());

        assert!(matches!(
            ServerConfig::from_spec("workers = 0"),
            Err(ConfigError::BadValue { key: "workers", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("workers = many"),
            Err(ConfigError::BadValue { key: "workers", .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = ServerConfig::from_spec("\n# all defaults\n\n").unwrap();
        assert_eq!(c.degree, 4);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(ServerConfig::from_spec("degree"), Err(ConfigError::BadLine(_))));
        assert!(matches!(ServerConfig::from_spec("mystery = 1"), Err(ConfigError::UnknownKey(_))));
        assert!(matches!(
            ServerConfig::from_spec("degree = banana"),
            Err(ConfigError::BadValue { key: "degree", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("degree = 1"),
            Err(ConfigError::BadValue { key: "degree", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("auth = sometimes"),
            Err(ConfigError::BadValue { key: "auth", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("strategy = quantum"),
            Err(ConfigError::BadValue { key: "strategy", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("cipher = rot13"),
            Err(ConfigError::BadValue { key: "cipher", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("digest = crc32"),
            Err(ConfigError::BadValue { key: "digest", .. })
        ));
    }

    #[test]
    fn enum_spec_names_roundtrip() {
        for c in [KeyCipher::DesCbc, KeyCipher::TripleDesCbc] {
            assert_eq!(c.as_str().parse::<KeyCipher>().unwrap(), c);
            assert_eq!(c.to_string(), c.as_str());
        }
        for h in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            assert_eq!(h.as_str().parse::<HashAlg>().unwrap(), h);
            assert_eq!(h.to_string(), h.as_str());
        }
        for a in [AuthPolicy::None, AuthPolicy::Digest, AuthPolicy::SignEach, AuthPolicy::SignBatch]
        {
            assert_eq!(a.as_str().parse::<AuthPolicy>().unwrap(), a);
            assert_eq!(a.to_string(), a.as_str());
        }
        assert_eq!("immediate".parse::<RekeyPolicy>().unwrap(), RekeyPolicy::Immediate);
        assert!(matches!("batched".parse::<RekeyPolicy>().unwrap(), RekeyPolicy::Batched { .. }));
        let p = RekeyPolicy::Batched { interval_ms: 7, max_pending: 3 };
        assert_eq!(p.as_str(), "batched");
        assert_eq!(p.to_string(), "batched");
        assert!("des".parse::<KeyCipher>().is_err());
        assert!("crc32".parse::<HashAlg>().is_err());
        assert!("sometimes".parse::<RekeyPolicy>().is_err());
    }

    #[test]
    fn builder_builds_and_validates() {
        let c = ServerConfig::builder()
            .degree(8)
            .strategy(Strategy::Derived)
            .cipher(KeyCipher::TripleDesCbc)
            .digest(HashAlg::Sha256)
            .auth(AuthPolicy::SignBatch)
            .rsa_bits(1024)
            .seed(99)
            .batched(250, 16)
            .workers(4)
            .stats_record_cap(Some(128))
            .build()
            .unwrap();
        assert_eq!(c.strategy, Strategy::Derived);
        assert_eq!(c.rekey, RekeyPolicy::Batched { interval_ms: 250, max_pending: 16 });
        assert_eq!(c.stats_record_cap, Some(128));

        assert_eq!(ServerConfig::builder().build().unwrap(), ServerConfig::default());
        assert_eq!(
            ServerConfig::builder().batched(10, 5).immediate().build().unwrap().rekey,
            RekeyPolicy::Immediate
        );
        assert!(matches!(
            ServerConfig::builder().degree(1).build(),
            Err(ConfigError::BadValue { key: "degree", .. })
        ));
        assert!(matches!(
            ServerConfig::builder().workers(0).build(),
            Err(ConfigError::BadValue { key: "workers", .. })
        ));
        assert!(matches!(
            ServerConfig::builder().batched(0, 16).build(),
            Err(ConfigError::BadValue { key: "batch-interval-ms", .. })
        ));
        assert!(matches!(
            ServerConfig::builder().batched(100, 0).build(),
            Err(ConfigError::BadValue { key: "batch-max-pending", .. })
        ));
    }

    #[test]
    fn rsa_bits_must_be_even_and_at_least_512() {
        assert!(matches!(
            ServerConfig::from_spec("rsa-bits = 256"),
            Err(ConfigError::BadValue { key: "rsa-bits", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("rsa-bits = 513"),
            Err(ConfigError::BadValue { key: "rsa-bits", .. })
        ));
        assert!(matches!(
            ServerConfig::builder().rsa_bits(0).build(),
            Err(ConfigError::BadValue { key: "rsa-bits", .. })
        ));
        assert!(ServerConfig::from_spec("rsa-bits = 512").is_ok());
        assert!(ServerConfig::from_spec("rsa-bits = 1024").is_ok());
    }

    #[test]
    fn zero_batch_interval_is_rejected() {
        assert!(matches!(
            ServerConfig::from_spec("batch-interval-ms = 0"),
            Err(ConfigError::BadValue { key: "batch-interval-ms", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("rekey = batched\nbatch-interval-ms = 0"),
            Err(ConfigError::BadValue { key: "batch-interval-ms", .. })
        ));
    }

    #[test]
    fn derived_strategy_parses_from_spec() {
        let c = ServerConfig::from_spec("strategy = derived").unwrap();
        assert_eq!(c.strategy, Strategy::Derived);
        let c = ServerConfig::from_spec("strategy = client-derived").unwrap();
        assert_eq!(c.strategy, Strategy::Derived);
    }

    #[test]
    fn to_spec_roundtrips_defaults_and_batched() {
        for cfg in [
            ServerConfig::default(),
            ServerConfig::builder()
                .degree(16)
                .strategy(Strategy::Derived)
                .cipher(KeyCipher::TripleDesCbc)
                .digest(HashAlg::Sha1)
                .auth(AuthPolicy::SignEach)
                .rsa_bits(768)
                .seed(123)
                .batched(50, 9)
                .workers(3)
                .stats_record_cap(Some(7))
                .build()
                .unwrap(),
        ] {
            let reparsed = ServerConfig::from_spec(&cfg.to_spec()).unwrap();
            assert_eq!(reparsed, cfg, "spec:\n{}", cfg.to_spec());
        }
    }

    #[test]
    fn every_config_error_variant_is_reachable() {
        assert!(matches!(ServerConfig::from_spec("no equals sign"), Err(ConfigError::BadLine(_))));
        assert!(matches!(ServerConfig::from_spec("mystery = 1"), Err(ConfigError::UnknownKey(_))));
        assert!(matches!(
            ServerConfig::from_spec("seed = entropy"),
            Err(ConfigError::BadValue { key: "seed", .. })
        ));
        assert!(matches!(
            ServerConfig::from_spec("stats-record-cap = lots"),
            Err(ConfigError::BadValue { key: "stats-record-cap", .. })
        ));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn to_spec_from_spec_roundtrip(
                degree in 2usize..32,
                strategy_ix in 0usize..4,
                cipher_ix in 0usize..2,
                digest_ix in 0usize..3,
                auth_ix in 0usize..4,
                rsa_halfwords in 256usize..1024,
                seed in any::<u64>(),
                batched in any::<bool>(),
                interval_ms in 1u64..100_000,
                max_pending in 1usize..10_000,
                workers in 1usize..64,
                cap_set in any::<bool>(),
                cap_val in 0usize..100_000,
            ) {
                let cap = cap_set.then_some(cap_val);
                let strategy = kg_core::rekey::Strategy::EVERY[strategy_ix];
                let cipher = [KeyCipher::DesCbc, KeyCipher::TripleDesCbc][cipher_ix];
                let digest = [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256][digest_ix];
                let auth = [
                    AuthPolicy::None,
                    AuthPolicy::Digest,
                    AuthPolicy::SignEach,
                    AuthPolicy::SignBatch,
                ][auth_ix];
                let mut b = ServerConfig::builder()
                    .degree(degree)
                    .strategy(strategy)
                    .cipher(cipher)
                    .digest(digest)
                    .auth(auth)
                    .rsa_bits(rsa_halfwords * 2)
                    .seed(seed)
                    .workers(workers)
                    .stats_record_cap(cap);
                b = if batched { b.batched(interval_ms, max_pending) } else { b.immediate() };
                let cfg = b.build().unwrap();
                let reparsed = ServerConfig::from_spec(&cfg.to_spec()).unwrap();
                prop_assert_eq!(reparsed, cfg);
            }
        }
    }

    #[test]
    fn auth_policy_signature_key_requirement() {
        assert!(!AuthPolicy::None.needs_signature_key());
        assert!(!AuthPolicy::Digest.needs_signature_key());
        assert!(AuthPolicy::SignEach.needs_signature_key());
        assert!(AuthPolicy::SignBatch.needs_signature_key());
    }

    #[test]
    fn error_display() {
        let e = ConfigError::BadValue { key: "degree", value: "x".into() };
        assert!(e.to_string().contains("degree"));
        assert!(ConfigError::UnknownKey("z".into()).to_string().contains('z'));
        assert!(ConfigError::BadLine("q".into()).to_string().contains('q'));
    }
}
