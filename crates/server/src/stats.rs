//! Per-request server statistics.
//!
//! Everything the paper's evaluation tables need: processing time per
//! request (Figures 10/11, Table 4), number and size of rekey messages
//! sent (Tables 4/5), and encryption counts (validating Table 2/3).
//! Records are kept per operation so min/ave/max columns can be derived.
//!
//! Aggregates are **streaming**: every [`push`](ServerStats::push)
//! folds the record into running totals (per kind and overall), so
//! [`aggregate`](ServerStats::aggregate) is O(1) in the number of
//! records and a long-running server can cap the retained record
//! vector ([`ServerStats::with_record_cap`]) without losing aggregate
//! accuracy. The floating-point sums are accumulated in insertion
//! order — exactly the order the previous records-walking
//! implementation summed in — so uncapped results are bit-identical.

use kg_obs::LocalHistogram;
use kg_wire::OpKind;

/// One processed join/leave.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Join, leave, or batched interval.
    pub kind: OpKind,
    /// Membership requests covered by this record: 1 for an immediate
    /// join/leave, joins + leaves for a batched interval.
    pub requests: u32,
    /// Wire size of every rekey message sent for this operation.
    pub msg_sizes: Vec<u32>,
    /// Server processing time in nanoseconds (parse → update tree →
    /// encrypt → digest/sign → encode).
    pub proc_ns: u64,
    /// Keys encrypted (the paper's cost unit).
    pub encryptions: u64,
    /// Digital signature operations performed.
    pub signatures: u64,
}

impl OpRecord {
    /// Total bytes sent for this operation.
    pub fn total_bytes(&self) -> u64 {
        self.msg_sizes.iter().map(|&s| s as u64).sum()
    }
}

/// Aggregated view over a set of records (one Table 5-style row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of operations aggregated (batched intervals count once).
    pub ops: u64,
    /// Total membership requests covered by those operations.
    pub requests: u64,
    /// Mean rekey-message size in bytes.
    pub msg_size_ave: f64,
    /// Smallest rekey message seen.
    pub msg_size_min: u32,
    /// Largest rekey message seen.
    pub msg_size_max: u32,
    /// Mean number of rekey messages per operation.
    pub msgs_per_op: f64,
    /// Mean processing time per operation, in milliseconds.
    pub proc_ms_ave: f64,
    /// Median processing time per operation, in milliseconds
    /// (log-bucketed histogram estimate, ≤12.5% relative error).
    pub proc_ms_p50: f64,
    /// 99th-percentile processing time per operation, in milliseconds
    /// (same histogram estimate).
    pub proc_ms_p99: f64,
    /// Mean keys-encrypted per operation.
    pub encryptions_ave: f64,
    /// Mean signature operations per operation.
    pub signatures_ave: f64,
}

/// Streaming totals for one record population (a kind, or all kinds).
#[derive(Debug, Clone)]
struct Totals {
    ops: u64,
    requests: u64,
    msgs: u64,
    bytes: u64,
    size_min: u32,
    size_max: u32,
    // f64 running sums, accumulated in insertion order so the derived
    // means match a sequential records walk bit-for-bit.
    proc_ns_sum: f64,
    encryptions_sum: f64,
    signatures_sum: f64,
    proc_us: LocalHistogram,
}

impl Default for Totals {
    fn default() -> Self {
        Totals {
            ops: 0,
            requests: 0,
            msgs: 0,
            bytes: 0,
            size_min: u32::MAX,
            size_max: 0,
            proc_ns_sum: 0.0,
            encryptions_sum: 0.0,
            signatures_sum: 0.0,
            proc_us: LocalHistogram::new(),
        }
    }
}

impl Totals {
    fn fold(&mut self, rec: &OpRecord) {
        self.ops += 1;
        self.requests += rec.requests as u64;
        self.msgs += rec.msg_sizes.len() as u64;
        for &s in &rec.msg_sizes {
            self.bytes += s as u64;
            self.size_min = self.size_min.min(s);
            self.size_max = self.size_max.max(s);
        }
        self.proc_ns_sum += rec.proc_ns as f64;
        self.encryptions_sum += rec.encryptions as f64;
        self.signatures_sum += rec.signatures as f64;
        self.proc_us.record(rec.proc_ns / 1_000);
    }

    fn aggregate(&self) -> Option<Aggregate> {
        if self.ops == 0 {
            return None;
        }
        let ops = self.ops;
        let total_msgs = self.msgs as f64;
        let proc = self.proc_us.snapshot();
        Some(Aggregate {
            ops,
            requests: self.requests,
            msg_size_ave: if total_msgs > 0.0 { self.bytes as f64 / total_msgs } else { 0.0 },
            msg_size_min: if self.msgs == 0 { 0 } else { self.size_min },
            msg_size_max: self.size_max,
            msgs_per_op: total_msgs / ops as f64,
            proc_ms_ave: self.proc_ns_sum / ops as f64 / 1e6,
            proc_ms_p50: proc.p50 as f64 / 1e3,
            proc_ms_p99: proc.p99 as f64 / 1e3,
            encryptions_ave: self.encryptions_sum / ops as f64,
            signatures_ave: self.signatures_sum / ops as f64,
        })
    }
}

const KINDS: usize = 4;

fn kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Join => 0,
        OpKind::Leave => 1,
        OpKind::Batch => 2,
        OpKind::Refresh => 3,
    }
}

/// Statistics sink held by the server.
///
/// By default every [`OpRecord`] is retained (snapshots checkpoint
/// them, and per-record views like Figure 10's scatter need them). A
/// record cap ([`with_record_cap`](Self::with_record_cap)) bounds the
/// vector for long-running servers: the oldest records are evicted
/// FIFO while the streaming totals — and therefore
/// [`aggregate`](Self::aggregate) — continue to cover every record
/// ever pushed since the last [`reset`](Self::reset).
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    records: Vec<OpRecord>,
    record_cap: Option<usize>,
    by_kind: [Totals; KINDS],
    overall: Totals,
}

impl ServerStats {
    /// A sink that retains at most `cap` records (0 retains none).
    /// Aggregates still cover every pushed record.
    pub fn with_record_cap(cap: usize) -> Self {
        ServerStats { record_cap: Some(cap), ..ServerStats::default() }
    }

    /// Rebuild a sink from checkpointed records (crash recovery).
    /// Totals are refolded from the given records, in order.
    pub fn from_records(records: Vec<OpRecord>) -> Self {
        let mut s = ServerStats::default();
        for rec in records {
            s.push(rec);
        }
        s
    }

    /// The retention cap, if any.
    pub fn record_cap(&self) -> Option<usize> {
        self.record_cap
    }

    /// Append a record.
    pub fn push(&mut self, rec: OpRecord) {
        self.by_kind[kind_index(rec.kind)].fold(&rec);
        self.overall.fold(&rec);
        self.records.push(rec);
        if let Some(cap) = self.record_cap {
            while self.records.len() > cap {
                self.records.remove(0);
            }
        }
    }

    /// The retained records (all of them when uncapped).
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Records evicted by the cap so far.
    pub fn records_evicted(&self) -> u64 {
        self.overall.ops - self.records.len() as u64
    }

    /// Total records ever pushed since the last reset (retained +
    /// evicted) — what the aggregates cover.
    pub fn records_pushed(&self) -> u64 {
        self.overall.ops
    }

    /// Drop everything (e.g. after the initial-population phase, which the
    /// paper excludes from its tables). Totals reset too.
    pub fn reset(&mut self) {
        *self = ServerStats { record_cap: self.record_cap, ..ServerStats::default() };
    }

    /// Aggregate over all records of the given kind (`None` = every kind),
    /// including records evicted by the cap. O(1) in record count.
    pub fn aggregate(&self, kind: Option<OpKind>) -> Option<Aggregate> {
        match kind {
            None => self.overall.aggregate(),
            Some(k) => self.by_kind[kind_index(k)].aggregate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, sizes: &[u32], ns: u64, enc: u64) -> OpRecord {
        OpRecord {
            kind,
            requests: 1,
            msg_sizes: sizes.to_vec(),
            proc_ns: ns,
            encryptions: enc,
            signatures: 0,
        }
    }

    #[test]
    fn empty_stats_aggregate_to_none() {
        let s = ServerStats::default();
        assert!(s.aggregate(None).is_none());
        assert!(s.aggregate(Some(OpKind::Join)).is_none());
    }

    #[test]
    fn aggregate_by_kind() {
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Join, &[100, 200], 2_000_000, 4));
        s.push(rec(OpKind::Leave, &[300], 4_000_000, 8));
        let j = s.aggregate(Some(OpKind::Join)).unwrap();
        assert_eq!(j.ops, 1);
        assert_eq!(j.msg_size_ave, 150.0);
        assert_eq!(j.msg_size_min, 100);
        assert_eq!(j.msg_size_max, 200);
        assert_eq!(j.msgs_per_op, 2.0);
        assert_eq!(j.proc_ms_ave, 2.0);
        assert_eq!(j.encryptions_ave, 4.0);
        let both = s.aggregate(None).unwrap();
        assert_eq!(both.ops, 2);
        assert_eq!(both.msg_size_ave, 200.0);
        assert_eq!(both.proc_ms_ave, 3.0);
    }

    #[test]
    fn total_bytes() {
        let r = rec(OpKind::Join, &[10, 20, 30], 0, 0);
        assert_eq!(r.total_bytes(), 60);
    }

    #[test]
    fn reset_clears() {
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Join, &[1], 1, 1));
        s.reset();
        assert!(s.records().is_empty());
        assert!(s.aggregate(None).is_none());
        assert_eq!(s.records_pushed(), 0);
    }

    #[test]
    fn op_with_no_messages_is_representable() {
        // A leave that empties the group sends nothing.
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Leave, &[], 500, 0));
        let a = s.aggregate(None).unwrap();
        assert_eq!(a.msgs_per_op, 0.0);
        assert_eq!(a.msg_size_ave, 0.0);
        assert_eq!(a.msg_size_min, 0);
    }

    #[test]
    fn streaming_matches_records_walk_bit_for_bit() {
        // Re-derive the aggregate the way the pre-streaming code did —
        // a sequential walk over the records — and require exact f64
        // equality with the running-total version.
        let mut s = ServerStats::default();
        let data = [
            rec(OpKind::Join, &[137, 991, 23], 1_234_567, 3),
            rec(OpKind::Leave, &[777], 9_999_999, 11),
            rec(OpKind::Join, &[12], 37, 1),
            rec(OpKind::Batch, &[50_000, 60_000], 123_456_789, 200),
            rec(OpKind::Leave, &[], 55_555, 7),
        ];
        for r in &data {
            s.push(r.clone());
        }
        for kind in [None, Some(OpKind::Join), Some(OpKind::Leave), Some(OpKind::Batch)] {
            let recs: Vec<&OpRecord> =
                data.iter().filter(|r| kind.is_none_or(|k| r.kind == k)).collect();
            let a = s.aggregate(kind).unwrap();
            let ops = recs.len() as f64;
            let walk_proc = recs.iter().map(|r| r.proc_ns as f64).sum::<f64>() / ops / 1e6;
            let walk_enc = recs.iter().map(|r| r.encryptions as f64).sum::<f64>() / ops;
            assert_eq!(a.proc_ms_ave.to_bits(), walk_proc.to_bits());
            assert_eq!(a.encryptions_ave.to_bits(), walk_enc.to_bits());
        }
        assert!(s.aggregate(Some(OpKind::Refresh)).is_none());
    }

    #[test]
    fn record_cap_evicts_fifo_but_aggregate_covers_everything() {
        let mut capped = ServerStats::with_record_cap(2);
        let mut uncapped = ServerStats::default();
        for i in 1..=10u64 {
            let r = rec(OpKind::Join, &[i as u32 * 10], i * 1_000_000, i);
            capped.push(r.clone());
            uncapped.push(r);
        }
        assert_eq!(capped.records().len(), 2);
        assert_eq!(capped.records()[0].proc_ns, 9_000_000); // oldest evicted
        assert_eq!(capped.records_evicted(), 8);
        assert_eq!(capped.records_pushed(), 10);
        // Aggregates are identical to the uncapped sink.
        assert_eq!(capped.aggregate(None), uncapped.aggregate(None));
        assert_eq!(uncapped.records_evicted(), 0);
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let mut s = ServerStats::default();
        // 99 ops at 1ms, one at 100ms: p50 ≈ 1ms, p99 ≈ 1ms, max pulls ave up.
        for _ in 0..99 {
            s.push(rec(OpKind::Join, &[10], 1_000_000, 1));
        }
        s.push(rec(OpKind::Join, &[10], 100_000_000, 1));
        let a = s.aggregate(None).unwrap();
        assert!((a.proc_ms_p50 - 1.0).abs() / 1.0 < 0.125, "p50 {}", a.proc_ms_p50);
        assert!((a.proc_ms_p99 - 1.0).abs() / 1.0 < 0.125, "p99 {}", a.proc_ms_p99);
        assert!(a.proc_ms_ave > a.proc_ms_p50);
    }
}
