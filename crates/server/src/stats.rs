//! Per-request server statistics.
//!
//! Everything the paper's evaluation tables need: processing time per
//! request (Figures 10/11, Table 4), number and size of rekey messages
//! sent (Tables 4/5), and encryption counts (validating Table 2/3).
//! Records are kept per operation so min/ave/max columns can be derived.

use kg_wire::OpKind;

/// One processed join/leave.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Join, leave, or batched interval.
    pub kind: OpKind,
    /// Membership requests covered by this record: 1 for an immediate
    /// join/leave, joins + leaves for a batched interval.
    pub requests: u32,
    /// Wire size of every rekey message sent for this operation.
    pub msg_sizes: Vec<u32>,
    /// Server processing time in nanoseconds (parse → update tree →
    /// encrypt → digest/sign → encode).
    pub proc_ns: u64,
    /// Keys encrypted (the paper's cost unit).
    pub encryptions: u64,
    /// Digital signature operations performed.
    pub signatures: u64,
}

impl OpRecord {
    /// Total bytes sent for this operation.
    pub fn total_bytes(&self) -> u64 {
        self.msg_sizes.iter().map(|&s| s as u64).sum()
    }
}

/// Aggregated view over a set of records (one Table 5-style row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of operations aggregated (batched intervals count once).
    pub ops: u64,
    /// Total membership requests covered by those operations.
    pub requests: u64,
    /// Mean rekey-message size in bytes.
    pub msg_size_ave: f64,
    /// Smallest rekey message seen.
    pub msg_size_min: u32,
    /// Largest rekey message seen.
    pub msg_size_max: u32,
    /// Mean number of rekey messages per operation.
    pub msgs_per_op: f64,
    /// Mean processing time per operation, in milliseconds.
    pub proc_ms_ave: f64,
    /// Mean keys-encrypted per operation.
    pub encryptions_ave: f64,
    /// Mean signature operations per operation.
    pub signatures_ave: f64,
}

/// Statistics sink held by the server.
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    records: Vec<OpRecord>,
}

impl ServerStats {
    /// Rebuild a sink from checkpointed records (crash recovery).
    pub fn from_records(records: Vec<OpRecord>) -> Self {
        ServerStats { records }
    }

    /// Append a record.
    pub fn push(&mut self, rec: OpRecord) {
        self.records.push(rec);
    }

    /// All records.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Drop everything (e.g. after the initial-population phase, which the
    /// paper excludes from its tables).
    pub fn reset(&mut self) {
        self.records.clear();
    }

    /// Aggregate over all records of the given kind (`None` = both kinds).
    pub fn aggregate(&self, kind: Option<OpKind>) -> Option<Aggregate> {
        let recs: Vec<&OpRecord> =
            self.records.iter().filter(|r| kind.is_none_or(|k| r.kind == k)).collect();
        if recs.is_empty() {
            return None;
        }
        let ops = recs.len() as u64;
        let all_sizes: Vec<u32> = recs.iter().flat_map(|r| r.msg_sizes.iter().copied()).collect();
        let total_msgs = all_sizes.len() as f64;
        let (min, max, sum) = all_sizes
            .iter()
            .fold((u32::MAX, 0u32, 0u64), |(mn, mx, s), &v| (mn.min(v), mx.max(v), s + v as u64));
        Some(Aggregate {
            ops,
            requests: recs.iter().map(|r| r.requests as u64).sum(),
            msg_size_ave: if total_msgs > 0.0 { sum as f64 / total_msgs } else { 0.0 },
            msg_size_min: if all_sizes.is_empty() { 0 } else { min },
            msg_size_max: max,
            msgs_per_op: total_msgs / ops as f64,
            proc_ms_ave: recs.iter().map(|r| r.proc_ns as f64).sum::<f64>() / ops as f64 / 1e6,
            encryptions_ave: recs.iter().map(|r| r.encryptions as f64).sum::<f64>() / ops as f64,
            signatures_ave: recs.iter().map(|r| r.signatures as f64).sum::<f64>() / ops as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, sizes: &[u32], ns: u64, enc: u64) -> OpRecord {
        OpRecord {
            kind,
            requests: 1,
            msg_sizes: sizes.to_vec(),
            proc_ns: ns,
            encryptions: enc,
            signatures: 0,
        }
    }

    #[test]
    fn empty_stats_aggregate_to_none() {
        let s = ServerStats::default();
        assert!(s.aggregate(None).is_none());
        assert!(s.aggregate(Some(OpKind::Join)).is_none());
    }

    #[test]
    fn aggregate_by_kind() {
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Join, &[100, 200], 2_000_000, 4));
        s.push(rec(OpKind::Leave, &[300], 4_000_000, 8));
        let j = s.aggregate(Some(OpKind::Join)).unwrap();
        assert_eq!(j.ops, 1);
        assert_eq!(j.msg_size_ave, 150.0);
        assert_eq!(j.msg_size_min, 100);
        assert_eq!(j.msg_size_max, 200);
        assert_eq!(j.msgs_per_op, 2.0);
        assert_eq!(j.proc_ms_ave, 2.0);
        assert_eq!(j.encryptions_ave, 4.0);
        let both = s.aggregate(None).unwrap();
        assert_eq!(both.ops, 2);
        assert_eq!(both.msg_size_ave, 200.0);
        assert_eq!(both.proc_ms_ave, 3.0);
    }

    #[test]
    fn total_bytes() {
        let r = rec(OpKind::Join, &[10, 20, 30], 0, 0);
        assert_eq!(r.total_bytes(), 60);
    }

    #[test]
    fn reset_clears() {
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Join, &[1], 1, 1));
        s.reset();
        assert!(s.records().is_empty());
    }

    #[test]
    fn op_with_no_messages_is_representable() {
        // A leave that empties the group sends nothing.
        let mut s = ServerStats::default();
        s.push(rec(OpKind::Leave, &[], 500, 0));
        let a = s.aggregate(None).unwrap();
        assert_eq!(a.msgs_per_op, 0.0);
        assert_eq!(a.msg_size_ave, 0.0);
        assert_eq!(a.msg_size_min, 0);
    }
}
