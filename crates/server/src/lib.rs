//! # kg-server — the prototype group key server
//!
//! The trusted entity of the paper: it owns the key tree, performs group
//! access control, processes join/leave requests, constructs rekey
//! messages under the configured strategy, authenticates them (digest,
//! per-message signature, or the Section 4 batch signature), and records
//! the statistics the evaluation tables are built from.
//!
//! [`GroupKeyServer`] is the network-free core — the benchmark harness
//! drives it directly, timing exactly what the paper timed (request
//! parsing, tree update, key generation, encryption, digest/signature,
//! message encoding). [`net::NetServer`] wraps it for operation over the
//! simulated network in `kg-net`, resolving each rekey message's
//! [`Recipients`](kg_core::rekey::Recipients) to concrete endpoints.
//!
//! ```
//! use kg_server::{GroupKeyServer, ServerConfig, AccessControl};
//! use kg_core::ids::UserId;
//!
//! // Paper defaults: degree-4 tree, group-oriented rekeying, DES-CBC.
//! let mut server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
//! for i in 0..20 {
//!     server.handle_join(UserId(i)).unwrap();
//! }
//! let before = server.tree().group_key().0;
//! let op = server.handle_leave(UserId(7)).unwrap();
//! assert_eq!(op.packets.len(), 1, "group-oriented leave: one multicast");
//! assert!(server.tree().group_key().0.version > before.version);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod config;
pub mod net;
pub mod stats;

pub use acl::AccessControl;
pub use config::{AuthPolicy, ConfigError, ServerConfig};
pub use stats::{Aggregate, OpRecord, ServerStats};

use kg_core::ids::{KeyLabel, UserId};
use kg_core::merkle;
use kg_core::rekey::{RekeyMessage, Rekeyer};
use kg_core::tree::{KeyTree, TreeError};
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use kg_crypto::{KeySource, SymmetricKey};
use kg_wire::{AuthTag, OpKind, RekeyPacket};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Access control denied the join.
    JoinDenied(UserId),
    /// Tree-level membership error (duplicate join / unknown leaver).
    Tree(TreeError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::JoinDenied(u) => write!(f, "join denied for {u}"),
            RequestError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<TreeError> for RequestError {
    fn from(e: TreeError) -> Self {
        RequestError::Tree(e)
    }
}

/// Result of processing one join or leave.
#[derive(Debug, Clone)]
pub struct ProcessedOp {
    /// Sequence number assigned to this operation.
    pub seq: u64,
    /// Fully authenticated rekey packets, ready to encode and send.
    pub packets: Vec<RekeyPacket>,
    /// Encoded form of each packet (computed inside the timed section, as
    /// the paper's processing time includes message construction).
    pub encoded: Vec<Vec<u8>>,
    /// For joins: the individual key handed to the new member by the
    /// authentication exchange, plus its leaf label and the path labels
    /// (root-first) for the join-ack.
    pub join_grant: Option<JoinGrant>,
}

/// The data a joining member receives out-of-band (via the authenticated
/// admission exchange).
#[derive(Debug, Clone)]
pub struct JoinGrant {
    /// The admitted user.
    pub user: UserId,
    /// Its individual key.
    pub individual_key: SymmetricKey,
    /// Label of its individual-key leaf.
    pub leaf_label: KeyLabel,
    /// Labels of the path keys, root-first (the join-ack payload).
    pub path_labels: Vec<KeyLabel>,
}

/// The prototype group key server.
pub struct GroupKeyServer {
    config: ServerConfig,
    acl: AccessControl,
    tree: KeyTree,
    keygen: HmacDrbg,
    ivs: HmacDrbg,
    rsa: Option<RsaKeyPair>,
    seq: u64,
    stats: ServerStats,
}

impl GroupKeyServer {
    /// Create a server. Generates an RSA keypair when the auth policy
    /// requires one (key generation happens here, once — not in the timed
    /// path).
    pub fn new(config: ServerConfig, acl: AccessControl) -> Self {
        let mut keygen = HmacDrbg::from_seed(config.seed ^ 0x6b67_5f6b_6579_7321);
        let ivs = HmacDrbg::from_seed(config.seed ^ 0x6976_5f73_6565_6421);
        let rsa = config.auth.needs_signature_key().then(|| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7273_615f_6b65_7921);
            RsaKeyPair::generate(config.rsa_bits, &mut rng).expect("RSA key generation")
        });
        let tree = KeyTree::new(config.degree, config.key_len(), &mut keygen);
        GroupKeyServer { config, acl, tree, keygen, ivs, rsa, seq: 0, stats: ServerStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server's signature-verification key, for distribution to
    /// clients. `None` when the auth policy doesn't sign.
    pub fn public_key(&self) -> Option<&RsaPublicKey> {
        self.rsa.as_ref().map(|kp| kp.public())
    }

    /// Current group size.
    pub fn group_size(&self) -> usize {
        self.tree.user_count()
    }

    /// Whether `u` is a member.
    pub fn is_member(&self, u: UserId) -> bool {
        self.tree.is_member(u)
    }

    /// Read access to the key tree (recipient resolution, tests).
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Clear statistics (after initial population, as in §5).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Switch the authentication policy at runtime.
    ///
    /// The experiment harness populates the initial group with
    /// authentication off (the paper excludes the n initial joins from
    /// every measurement) and then enables the configured policy for the
    /// measured phase.
    ///
    /// # Panics
    /// Panics when switching to a signing policy on a server constructed
    /// without one (no RSA keypair was generated).
    pub fn set_auth(&mut self, auth: AuthPolicy) {
        assert!(
            !auth.needs_signature_key() || self.rsa.is_some(),
            "server was built without a signature keypair"
        );
        self.config.auth = auth;
    }

    /// Process a join request.
    ///
    /// The authentication exchange (modelled by generating the individual
    /// key) happens *before* the timer starts: "the processing time for a
    /// join request does not include any time used to authenticate the
    /// requesting user" (§5).
    pub fn handle_join(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.acl.permits(user) {
            return Err(RequestError::JoinDenied(user));
        }
        if self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::AlreadyMember(user)));
        }
        let individual_key = self.keygen.generate_key(self.config.key_len());

        let start = Instant::now();
        let event = self.tree.join(user, individual_key.clone(), &mut self.keygen)?;
        let mut rekeyer = Rekeyer::new(self.config.cipher, &mut self.ivs);
        let out = rekeyer.join(&event, self.config.strategy);
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Join, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;

        self.stats.push(OpRecord {
            kind: OpKind::Join,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        Ok(ProcessedOp {
            seq,
            packets,
            encoded,
            join_grant: Some(JoinGrant {
                user,
                individual_key,
                leaf_label: event.leaf_label,
                path_labels: event.path.iter().map(|p| p.label).collect(),
            }),
        })
    }

    /// Process a leave request.
    pub fn handle_leave(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::NotAMember(user)));
        }
        let start = Instant::now();
        let event = self.tree.leave(user, &mut self.keygen)?;
        let mut rekeyer = Rekeyer::new(self.config.cipher, &mut self.ivs);
        let out = rekeyer.leave(&event, self.config.strategy);
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Leave, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;

        self.stats.push(OpRecord {
            kind: OpKind::Leave,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        Ok(ProcessedOp { seq, packets, encoded, join_grant: None })
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Attach the configured authenticity tag to every message and encode.
    /// Returns (packets, encodings, signature-op count).
    fn authenticate_and_encode(
        &mut self,
        seq: u64,
        op: OpKind,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<RekeyPacket>, Vec<Vec<u8>>, u64) {
        let timestamp_ms = seq; // deterministic logical timestamp
        let mut packets: Vec<RekeyPacket> = messages
            .into_iter()
            .map(|message| RekeyPacket { seq, op, timestamp_ms, message, auth: AuthTag::None })
            .collect();
        let mut signatures = 0u64;
        match self.config.auth {
            AuthPolicy::None => {}
            AuthPolicy::Digest => {
                for p in &mut packets {
                    let body = p.encode_body();
                    p.auth = AuthTag::Digest(self.config.digest.hash(&body));
                }
            }
            AuthPolicy::SignEach => {
                let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                for p in &mut packets {
                    let body = p.encode_body();
                    let sig = key.sign(self.config.digest, &body).expect("signing");
                    signatures += 1;
                    p.auth = AuthTag::Signed { signature: sig };
                }
            }
            AuthPolicy::SignBatch => {
                if !packets.is_empty() {
                    let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                    let bodies: Vec<Vec<u8>> = packets.iter().map(|p| p.encode_body()).collect();
                    let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
                    let batch =
                        merkle::sign_batch(&key, self.config.digest, &refs).expect("batch signing");
                    signatures += 1;
                    for (p, path) in packets.iter_mut().zip(batch.paths) {
                        p.auth = AuthTag::MerkleSigned {
                            root_signature: batch.root_signature.clone(),
                            path,
                        };
                    }
                }
            }
        }
        let encoded: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        (packets, encoded, signatures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::rekey::{Recipients, Strategy};

    fn server(auth: AuthPolicy, strategy: Strategy) -> GroupKeyServer {
        let config = ServerConfig { auth, strategy, rsa_bits: 512, ..ServerConfig::default() };
        GroupKeyServer::new(config, AccessControl::AllowAll)
    }

    fn populate(s: &mut GroupKeyServer, n: u64) {
        for i in 0..n {
            s.handle_join(UserId(i)).unwrap();
        }
    }

    #[test]
    fn join_produces_grant_and_packets() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 8);
        let op = s.handle_join(UserId(100)).unwrap();
        let grant = op.join_grant.as_ref().unwrap();
        assert_eq!(grant.user, UserId(100));
        assert!(!grant.path_labels.is_empty());
        assert_eq!(op.packets.len(), 2); // group multicast + joiner unicast
        assert_eq!(op.packets.len(), op.encoded.len());
        assert_eq!(s.group_size(), 9);
    }

    #[test]
    fn leave_requires_membership() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 4);
        assert!(matches!(
            s.handle_leave(UserId(999)).unwrap_err(),
            RequestError::Tree(TreeError::NotAMember(_))
        ));
        s.handle_leave(UserId(2)).unwrap();
        assert_eq!(s.group_size(), 3);
        assert!(!s.is_member(UserId(2)));
    }

    #[test]
    fn acl_denies_join() {
        let config = ServerConfig::default();
        let mut s = GroupKeyServer::new(config, AccessControl::allow_list([UserId(1)]));
        assert!(s.handle_join(UserId(1)).is_ok());
        assert_eq!(
            s.handle_join(UserId(2)).unwrap_err(),
            RequestError::JoinDenied(UserId(2))
        );
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        s.handle_join(UserId(5)).unwrap();
        assert!(matches!(
            s.handle_join(UserId(5)).unwrap_err(),
            RequestError::Tree(TreeError::AlreadyMember(_))
        ));
    }

    #[test]
    fn digest_policy_attaches_valid_digest() {
        let mut s = server(AuthPolicy::Digest, Strategy::GroupOriented);
        populate(&mut s, 4);
        let op = s.handle_join(UserId(9)).unwrap();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Digest(d) = &p.auth else { panic!("expected digest") };
            let (decoded, body_len) = RekeyPacket::decode(enc).unwrap();
            assert_eq!(d, &s.config().digest.hash(&enc[..body_len]));
            assert_eq!(&decoded, p);
        }
    }

    #[test]
    fn sign_each_produces_verifiable_signatures() {
        let mut s = server(AuthPolicy::SignEach, Strategy::KeyOriented);
        populate(&mut s, 8);
        let op = s.handle_leave(UserId(3)).unwrap();
        let pk = s.public_key().unwrap();
        let mut count = 0;
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Signed { signature } = &p.auth else { panic!("expected signature") };
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            pk.verify(s.config().digest, &enc[..body_len], signature).unwrap();
            count += 1;
        }
        assert!(count > 1, "key-oriented leave sends several messages");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, count as u64);
    }

    #[test]
    fn sign_batch_uses_one_signature_for_all_messages() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::KeyOriented);
        populate(&mut s, 16);
        let op = s.handle_leave(UserId(7)).unwrap();
        let pk = s.public_key().unwrap();
        assert!(op.packets.len() > 1);
        let mut roots = std::collections::BTreeSet::new();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::MerkleSigned { root_signature, path } = &p.auth else {
                panic!("expected merkle")
            };
            roots.insert(root_signature.clone());
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            merkle::verify_message(pk, s.config().digest, &enc[..body_len], path, root_signature)
                .unwrap();
        }
        assert_eq!(roots.len(), 1, "single signature shared by the batch");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 1);
    }

    #[test]
    fn stats_track_sizes_and_encryptions() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 64);
        s.reset_stats();
        s.handle_join(UserId(200)).unwrap();
        s.handle_leave(UserId(200)).unwrap();
        let agg = s.stats().aggregate(None).unwrap();
        assert_eq!(agg.ops, 2);
        assert!(agg.msg_size_ave > 0.0);
        assert!(agg.encryptions_ave > 0.0);
        let join = s.stats().aggregate(Some(OpKind::Join)).unwrap();
        let leave = s.stats().aggregate(Some(OpKind::Leave)).unwrap();
        // Group-oriented: join sends 2 messages, leave sends 1.
        assert_eq!(join.msgs_per_op, 2.0);
        assert_eq!(leave.msgs_per_op, 1.0);
        // Leave encrypts ~d(h−1), join 2(h−1)+(h−1); comparable magnitudes.
        assert!(leave.encryptions_ave > join.encryptions_ave / 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let config = ServerConfig { seed, ..ServerConfig::default() };
            let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
            populate(&mut s, 10);
            let op = s.handle_leave(UserId(4)).unwrap();
            op.encoded.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn last_member_leave_sends_nothing() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::GroupOriented);
        s.handle_join(UserId(1)).unwrap();
        let op = s.handle_leave(UserId(1)).unwrap();
        assert!(op.packets.is_empty());
        assert_eq!(s.group_size(), 0);
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 0);
    }

    #[test]
    fn recipients_cover_all_members_for_each_strategy() {
        for strategy in Strategy::ALL {
            let mut s = server(AuthPolicy::None, strategy);
            populate(&mut s, 27);
            let op = s.handle_leave(UserId(13)).unwrap();
            // Union of resolved recipient sets must equal the remaining
            // membership.
            let mut covered = std::collections::BTreeSet::new();
            for p in &op.packets {
                let users: Vec<UserId> = match &p.message.recipients {
                    Recipients::User(u) => vec![*u],
                    Recipients::Subgroup(l) => s.tree().userset(*l),
                    Recipients::SubgroupExcept { include, exclude } => {
                        s.tree().userset_except(*include, *exclude)
                    }
                    Recipients::Group => s.tree().members().collect(),
                };
                covered.extend(users);
            }
            let members: std::collections::BTreeSet<UserId> = s.tree().members().collect();
            assert_eq!(covered, members, "strategy {strategy:?}");
        }
    }
}
